"""Unit tests for the happens-before race detector."""

from __future__ import annotations

import pytest

from repro.computation import Computation, ComputationBuilder
from repro.runtime import ConcurrentSystem, RaceDetector, acquire, detect_races, increment, release
from repro.runtime.system import Step


def build_trace(steps):
    """steps: list of (thread, obj, is_write) triples in interleaving order."""
    builder = ComputationBuilder()
    for thread, obj, is_write in steps:
        builder.append(thread, obj, is_write=is_write)
    return builder.build()


class TestBasicVerdicts:
    def test_unsynchronised_writes_race(self):
        trace = build_trace([("A", "x", True), ("B", "x", True)])
        report = detect_races(trace, sync_objects=[])
        assert report.race_count == 1
        race = report.races[0]
        assert race.obj == "x"
        assert {race.first.thread, race.second.thread} == {"A", "B"}
        assert "race on" in race.describe()

    def test_read_read_is_not_a_race(self):
        trace = build_trace([("A", "x", False), ("B", "x", False)])
        report = detect_races(trace, sync_objects=[])
        assert report.race_count == 0

    def test_same_thread_accesses_never_race(self):
        trace = build_trace([("A", "x", True), ("A", "x", True)])
        report = detect_races(trace, sync_objects=[])
        assert report.race_count == 0
        assert report.checked_pairs == 0

    def test_write_read_conflict_detected(self):
        trace = build_trace([("A", "x", True), ("B", "x", False)])
        report = detect_races(trace, sync_objects=[])
        assert report.race_count == 1

    def test_lock_protected_accesses_do_not_race(self):
        # A: acquire L, write x, release L;  B: acquire L, write x, release L.
        trace = build_trace(
            [
                ("A", "L", True),
                ("A", "x", True),
                ("A", "L", True),
                ("B", "L", True),
                ("B", "x", True),
                ("B", "L", True),
            ]
        )
        report = detect_races(trace, sync_objects=["L"])
        assert report.race_count == 0
        assert report.checked_pairs == 1

    def test_unrelated_lock_does_not_order_accesses(self):
        # Both threads lock *different* locks around their write: still a race.
        trace = build_trace(
            [
                ("A", "L1", True),
                ("A", "x", True),
                ("A", "L1", True),
                ("B", "L2", True),
                ("B", "x", True),
                ("B", "L2", True),
            ]
        )
        report = detect_races(trace, sync_objects=["L1", "L2"])
        assert report.race_count == 1

    def test_release_before_write_does_not_order(self):
        # A releases the lock *before* writing x; B acquires it afterwards.
        # The write is therefore concurrent with B's access: a race, even
        # though both threads used the same lock object.
        trace = build_trace(
            [
                ("A", "L", True),   # A acquire/release (single sync op)
                ("A", "x", True),   # A writes x after its last sync op
                ("B", "L", True),   # B syncs on L (ordered after A's L op)
                ("B", "x", True),   # B writes x
            ]
        )
        report = detect_races(trace, sync_objects=["L"])
        assert report.race_count == 1


class TestReport:
    def test_report_summary_and_object_partition(self):
        trace = build_trace(
            [
                ("A", "L", True),
                ("A", "x", True),
                ("B", "y", True),
                ("B", "L", True),
            ]
        )
        report = detect_races(trace, sync_objects=["L"])
        assert report.sync_objects == {"L"}
        assert report.data_objects == {"x", "y"}
        summary = report.summary()
        assert summary["thread_clock_size"] == 2
        assert summary["races"] == report.race_count
        assert report.racy_objects == frozenset(r.obj for r in report.races)

    def test_mixed_clock_report_for_sync_skeleton(self):
        # 4 threads all synchronising through one lock: the mixed clock over
        # the sync skeleton needs a single component (the lock), while a
        # thread-based clock needs 4.
        steps = []
        for thread in ("A", "B", "C", "D"):
            steps.append((thread, "L", True))
            steps.append((thread, f"private-{thread}", True))
        trace = build_trace(steps)
        report = detect_races(trace, sync_objects=["L"])
        assert report.thread_clock_size == 4
        assert report.mixed_clock_size == 1

    def test_clock_report_skipped_when_no_sync(self):
        trace = build_trace([("A", "x", True), ("B", "x", True)])
        report = RaceDetector(sync_objects=[]).analyse(trace)
        assert report.mixed_clock is None
        assert report.mixed_clock_size is None

    def test_clock_report_can_be_disabled(self):
        trace = build_trace([("A", "L", True), ("B", "L", True)])
        report = RaceDetector(sync_objects=["L"]).analyse(trace, with_clock_report=False)
        assert report.mixed_clock is None


class TestOnRuntimeTraces:
    def test_locked_counter_has_no_races(self):
        system = ConcurrentSystem()
        system.add_object("counter", 0)
        for name in ("A", "B", "C"):
            steps = []
            for _ in range(5):
                steps.extend([acquire("lock"), increment("counter"), release("lock")])
            system.add_thread(name, steps)
        result = system.run(seed=3)
        report = detect_races(result.computation, sync_objects=result.sync_objects)
        assert report.race_count == 0

    def test_unlocked_counter_races(self):
        system = ConcurrentSystem()
        system.add_object("counter", 0)
        for name in ("A", "B"):
            system.add_thread(name, [increment("counter") for _ in range(3)])
        result = system.run(seed=4)
        report = detect_races(result.computation, sync_objects=[])
        assert report.race_count > 0
        assert report.racy_objects == {"counter"}

    def test_partially_locked_program_flags_only_unprotected_object(self):
        system = ConcurrentSystem()
        system.add_object("safe", 0)
        system.add_object("unsafe", 0)
        for name in ("A", "B"):
            steps = [acquire("lock"), increment("safe"), release("lock"), increment("unsafe")]
            system.add_thread(name, steps)
        result = system.run(seed=9)
        report = detect_races(result.computation, sync_objects=result.sync_objects)
        assert "unsafe" in report.racy_objects
        assert "safe" not in report.racy_objects
