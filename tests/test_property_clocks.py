"""Property-based tests (hypothesis) for the clock protocols.

The single most important invariant in the library is Theorem 2 of the
paper: for every pair of distinct events of a computation,
``s → t ⇔ s.v < t.v``.  These tests generate random computations and check
that equivalence for every clock flavour: thread-based, object-based, mixed
(over the optimal cover and over arbitrary valid covers), the online
mechanisms' growing clocks, and the chain-clock baseline.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.baselines import ChainClock
from repro.computation import Computation, HappenedBefore
from repro.core import (
    timestamp_with_mixed_clock,
    timestamp_with_object_clock,
    timestamp_with_thread_clock,
)
from repro.offline import optimal_components_for_computation, timestamp_offline
from repro.online import (
    NaiveMechanism,
    OnlineClockProtocol,
    PopularityMechanism,
    RandomMechanism,
)
from tests.conftest import assert_valid_vector_clock

# Random computations: up to 5 threads, 5 objects, 30 events.
pair_lists = st.lists(
    st.tuples(
        st.sampled_from(["T0", "T1", "T2", "T3", "T4"]),
        st.sampled_from(["O0", "O1", "O2", "O3", "O4"]),
    ),
    min_size=1,
    max_size=30,
)

SETTINGS = settings(max_examples=40, deadline=None)


@st.composite
def computations(draw):
    return Computation.from_pairs(draw(pair_lists))


@SETTINGS
@given(computations())
def test_thread_clock_satisfies_theorem2(computation):
    stamped = timestamp_with_thread_clock(computation)
    assert_valid_vector_clock(computation, stamped.timestamp)


@SETTINGS
@given(computations())
def test_object_clock_satisfies_theorem2(computation):
    stamped = timestamp_with_object_clock(computation)
    assert_valid_vector_clock(computation, stamped.timestamp)


@SETTINGS
@given(computations())
def test_optimal_mixed_clock_satisfies_theorem2(computation):
    stamped = timestamp_offline(computation)
    assert_valid_vector_clock(computation, stamped.timestamp)
    # Optimality bound of the paper: never more than min(n, m) components.
    assert stamped.clock_size <= min(computation.num_threads, computation.num_objects)


@SETTINGS
@given(computations(), st.randoms(use_true_random=False))
def test_arbitrary_vertex_cover_clock_satisfies_theorem2(computation, rng):
    """Any vertex cover (not just the minimum one) yields a valid clock."""
    graph = computation.bipartite_graph()
    # Build a random cover: for each edge pick one endpoint, then add noise.
    cover = set()
    for thread, obj in graph.edges():
        cover.add(thread if rng.random() < 0.5 else obj)
    stamped = timestamp_with_mixed_clock(computation, cover, graph=graph)
    assert_valid_vector_clock(computation, stamped.timestamp)


@SETTINGS
@given(computations(), st.sampled_from(["naive", "naive-object", "random", "popularity"]))
def test_online_growing_clock_satisfies_theorem2(computation, mechanism_name):
    mechanism = {
        "naive": lambda: NaiveMechanism(),
        "naive-object": lambda: NaiveMechanism(side="object"),
        "random": lambda: RandomMechanism(seed=12345),
        "popularity": lambda: PopularityMechanism(),
    }[mechanism_name]()
    protocol = OnlineClockProtocol(mechanism)
    protocol.timestamp_computation(computation)
    assert_valid_vector_clock(computation, protocol.timestamp)


@SETTINGS
@given(computations())
def test_chain_clock_satisfies_theorem2(computation):
    result = ChainClock().run(computation)
    assert_valid_vector_clock(computation, lambda event: result.timestamps[event])


@SETTINGS
@given(computations())
def test_all_clock_flavours_agree_on_concurrency(computation):
    """Different valid clocks must induce exactly the same relation."""
    oracle = HappenedBefore(computation)
    thread_stamped = timestamp_with_thread_clock(computation)
    mixed_stamped = timestamp_offline(computation)
    for a in computation:
        for b in computation:
            if a == b:
                continue
            expected = oracle.concurrent(a, b)
            assert thread_stamped.concurrent(a, b) == expected
            assert mixed_stamped.concurrent(a, b) == expected


@SETTINGS
@given(computations())
def test_offline_components_are_a_cover_and_optimal(computation):
    result = optimal_components_for_computation(computation)
    graph = computation.bipartite_graph()
    result.components.validate_covers_graph(graph)
    # König-Egerváry: cover size equals maximum matching size.
    assert result.clock_size == len(result.matching)
    # No vertex cover can be smaller than a matching (weak duality), so any
    # other valid clock the library can build is at least as large.
    assert result.clock_size <= computation.num_threads
    assert result.clock_size <= computation.num_objects
