"""The mergeable quantile sketch behind cross-shard percentiles.

The engine follow-on the ROADMAP asked for: moment statistics merge
exactly but cannot answer medians; the t-digest-style sketch carries a
compressed sample whose merge is associative exactly for
count/min/max and within the digest's rank accuracy for quantiles.  The
hypothesis property pins both halves of that claim, and the accuracy
tests pin the estimates against exact order statistics.
"""

from __future__ import annotations

import pickle
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.metrics import QuantileSketch


def exact_percentile(values, p):
    ordered = sorted(values)
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


class TestAccuracy:
    def test_small_samples_are_near_exact(self):
        sketch = QuantileSketch.from_values([5.0, 1.0, 3.0])
        assert sketch.count == 3
        assert sketch.minimum == 1.0
        assert sketch.maximum == 5.0
        assert sketch.percentile(0.0) == 1.0
        assert sketch.percentile(100.0) == 5.0
        assert abs(sketch.median - 3.0) < 1e-9

    @pytest.mark.parametrize("p", [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0])
    def test_uniform_sample_within_rank_tolerance(self, p):
        rng = random.Random(7)
        values = [rng.random() for _ in range(5000)]
        sketch = QuantileSketch.from_values(values)
        assert abs(sketch.percentile(p) - exact_percentile(values, p)) < 0.02

    def test_skewed_sample_tails_stay_sharp(self):
        rng = random.Random(11)
        # Ratio-trajectory-shaped data: mostly near 1, a heavy early tail.
        values = [1.0 + rng.random() * 0.2 for _ in range(4000)]
        values += [5.0 + rng.random() * 20.0 for _ in range(80)]
        sketch = QuantileSketch.from_values(values)
        assert abs(sketch.median - exact_percentile(values, 50.0)) < 0.05
        assert sketch.percentile(99.0) > 2.0

    def test_centroid_count_stays_bounded(self):
        sketch = QuantileSketch(compression=32)
        for value in range(20_000):
            sketch.update(float(value % 997))
        sketch._flush()
        assert len(sketch._centroids) < 3 * 32


class TestMergeAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=3,
            max_size=120,
        ),
        cut=st.tuples(st.floats(0.1, 0.45), st.floats(0.55, 0.9)),
    )
    def test_merge_is_associative(self, values, cut):
        """Exact for count/min/max; rank-accurate for quantiles.

        ``(a + b) + c`` and ``a + (b + c)`` must agree exactly on the
        lossless fields and within the digest's accuracy on quantile
        estimates, whatever the split points.
        """
        first = int(len(values) * cut[0])
        second = max(first + 1, int(len(values) * cut[1]))
        a = QuantileSketch.from_values(values[:first])
        b = QuantileSketch.from_values(values[first:second])
        c = QuantileSketch.from_values(values[second:])
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.count == right.count == len(values)
        assert left.minimum == right.minimum == min(values)
        assert left.maximum == right.maximum == max(values)
        spread = max(values) - min(values)
        tolerance = spread * 0.15 + 1e-9
        # Absolute accuracy degrades with tiny samples (one value is a
        # whole rank step), so the vs-exact bound is rank-aware.
        exact_tolerance = spread * (0.25 + 2.0 / len(values)) + 1e-9
        for p in (10.0, 50.0, 90.0):
            assert abs(left.percentile(p) - right.percentile(p)) <= tolerance
            assert abs(left.percentile(p) - exact_percentile(values, p)) <= (
                exact_tolerance
            )

    def test_merge_does_not_mutate_operands(self):
        a = QuantileSketch.from_values([1.0, 2.0])
        b = QuantileSketch.from_values([3.0])
        merged = a.merge(b)
        assert merged.count == 3
        assert a.count == 2
        assert b.count == 1

    def test_merge_with_empty_is_identity_on_values(self):
        filled = QuantileSketch.from_values([1.0, 2.0, 3.0])
        empty = QuantileSketch()
        merged = filled.merge(empty)
        assert merged == filled
        assert empty.merge(filled) == filled

    def test_deterministic_for_fixed_chunking(self):
        values = [random.Random(3).random() for _ in range(500)]
        one = QuantileSketch.from_values(values)
        two = QuantileSketch.from_values(values)
        assert one == two
        assert one.merge(two).percentile(50.0) == two.merge(one).percentile(50.0)

    def test_pickle_round_trip(self):
        sketch = QuantileSketch.from_values(range(1000))
        clone = pickle.loads(pickle.dumps(sketch))
        assert clone == sketch
        assert clone.percentile(75.0) == sketch.percentile(75.0)


class TestValidation:
    def test_empty_query_raises(self):
        with pytest.raises(ValueError):
            QuantileSketch().percentile(50.0)

    def test_percentile_range_is_checked(self):
        sketch = QuantileSketch.from_values([1.0])
        with pytest.raises(ValueError):
            sketch.percentile(101.0)

    def test_compression_floor(self):
        with pytest.raises(ValueError):
            QuantileSketch(compression=1)

    def test_mismatched_compression_merge_raises(self):
        with pytest.raises(ValueError):
            QuantileSketch(compression=8).merge(QuantileSketch(compression=16))
