"""The sharded engine with the mechanism lifecycle switched on.

Asserts that the engine's headline determinism contract survives the
lifecycle extension (``--jobs N`` bit-identity with adaptive mechanisms,
epoch ticks and checkpoints), that the new per-shard retirement / epoch
counters merge correctly into :class:`~repro.engine.results.PartialResult`,
that the mergeable quantile sketch restores cross-shard percentiles, and
that the new CLI surface (``--epoch``, ``--skew-warn``,
``engine inspect`` / ``engine clean``) behaves.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.cli import main
from repro.engine import EngineConfig, EngineInterrupted, run_engine
from repro.exceptions import EngineError

ADAPTIVE_CONFIG = EngineConfig(
    scenario="thread-churn",
    num_threads=24,
    num_objects=24,
    density=0.15,
    num_events=2400,
    seed=77,
    num_shards=3,
    chunk_size=400,
    epoch_every=150,
    mechanisms=("popularity", "adaptive-popularity", "epoch-hybrid"),
)


class TestAdaptiveEngineDeterminism:
    def test_parallel_jobs_bit_identical_with_adaptive_mechanisms(self):
        serial = run_engine(ADAPTIVE_CONFIG, jobs=1)
        parallel = run_engine(ADAPTIVE_CONFIG, jobs=2)
        assert serial.fingerprint() == parallel.fingerprint()
        assert serial.partial == parallel.partial

    def test_interrupt_resume_with_lifecycle_state(self, tmp_path):
        """Adaptive mechanism state (live counts, DynamicMatching) pickles
        through checkpoints and resumes to the uninterrupted fingerprint."""
        baseline = run_engine(ADAPTIVE_CONFIG, jobs=1)
        checkpointed = dataclasses.replace(
            ADAPTIVE_CONFIG,
            checkpoint_dir=str(tmp_path / "ck"),
            max_chunks_per_shard=1,
        )
        with pytest.raises(EngineInterrupted):
            run_engine(checkpointed, jobs=1)
        resumed = dataclasses.replace(
            ADAPTIVE_CONFIG, checkpoint_dir=str(tmp_path / "ck")
        )
        assert run_engine(resumed, jobs=1).fingerprint() == baseline.fingerprint()

    def test_epoch_every_is_part_of_the_signature(self):
        without = dataclasses.replace(ADAPTIVE_CONFIG, epoch_every=None)
        assert ADAPTIVE_CONFIG.signature() != without.signature()
        assert run_engine(ADAPTIVE_CONFIG).fingerprint() != run_engine(
            without
        ).fingerprint()

    def test_epoch_every_validation(self):
        bad = dataclasses.replace(ADAPTIVE_CONFIG, epoch_every=0)
        with pytest.raises(EngineError):
            bad.validate()


class TestLifecycleCounters:
    @pytest.fixture(scope="class")
    def result(self):
        return run_engine(ADAPTIVE_CONFIG, jobs=1)

    def test_epoch_boundaries_are_counted(self, result):
        # Each shard ticks every 150 of its own inserts; 2400 inserts over
        # 3 shards give at least a handful of boundaries in total.
        assert result.epochs == sum(
            loads // 150 for loads in result.shard_loads().values()
        )
        assert result.epochs > 0

    def test_retirements_merge_per_label(self, result):
        assert result.retired_components("adaptive-popularity") > 0
        assert result.retired_components("epoch-hybrid") > 0
        assert result.retired_components("popularity") == 0
        assert result.retired_components("offline") == 0

    def test_adaptive_final_sizes_beat_append_only(self, result):
        adaptive = sum(result.final_sizes("adaptive-popularity").values())
        append_only = sum(result.final_sizes("popularity").values())
        assert adaptive < append_only

    def test_format_reports_lifecycle_columns(self, result):
        text = result.format()
        assert "epoch boundaries" in text
        assert "retired" in text
        assert "ratio p50" in text


class TestCrossShardPercentiles:
    @pytest.fixture(scope="class")
    def result(self):
        return run_engine(ADAPTIVE_CONFIG, jobs=1)

    def test_sketch_counts_match_moment_counts(self, result):
        for label in ("popularity", "adaptive-popularity", "epoch-hybrid"):
            sketch = result.pooled_ratio_sketch(label)
            stats = result.pooled_ratios(label)
            assert sketch is not None
            assert sketch.count == stats.count
            assert sketch.minimum == stats.minimum
            assert sketch.maximum == stats.maximum

    def test_percentiles_are_ordered_and_bounded(self, result):
        sketch = result.pooled_ratio_sketch("popularity")
        p50 = sketch.percentile(50.0)
        p95 = sketch.percentile(95.0)
        assert sketch.minimum <= p50 <= p95 <= sketch.maximum
        assert sketch.median == p50

    def test_offline_series_has_no_sketch(self, result):
        assert result.pooled_ratio_sketch("offline") is None

    def test_windowed_run_supports_adaptive_mechanisms(self):
        config = EngineConfig(
            scenario="hot-object-drift",
            num_threads=20,
            num_objects=20,
            density=0.2,
            num_events=1500,
            seed=13,
            num_shards=2,
            chunk_size=500,
            window=200,
            epoch_every=100,
            mechanisms=("popularity", "adaptive-popularity"),
        )
        serial = run_engine(config, jobs=1)
        parallel = run_engine(config, jobs=2)
        assert serial.fingerprint() == parallel.fingerprint()
        assert serial.retired_components("adaptive-popularity") > 0

    def test_stream_epoch_markers_reach_every_shard(self):
        """phase-change markers are broadcast: every shard ticks them."""
        config = EngineConfig(
            scenario="phase-change",
            num_threads=16,
            num_objects=16,
            density=0.2,
            num_events=1200,
            seed=3,
            num_shards=3,
            chunk_size=400,
            mechanisms=("popularity", "epoch-hybrid"),
        )
        result = run_engine(config, jobs=1)
        # 3 interior phase boundaries (default 4 phases) x 3 shards.
        assert result.epochs == 9
        assert run_engine(config, jobs=2).fingerprint() == result.fingerprint()

    def test_insert_less_shards_still_count_broadcast_epochs(self):
        """A shard that receives only markers must still tick its epochs.

        With 2 threads hashed over 6 shards most shards see no events at
        all - only the broadcast markers.  Their epoch counts (and the
        epoch-rebuild state of their mechanisms) ride in chunks with zero
        inserts, which used to be silently dropped.
        """
        config = EngineConfig(
            scenario="phase-change",
            num_threads=2,
            num_objects=8,
            density=0.3,
            num_events=400,
            seed=1,
            num_shards=6,
            chunk_size=100,
            mechanisms=("popularity", "epoch-hybrid"),
        )
        result = run_engine(config, jobs=1)
        assert result.epochs == 3 * 6
        assert run_engine(config, jobs=3).fingerprint() == result.fingerprint()

    def test_engine_finals_match_per_shard_one_pass_with_adaptive(self):
        """Per-shard engine finals == the serial one-pass driver's finals.

        The one-pass driver reads a mechanism's clock size *after* the
        whole (sub-)stream, trailing expires included; the engine must
        agree even when a shard's sub-stream ends in expire events that
        retire components (the count-0 lifecycle-fragment path).
        """
        from repro.computation import REGISTRY, STREAM
        from repro.engine.runner import run_shard
        from repro.engine.sharding import StreamSharder
        from repro.online import compare_mechanisms_on_stream, seed_mechanism_factories
        from repro.analysis.experiments import EXTENDED_MECHANISMS
        from repro.seeds import derive_seed

        config = ADAPTIVE_CONFIG
        scenario = REGISTRY.get(config.scenario, kind=STREAM)
        for shard_id in range(config.num_shards):
            partial = run_shard(config, shard_id)
            stream = scenario.build(
                config.num_threads,
                config.num_objects,
                config.density,
                config.num_events,
                seed=derive_seed(config.seed, config.scenario, "stream"),
            )
            sub_stream = StreamSharder(config.num_shards, config.strategy).select(
                stream, shard_id
            )
            factories = seed_mechanism_factories(
                {label: EXTENDED_MECHANISMS[label] for label in config.mechanisms},
                derive_seed(config.seed, config.scenario, "shard", shard_id),
            )
            reference = compare_mechanisms_on_stream(
                sub_stream,
                factories,
                include_offline=True,
                epoch=config.epoch_every,
            )
            for label in config.mechanisms:
                fragment = partial.series[(shard_id, label)]
                assert fragment.final_size == reference[label].final_size
                assert fragment.retired == reference[label].retired_components


class TestEngineCli:
    def test_run_accepts_epoch_and_adaptive_mechanisms(self, capsys):
        code = main(
            [
                "engine", "run", "--scenario", "thread-churn",
                "--events", "600", "--nodes", "16", "--shards", "2",
                "--chunk-size", "200", "--epoch", "100",
                "--mechanisms", "popularity,adaptive-popularity",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "adaptive-popularity" in captured.out
        assert "epoch boundaries" in captured.out

    def test_skew_warning_fires_on_unbalanced_shards(self, capsys):
        # 2 threads over 4 hash shards guarantees empty shards -> inf skew.
        code = main(
            [
                "engine", "run", "--scenario", "hot-object-drift",
                "--events", "300", "--nodes", "2", "--shards", "4",
                "--chunk-size", "100", "--skew-warn", "2.0",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "shard load skew" in captured.err

    def test_skew_warning_can_be_disabled(self, capsys):
        code = main(
            [
                "engine", "run", "--scenario", "hot-object-drift",
                "--events", "300", "--nodes", "2", "--shards", "4",
                "--chunk-size", "100", "--skew-warn", "0",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "shard load skew" not in captured.err

    def test_inspect_summarises_checkpoints(self, tmp_path, capsys):
        directory = str(tmp_path / "ck")
        assert main(
            [
                "engine", "run", "--scenario", "thread-churn",
                "--events", "600", "--nodes", "16", "--shards", "2",
                "--chunk-size", "200", "--checkpoint-dir", directory,
            ]
        ) == 0
        capsys.readouterr()
        assert main(["engine", "inspect", directory]) == 0
        captured = capsys.readouterr()
        assert "scenario: thread-churn" in captured.out
        assert "chunks_done" in captured.out
        assert "progress: 600/600" in captured.out

    def test_clean_prunes_unreferenced_files(self, tmp_path, capsys):
        directory = tmp_path / "ck"
        assert main(
            [
                "engine", "run", "--scenario", "thread-churn",
                "--events", "600", "--nodes", "16", "--shards", "2",
                "--chunk-size", "200", "--checkpoint-dir", str(directory),
            ]
        ) == 0
        stale_shard = directory / "shard-7.pickle"
        orphan_tmp = directory / "shard-0.pickle.tmpabc"
        stale_shard.write_bytes(b"stale")
        orphan_tmp.write_bytes(b"orphan")
        capsys.readouterr()
        assert main(["engine", "clean", str(directory)]) == 0
        captured = capsys.readouterr()
        assert "pruned 2" in captured.out
        assert not stale_shard.exists()
        assert not orphan_tmp.exists()
        assert (directory / "shard-0.pickle").exists()
        assert (directory / "manifest.json").exists()

    def test_inspect_rejects_non_checkpoint_directory(self, tmp_path, capsys):
        assert main(["engine", "inspect", str(tmp_path)]) == 2
        assert "not a checkpoint directory" in capsys.readouterr().err
