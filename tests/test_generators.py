"""Unit tests for the random bipartite graph generators (Section V scenarios)."""

from __future__ import annotations

import pytest

from repro.graph import (
    BipartiteGraph,
    GraphSpec,
    clustered_bipartite,
    complete_bipartite,
    graph_from_edges,
    nonuniform_bipartite,
    object_names,
    powerlaw_bipartite,
    star_bipartite,
    thread_names,
    uniform_bipartite,
)
from repro.graph.generators import expected_edge_count


class TestNames:
    def test_thread_and_object_names(self):
        assert thread_names(3) == ["T0", "T1", "T2"]
        assert object_names(2) == ["O0", "O1"]
        assert thread_names(0) == []


class TestUniform:
    def test_shape(self):
        graph = uniform_bipartite(10, 20, 0.3, seed=1)
        assert graph.num_threads == 10
        assert graph.num_objects == 20

    def test_determinism_with_seed(self):
        a = uniform_bipartite(15, 15, 0.2, seed=7)
        b = uniform_bipartite(15, 15, 0.2, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        a = uniform_bipartite(20, 20, 0.3, seed=1)
        b = uniform_bipartite(20, 20, 0.3, seed=2)
        assert a != b

    def test_density_extremes(self):
        empty = uniform_bipartite(10, 10, 0.0, seed=3)
        assert empty.num_edges == 0
        full = uniform_bipartite(10, 10, 1.0, seed=3)
        assert full.num_edges == 100

    def test_expected_density_approximately_met(self):
        graph = uniform_bipartite(60, 60, 0.1, seed=11)
        expected = expected_edge_count(60, 60, 0.1)
        assert abs(graph.num_edges - expected) < 0.35 * expected

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            uniform_bipartite(0, 10, 0.5)
        with pytest.raises(ValueError):
            uniform_bipartite(10, 0, 0.5)
        with pytest.raises(ValueError):
            uniform_bipartite(10, 10, 1.5)
        with pytest.raises(ValueError):
            uniform_bipartite(10, 10, -0.1)


class TestNonuniform:
    def test_shape_and_determinism(self):
        a = nonuniform_bipartite(30, 30, 0.05, seed=5)
        b = nonuniform_bipartite(30, 30, 0.05, seed=5)
        assert a == b
        assert a.num_threads == 30 and a.num_objects == 30

    def test_popular_vertices_have_higher_degree(self):
        graph = nonuniform_bipartite(
            50, 50, 0.05, popular_fraction=0.1, popular_boost=10.0, seed=9
        )
        degrees = sorted((graph.degree(t) for t in graph.threads), reverse=True)
        top = sum(degrees[:5]) / 5
        rest = sum(degrees[5:]) / max(1, len(degrees) - 5)
        assert top > rest  # the popular 10% dominate

    def test_overall_density_close_to_requested(self):
        graph = nonuniform_bipartite(80, 80, 0.05, seed=3)
        assert 0.02 <= graph.density() <= 0.09

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            nonuniform_bipartite(10, 10, 0.05, popular_fraction=1.5)
        with pytest.raises(ValueError):
            nonuniform_bipartite(10, 10, 0.05, popular_boost=0.5)


class TestOtherFamilies:
    def test_powerlaw_shape(self):
        graph = powerlaw_bipartite(40, 40, 0.05, seed=2)
        assert graph.num_threads == 40
        assert graph.num_objects == 40
        assert graph.num_edges > 0

    def test_powerlaw_determinism(self):
        assert powerlaw_bipartite(20, 20, 0.1, seed=4) == powerlaw_bipartite(
            20, 20, 0.1, seed=4
        )

    def test_clustered_shape(self):
        graph = clustered_bipartite(40, 40, 0.05, num_clusters=4, seed=6)
        assert graph.num_threads == 40
        assert graph.num_edges > 0

    def test_clustered_validation(self):
        with pytest.raises(ValueError):
            clustered_bipartite(10, 10, 0.1, num_clusters=0)

    def test_complete_and_star(self):
        assert complete_bipartite(3, 4).num_edges == 12
        star = star_bipartite(5, 7)
        assert star.num_edges == 7
        assert star.degree("T0") == 7

    def test_graph_from_edges(self):
        graph = graph_from_edges([("a", "x"), ("b", "x")])
        assert graph.num_threads == 2
        assert graph.num_objects == 1


class TestGraphSpec:
    @pytest.mark.parametrize("family", ["uniform", "nonuniform", "powerlaw", "clustered"])
    def test_spec_generates_each_family(self, family):
        spec = GraphSpec(family=family, num_threads=12, num_objects=12, density=0.2, seed=3)
        graph = spec.generate()
        assert isinstance(graph, BipartiteGraph)
        assert graph.num_threads == 12

    def test_spec_seed_override(self):
        spec = GraphSpec(family="uniform", num_threads=12, num_objects=12, density=0.3, seed=3)
        assert spec.generate(seed=5) == spec.generate(seed=5)
        assert spec.generate(seed=5) != spec.generate(seed=6)

    def test_unknown_family(self):
        spec = GraphSpec(family="hypercube", num_threads=4, num_objects=4, density=0.5)
        with pytest.raises(ValueError):
            spec.generate()
