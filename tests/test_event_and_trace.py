"""Unit tests for events, computations and the computation builder."""

from __future__ import annotations

import pytest

from repro.computation import Computation, ComputationBuilder, Event, Operation
from repro.computation.workloads import paper_example_trace
from repro.exceptions import ComputationError


class TestEvent:
    def test_event_fields_and_helpers(self):
        e = Event(index=0, thread="T1", obj="O1", thread_seq=0, object_seq=0)
        f = Event(index=1, thread="T1", obj="O2", thread_seq=1, object_seq=0)
        g = Event(index=2, thread="T2", obj="O2", thread_seq=0, object_seq=1)
        assert e.same_thread(f)
        assert not e.same_thread(g)
        assert f.same_object(g)
        assert e.endpoints() == ("T1", "O1")
        assert str(e) == "[T1,O1]#0"
        assert "T1" in e.describe()

    def test_event_is_hashable_and_frozen(self):
        e = Event(index=0, thread="T1", obj="O1", thread_seq=0, object_seq=0)
        assert {e: 1}[e] == 1
        with pytest.raises(AttributeError):
            e.thread = "T2"

    def test_operation_defaults(self):
        op = Operation(thread="T1", obj="O1")
        assert op.is_write
        assert op.label == ""


class TestComputationBuilder:
    def test_sequence_numbers(self):
        builder = ComputationBuilder()
        e0 = builder.append("A", "x")
        e1 = builder.append("A", "y")
        e2 = builder.append("B", "x")
        assert (e0.thread_seq, e0.object_seq) == (0, 0)
        assert (e1.thread_seq, e1.object_seq) == (1, 0)
        assert (e2.thread_seq, e2.object_seq) == (0, 1)
        assert builder.num_events == 3
        assert builder.events_so_far() == (e0, e1, e2)

    def test_extend(self):
        builder = ComputationBuilder()
        builder.extend([("A", "x"), ("B", "y")])
        computation = builder.build()
        assert computation.num_events == 2


class TestComputation:
    def test_from_pairs_and_accessors(self, small_computation):
        assert small_computation.num_events == 5
        assert small_computation.threads == ("A", "B")
        assert small_computation.objects == ("x", "shared", "y")
        assert small_computation.num_threads == 2
        assert small_computation.num_objects == 3
        assert len(small_computation) == 5
        assert small_computation[0].thread == "A"

    def test_from_operations(self):
        ops = [Operation("A", "x", label="write", is_write=True),
               Operation("B", "x", label="read", is_write=False)]
        computation = Computation.from_operations(ops)
        assert computation[0].label == "write"
        assert computation[1].is_write is False

    def test_chains(self, small_computation):
        a_chain = small_computation.thread_events("A")
        assert [e.obj for e in a_chain] == ["x", "shared", "x"]
        shared_chain = small_computation.object_events("shared")
        assert [e.thread for e in shared_chain] == ["B", "A"]

    def test_unknown_chain_raises(self, small_computation):
        with pytest.raises(ComputationError):
            small_computation.thread_events("Z")
        with pytest.raises(ComputationError):
            small_computation.object_events("zz")

    def test_bipartite_graph_projection(self, small_computation):
        graph = small_computation.bipartite_graph()
        assert graph.num_threads == 2
        assert graph.num_objects == 3
        assert set(graph.edges()) == {
            ("A", "x"),
            ("A", "shared"),
            ("B", "shared"),
            ("B", "y"),
        }

    def test_access_pairs_deduplicated_in_first_occurrence_order(self, small_computation):
        assert small_computation.access_pairs() == (
            ("A", "x"),
            ("B", "shared"),
            ("A", "shared"),
            ("B", "y"),
        )

    def test_prefix(self, small_computation):
        prefix = small_computation.prefix(2)
        assert prefix.num_events == 2
        assert prefix.to_pairs() == [("A", "x"), ("B", "shared")]
        with pytest.raises(ComputationError):
            small_computation.prefix(-1)

    def test_immediate_predecessors_and_successors(self, small_computation):
        events = small_computation.events
        # events: 0=(A,x) 1=(B,shared) 2=(A,shared) 3=(A,x) 4=(B,y)
        assert small_computation.immediate_predecessors(events[0]) == ()
        assert set(small_computation.immediate_predecessors(events[2])) == {
            events[0],
            events[1],
        }
        assert set(small_computation.immediate_successors(events[0])) == {events[2], events[3]}
        assert small_computation.immediate_successors(events[4]) == ()

    def test_round_trip_to_pairs(self, small_computation):
        pairs = small_computation.to_pairs()
        rebuilt = Computation.from_pairs(pairs)
        assert rebuilt == small_computation

    def test_equality(self, small_computation):
        assert small_computation == Computation.from_pairs(small_computation.to_pairs())
        assert small_computation != Computation.from_pairs([("A", "x")])
        assert small_computation != 42

    def test_validation_rejects_bad_indices(self):
        bad = [Event(index=1, thread="A", obj="x", thread_seq=0, object_seq=0)]
        with pytest.raises(ComputationError):
            Computation(bad)

    def test_validation_rejects_bad_sequence_numbers(self):
        bad = [
            Event(index=0, thread="A", obj="x", thread_seq=0, object_seq=0),
            Event(index=1, thread="A", obj="x", thread_seq=2, object_seq=1),
        ]
        with pytest.raises(ComputationError):
            Computation(bad)

    def test_paper_example_trace(self):
        trace = paper_example_trace()
        assert trace.num_threads == 4
        assert trace.num_objects == 3  # O4 never appears in the computation
        graph = trace.bipartite_graph()
        for thread, obj in graph.edges():
            assert thread == "T2" or obj in ("O2", "O3")
