"""Unit tests for consistent cuts, recovery lines and checkpoints."""

from __future__ import annotations

import pytest

from repro.computation import Computation, HappenedBefore, random_trace
from repro.exceptions import ComputationError
from repro.offline import timestamp_offline
from repro.runtime.snapshots import (
    CheckpointManager,
    causal_past_cut,
    frontier_of,
    is_consistent_cut,
    latest_consistent_cut,
)
from tests.conftest import random_pairs


def brute_force_is_consistent(computation, cut):
    """Oracle: a cut is consistent iff it is closed under full happened-before."""
    oracle = HappenedBefore(computation)
    cut = set(cut)
    return all(
        predecessor in cut
        for event in cut
        for predecessor in oracle.predecessors(event)
    )


class TestConsistencyPredicate:
    def test_empty_and_full_cuts_are_consistent(self, small_computation):
        assert is_consistent_cut(small_computation, [])
        assert is_consistent_cut(small_computation, small_computation.events)

    def test_prefix_of_interleaving_is_consistent(self, small_computation):
        # The interleaving order is a linear extension, so every prefix is a cut.
        for length in range(len(small_computation) + 1):
            assert is_consistent_cut(small_computation, small_computation.events[:length])

    def test_missing_predecessor_is_detected(self, small_computation):
        events = small_computation.events
        # events[2] = (A, shared) has predecessors (A,x)@0 and (B,shared)@1.
        assert not is_consistent_cut(small_computation, [events[2]])
        assert not is_consistent_cut(small_computation, [events[0], events[2]])
        assert is_consistent_cut(small_computation, [events[0], events[1], events[2]])

    def test_agrees_with_brute_force_on_random_subsets(self):
        import random as random_module

        computation = Computation.from_pairs(random_pairs(4, 4, 30, seed=13))
        rng = random_module.Random(7)
        for _ in range(25):
            subset = [e for e in computation if rng.random() < 0.4]
            assert is_consistent_cut(computation, subset) == brute_force_is_consistent(
                computation, subset
            )


class TestCausalPastCut:
    def test_is_smallest_consistent_superset(self, small_computation):
        oracle = HappenedBefore(small_computation)
        for event in small_computation:
            cut = causal_past_cut(small_computation, [event])
            assert event in cut
            assert is_consistent_cut(small_computation, cut)
            # Smallest: it is exactly {event} union its causal past.
            assert cut == frozenset({event}) | oracle.predecessors(event)

    def test_multiple_targets(self, medium_random_computation):
        events = medium_random_computation.events
        targets = [events[10], events[40], events[80]]
        cut = causal_past_cut(medium_random_computation, targets)
        assert is_consistent_cut(medium_random_computation, cut)
        assert set(targets) <= cut

    def test_foreign_event_rejected(self, small_computation):
        foreign = Computation.from_pairs([("Z", "q"), ("Z", "q"), ("Z", "q"),
                                          ("Z", "q"), ("Z", "q"), ("Z", "q")])
        with pytest.raises(ComputationError):
            causal_past_cut(small_computation, [foreign.events[5]])


class TestRecoveryLine:
    def test_within_limits_and_consistent(self):
        trace = random_trace(5, 6, 80, seed=23)
        limits = {thread: len(trace.thread_events(thread)) // 2 for thread in trace.threads}
        cut = latest_consistent_cut(trace, limits)
        assert is_consistent_cut(trace, cut)
        per_thread = frontier_of(cut)
        for thread, frontier_event in per_thread.items():
            assert frontier_event.thread_seq + 1 <= limits[thread]

    def test_is_largest_among_prefix_cuts(self):
        trace = random_trace(4, 5, 50, seed=29)
        limits = {thread: max(0, len(trace.thread_events(thread)) - 2) for thread in trace.threads}
        cut = latest_consistent_cut(trace, limits)
        # Adding back the next event of any thread must break consistency or
        # exceed that thread's limit - otherwise the cut was not maximal.
        kept = {thread: 0 for thread in trace.threads}
        for event in cut:
            kept[event.thread] = max(kept[event.thread], event.thread_seq + 1)
        for thread in trace.threads:
            position = kept[thread]
            if position >= limits[thread]:
                continue
            extra = trace.thread_events(thread)[position]
            assert not is_consistent_cut(trace, set(cut) | {extra})

    def test_full_limits_give_everything(self, small_computation):
        limits = {t: len(small_computation.thread_events(t)) for t in small_computation.threads}
        assert latest_consistent_cut(small_computation, limits) == frozenset(
            small_computation.events
        )

    def test_zero_limits_give_empty_cut(self, small_computation):
        assert latest_consistent_cut(small_computation, {}) == frozenset()

    def test_negative_limit_rejected(self, small_computation):
        with pytest.raises(ComputationError):
            latest_consistent_cut(small_computation, {"A": -1})


class TestCheckpointManager:
    def test_checkpoints_and_recovery_line(self):
        trace = random_trace(4, 4, 60, seed=17)
        stamped = timestamp_offline(trace)
        manager = CheckpointManager(stamped)
        for thread in trace.threads:
            manager.take_checkpoint(thread, len(trace.thread_events(thread)) // 2)
        line = manager.recovery_line()
        assert is_consistent_cut(trace, line)
        work = manager.rollback_work()
        assert set(work) == set(trace.threads)
        assert all(amount >= 0 for amount in work.values())

    def test_checkpoint_timestamps_recorded(self, small_computation):
        stamped = timestamp_offline(small_computation)
        manager = CheckpointManager(stamped)
        checkpoint = manager.take_checkpoint("A", 2)
        assert checkpoint.timestamp == stamped[small_computation.thread_events("A")[1]]
        empty = manager.take_checkpoint("B", 0)
        assert empty.timestamp is None
        assert set(manager.checkpoints) == {"A", "B"}

    def test_out_of_range_checkpoint_rejected(self, small_computation):
        manager = CheckpointManager(timestamp_offline(small_computation))
        with pytest.raises(ComputationError):
            manager.take_checkpoint("A", 99)
