"""Unit tests for bipartite graph serialization."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import GraphError
from repro.graph import BipartiteGraph, paper_example_graph, uniform_bipartite
from repro.graph.io import (
    FORMAT_NAME,
    dump_edge_list,
    dump_graph,
    graph_from_dict,
    graph_to_dict,
    load_edge_list,
    load_graph,
)


class TestJsonFormat:
    def test_dict_round_trip_preserves_isolated_vertices(self):
        graph = BipartiteGraph(threads=["T1", "T2"], objects=["O1", "O2"],
                               edges=[("T1", "O1")])
        rebuilt = graph_from_dict(graph_to_dict(graph))
        assert rebuilt == graph
        assert rebuilt.isolated_vertices() == {"T2", "O2"}

    def test_file_round_trip(self, tmp_path):
        graph = uniform_bipartite(12, 15, 0.2, seed=3)
        path = tmp_path / "graph.json"
        dump_graph(graph, path)
        assert load_graph(path) == graph
        assert json.loads(path.read_text())["format"] == FORMAT_NAME

    def test_rejects_wrong_format_and_version(self):
        with pytest.raises(GraphError):
            graph_from_dict({"format": "other", "version": 1})
        with pytest.raises(GraphError):
            graph_from_dict({"format": FORMAT_NAME, "version": 9})
        with pytest.raises(GraphError):
            graph_from_dict(["nope"])

    def test_rejects_malformed_edges(self):
        base = {"format": FORMAT_NAME, "version": 1, "threads": ["T1"], "objects": ["O1"]}
        with pytest.raises(GraphError):
            graph_from_dict({**base, "edges": [["T1"]]})
        with pytest.raises(GraphError):
            graph_from_dict({**base, "edges": [["T1", "O9"]]})
        with pytest.raises(GraphError):
            graph_from_dict({**base, "edges": "not-a-list"})

    def test_rejects_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{oops")
        with pytest.raises(GraphError):
            load_graph(path)


class TestEdgeListFormat:
    def test_round_trip(self, tmp_path):
        graph = paper_example_graph()
        path = tmp_path / "graph.tsv"
        dump_edge_list(graph, path)
        rebuilt = load_edge_list(path)
        # Isolated vertices (O4) are not representable in an edge list.
        assert set(rebuilt.edges()) == set(graph.edges())
        assert rebuilt.num_objects == graph.num_objects - 1

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "graph.tsv"
        path.write_text("# a comment\n\nT1\tO1\nT2 O1\n")
        graph = load_edge_list(path)
        assert set(graph.edges()) == {("T1", "O1"), ("T2", "O1")}

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "graph.tsv"
        path.write_text("T1 O1 extra\n")
        with pytest.raises(GraphError):
            load_edge_list(path)
