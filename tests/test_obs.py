"""Tests for the telemetry layer: registry, merging, exporters, identity.

The load-bearing property is the last test class: fingerprints must be
*bit-identical* with and without an installed registry, across every
pipeline/backend/jobs combination - telemetry is observed, never
observed-from.  Everything else (counter arithmetic, snapshot merging,
the three export formats) supports that contract's operator surface.
"""

from __future__ import annotations

import dataclasses
import json
import pickle

import pytest

from repro.cli import main
from repro.core.kernel import numpy_available
from repro.engine import EngineConfig, run_engine
from repro.obs import (
    HISTOGRAM_COMPRESSION,
    MetricsRegistry,
    active,
    disable,
    enable,
    install,
    span,
)
from repro.obs.exporters import (
    METRICS_SCHEMA_VERSION,
    format_summary,
    metrics_document,
    write_chrome_trace,
    write_metrics_json,
    write_spans_jsonl,
)
from repro.obs.registry import NULL_SPAN


@pytest.fixture(autouse=True)
def no_leaked_registry():
    """Every test starts and ends with telemetry disabled."""
    previous = install(None)
    yield
    install(previous)


# ---------------------------------------------------------------------------
# Registry primitives
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_counters_accumulate_and_default_to_zero(self):
        registry = MetricsRegistry()
        assert registry.counter_value("engine.chunks") == 0
        registry.add("engine.chunks")
        registry.add("engine.chunks", 4)
        assert registry.counter_value("engine.chunks") == 5
        assert registry.counters() == {"engine.chunks": 5}

    def test_gauges_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("engine.jobs", 2)
        registry.gauge("engine.jobs", 4)
        assert registry.gauge_value("engine.jobs") == 4.0
        assert registry.gauge_value("missing", -1.0) == -1.0

    def test_histogram_percentiles(self):
        registry = MetricsRegistry()
        for value in range(1, 101):
            registry.observe("latency", float(value))
        assert registry.percentile("latency", 50.0) == pytest.approx(50.5, abs=2.0)
        assert registry.percentile("latency", 99.0) == pytest.approx(99.0, abs=2.0)
        assert registry.percentile("missing", 50.0) is None

    def test_span_records_name_attrs_and_duration(self):
        registry = MetricsRegistry(origin="test")
        with registry.span("work", shard=3, pipeline="batched") as timer:
            pass
        assert timer.duration >= 0.0
        ((origin, name, start, duration, attrs),) = registry.span_records()
        assert (origin, name) == ("test", "work")
        assert duration == timer.duration
        assert start >= 0.0
        assert attrs == (("pipeline", "batched"), ("shard", 3))
        assert registry.span_totals() == {"work": (1, duration, duration)}

    def test_sorted_read_views(self):
        registry = MetricsRegistry()
        registry.add("b")
        registry.add("a")
        registry.gauge("z", 1)
        registry.gauge("y", 2)
        registry.observe("n", 1.0)
        registry.observe("m", 2.0)
        assert list(registry.counters()) == ["a", "b"]
        assert list(registry.gauges()) == ["y", "z"]
        assert [name for name, _ in registry.histograms()] == ["m", "n"]


class TestInstallation:
    def test_install_returns_previous(self):
        first = MetricsRegistry()
        second = MetricsRegistry()
        assert install(first) is None
        assert active() is first
        assert install(second) is first
        assert disable() is second
        assert active() is None

    def test_enable_defaults_to_fresh_registry(self):
        registry = enable()
        assert active() is registry
        assert isinstance(registry, MetricsRegistry)

    def test_module_helpers_write_to_installed(self):
        registry = enable()
        from repro import obs

        obs.add("hits", 2)
        obs.gauge("level", 7)
        obs.observe("lat", 0.5)
        with obs.span("step"):
            pass
        assert registry.counter_value("hits") == 2
        assert registry.gauge_value("level") == 7.0
        assert registry.histogram("lat").count == 1
        assert len(registry.span_records()) == 1


# ---------------------------------------------------------------------------
# Disabled mode: the default must cost (almost) nothing
# ---------------------------------------------------------------------------
class TestDisabledMode:
    def test_span_returns_shared_null_span(self):
        assert span("anything", k=1) is NULL_SPAN
        assert span("other") is NULL_SPAN
        with span("nested") as timer:
            assert timer is NULL_SPAN
        assert NULL_SPAN.duration == 0.0

    def test_helpers_are_noops(self):
        from repro import obs

        obs.add("never", 10)
        obs.gauge("never", 1.0)
        obs.observe("never", 1.0)
        registry = enable()
        assert registry.counter_value("never") == 0

    def test_disabled_write_loop_is_cheap(self):
        # A smoke bound, not a benchmark: 100k no-op observations must
        # finish in well under a second even on a loaded CI core.
        from time import perf_counter

        from repro import obs

        start = perf_counter()
        for _ in range(100_000):
            obs.add("hot.counter")
        assert perf_counter() - start < 1.0


# ---------------------------------------------------------------------------
# Snapshots and merging (the spawn-worker protocol)
# ---------------------------------------------------------------------------
class TestSnapshotMerge:
    def test_snapshot_is_picklable(self):
        registry = MetricsRegistry(origin="shard-0")
        registry.add("events", 3)
        registry.observe("lat", 0.25)
        with registry.span("chunk", shard=0):
            pass
        snapshot = pickle.loads(pickle.dumps(registry.snapshot()))
        assert snapshot.origin == "shard-0"
        assert snapshot.counters == {"events": 3}
        assert snapshot.histograms["lat"].count == 1
        assert len(snapshot.spans) == 1

    def test_counters_sum_and_gauges_overwrite(self):
        parent = MetricsRegistry()
        parent.add("events", 5)
        parent.gauge("engine.shard[0].inserts", 10)
        worker = MetricsRegistry(origin="shard-1")
        worker.add("events", 7)
        worker.gauge("engine.shard[1].inserts", 20)
        parent.merge_snapshot(worker.snapshot())
        assert parent.counter_value("events") == 12
        assert parent.gauge_value("engine.shard[0].inserts") == 10.0
        assert parent.gauge_value("engine.shard[1].inserts") == 20.0

    def test_histogram_merge_matches_single_registry(self):
        # Sketch-merge correctness: percentiles of the merged histogram
        # equal those of one registry that observed the union directly
        # (QuantileSketch.merge is exact for these sizes).
        low = [float(v) for v in range(100)]
        high = [float(v) for v in range(100, 200)]
        left = MetricsRegistry(origin="shard-0")
        right = MetricsRegistry(origin="shard-1")
        combined = MetricsRegistry()
        for value in low:
            left.observe("lat", value)
            combined.observe("lat", value)
        for value in high:
            right.observe("lat", value)
            combined.observe("lat", value)
        parent = MetricsRegistry()
        parent.merge_snapshot(left.snapshot())
        parent.merge_snapshot(right.snapshot())
        assert parent.histogram("lat").count == 200
        for p in (50.0, 90.0, 99.0):
            assert parent.percentile("lat", p) == pytest.approx(
                combined.percentile("lat", p), rel=0.05
            )

    def test_merged_spans_keep_origin_and_reanchor(self):
        parent = MetricsRegistry(origin="main")
        worker = MetricsRegistry(origin="shard-2")
        with worker.span("chunk"):
            pass
        parent.merge_snapshot(worker.snapshot())
        ((origin, name, start, _duration, _attrs),) = parent.span_records()
        assert (origin, name) == ("shard-2", "chunk")
        # Re-anchored onto the parent's timeline via the wall epochs: the
        # worker was created after the parent, so its spans cannot land
        # noticeably before the parent's epoch.
        assert start > -1.0

    def test_merge_requires_shared_compression(self):
        # All registries share HISTOGRAM_COMPRESSION by construction;
        # this pins the constant the merge contract relies on.
        registry = MetricsRegistry()
        registry.observe("lat", 1.0)
        assert registry.histogram("lat").compression == HISTOGRAM_COMPRESSION


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------
def populated_registry():
    registry = MetricsRegistry(origin="main")
    registry.add("kernel.array_cache.hits", 30)
    registry.add("kernel.array_cache.misses", 10)
    registry.add("kernel.batch.array_events", 80)
    registry.add("kernel.batch.python_events", 20)
    registry.gauge("engine.jobs", 2)
    for value in range(1, 11):
        registry.observe("engine.chunk_s", value / 10.0)
    with registry.span("engine.map", jobs=2):
        pass
    worker = MetricsRegistry(origin="shard-0")
    with worker.span("engine.chunk", shard=0):
        pass
    registry.merge_snapshot(worker.snapshot())
    return registry


class TestExporters:
    def test_metrics_document_shape_and_derived(self):
        document = metrics_document(populated_registry())
        assert document["schema"] == METRICS_SCHEMA_VERSION
        assert document["counters"]["kernel.array_cache.hits"] == 30
        assert document["derived"]["kernel_cache_hit_rate"] == pytest.approx(0.75)
        assert document["derived"]["kernel_array_path_share"] == pytest.approx(0.8)
        row = document["histograms"]["engine.chunk_s"]
        assert row["count"] == 10
        assert row["min"] == pytest.approx(0.1)
        assert row["max"] == pytest.approx(1.0)
        assert row["p50"] is not None and row["p99"] is not None
        assert document["spans"]["engine.map"]["count"] == 1

    def test_derived_ratios_null_when_unobserved(self):
        document = metrics_document(MetricsRegistry())
        assert document["derived"]["kernel_cache_hit_rate"] is None
        assert document["derived"]["kernel_array_path_share"] is None

    def test_metrics_json_round_trip(self, tmp_path):
        registry = populated_registry()
        path = write_metrics_json(registry, tmp_path / "metrics.json")
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(metrics_document(registry)))

    def test_spans_jsonl_parses_line_by_line(self, tmp_path):
        registry = populated_registry()
        path = write_spans_jsonl(registry, tmp_path / "metrics.jsonl")
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[0]["type"] == "meta"
        assert records[0]["schema"] == METRICS_SCHEMA_VERSION
        kinds = {record["type"] for record in records}
        assert kinds == {"meta", "counter", "gauge", "histogram", "span"}
        spans = [record for record in records if record["type"] == "span"]
        assert {record["origin"] for record in spans} == {"main", "shard-0"}

    def test_chrome_trace_round_trip(self, tmp_path):
        registry = populated_registry()
        path = write_chrome_trace(registry, tmp_path / "trace.json")
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        lanes = {
            event["args"]["name"]: event["pid"]
            for event in events
            if event["ph"] == "M"
        }
        assert set(lanes) == {"main", "shard-0"}
        complete = [event for event in events if event["ph"] == "X"]
        assert {event["name"] for event in complete} == {
            "engine.map",
            "engine.chunk",
        }
        for event in complete:
            assert event["dur"] >= 0.0
            assert event["pid"] in lanes.values()

    def test_format_summary_sections_and_empty_placeholder(self):
        text = format_summary(populated_registry())
        for section in ("counters:", "gauges:", "histograms", "spans:"):
            assert section in text
        assert format_summary(MetricsRegistry()) == "(no metrics recorded)"


# ---------------------------------------------------------------------------
# The contract: telemetry never moves a fingerprint
# ---------------------------------------------------------------------------
BASE_CONFIG = EngineConfig(
    scenario="thread-churn",
    num_threads=16,
    num_objects=24,
    density=0.25,
    num_events=600,
    seed=8_100,
    num_shards=3,
    chunk_size=150,
    mechanisms=("naive", "popularity"),
    include_offline=True,
    timestamps=True,
)

BACKENDS = ("python",) + (("numpy",) if numpy_available() else ())


class TestFingerprintIdentity:
    @pytest.mark.parametrize("pipeline", ["per-event", "batched"])
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_metrics_on_off_identical(self, pipeline, backend, jobs):
        config = dataclasses.replace(BASE_CONFIG, pipeline=pipeline, backend=backend)
        baseline = run_engine(config, jobs=jobs)
        registry = enable(MetricsRegistry(origin="engine"))
        try:
            instrumented = run_engine(config, jobs=jobs)
        finally:
            disable()
        assert instrumented.fingerprint() == baseline.fingerprint()
        assert instrumented.partial == baseline.partial
        # The run must actually have been observed, not silently skipped.
        assert registry.counter_value("engine.chunks") > 0

    def test_telemetry_is_jobs_independent(self):
        # Counters describe the logical run, not the physical schedule:
        # serial and parallel executions observe identical counts.
        def counters_for(jobs):
            registry = enable(MetricsRegistry(origin="engine"))
            try:
                run_engine(BASE_CONFIG, jobs=jobs)
            finally:
                disable()
            return registry.counters()

        assert counters_for(1) == counters_for(2)

    def test_per_shard_event_counters_cover_the_stream(self):
        registry = enable(MetricsRegistry(origin="engine"))
        try:
            result = run_engine(BASE_CONFIG, jobs=1)
        finally:
            disable()
        shard_events = sum(
            registry.counter_value(f"sharder.shard[{shard}].events")
            for shard in range(BASE_CONFIG.num_shards)
        )
        assert shard_events >= result.inserts + result.expires
        for shard in range(BASE_CONFIG.num_shards):
            assert registry.gauge_value(f"engine.shard[{shard}].inserts") > 0


# ---------------------------------------------------------------------------
# CLI surface: --metrics/--trace/--metrics-log end to end
# ---------------------------------------------------------------------------
class TestCliExports:
    def test_engine_run_writes_all_exports(self, tmp_path):
        metrics = tmp_path / "metrics.json"
        trace = tmp_path / "trace.json"
        log = tmp_path / "metrics.jsonl"
        assert (
            main(
                [
                    "engine",
                    "run",
                    "--scenario",
                    "thread-churn",
                    "--events",
                    "400",
                    "--shards",
                    "2",
                    "--chunk-size",
                    "100",
                    "--timestamps",
                    "--metrics",
                    str(metrics),
                    "--trace",
                    str(trace),
                    "--metrics-log",
                    str(log),
                ]
            )
            == 0
        )
        document = json.loads(metrics.read_text())
        assert "kernel_cache_hit_rate" in document["derived"]
        assert document["counters"]["engine.chunks"] > 0
        assert any(
            name.startswith("sharder.shard[") for name in document["counters"]
        )
        assert json.loads(trace.read_text())["traceEvents"]
        assert log.read_text().splitlines()

    def test_sweep_ratio_metrics_export(self, tmp_path):
        metrics = tmp_path / "sweep_metrics.json"
        assert (
            main(
                [
                    "sweep",
                    "ratio",
                    "--scenario",
                    "thread-churn",
                    "--events",
                    "120",
                    "--trials",
                    "1",
                    "--metrics",
                    str(metrics),
                ]
            )
            == 0
        )
        document = json.loads(metrics.read_text())
        assert "sweep.trials" in document["spans"]
