"""Unit tests for differential (Singhal-Kshemkalyani style) timestamp encoding."""

from __future__ import annotations

import pytest

from repro.computation import random_trace
from repro.core import ClockComponents, Timestamp, timestamp_with_thread_clock
from repro.core.encoding import (
    DeltaDecoder,
    DeltaEncoder,
    apply_delta,
    chain_compression_ratio,
    encode_delta,
)
from repro.exceptions import ClockError
from repro.offline import timestamp_offline


@pytest.fixture
def components() -> ClockComponents:
    return ClockComponents(["T1", "T2"], ["O1", "O2"])


class TestDelta:
    def test_encode_only_changed_entries(self, components):
        before = Timestamp(components, [1, 2, 3, 4])
        after = Timestamp(components, [1, 5, 3, 6])
        assert encode_delta(before, after) == {"T2": 5, "O2": 6}

    def test_encode_no_change(self, components):
        stamp = Timestamp(components, [1, 1, 1, 1])
        assert encode_delta(stamp, stamp) == {}

    def test_apply_delta_round_trip(self, components):
        before = Timestamp(components, [1, 2, 3, 4])
        after = Timestamp(components, [2, 2, 7, 4])
        assert apply_delta(before, encode_delta(before, after)) == after

    def test_encode_rejects_decreasing_streams(self, components):
        before = Timestamp(components, [2, 0, 0, 0])
        after = Timestamp(components, [1, 5, 0, 0])
        with pytest.raises(ClockError):
            encode_delta(before, after)

    def test_encode_rejects_mismatched_components(self, components):
        other = ClockComponents(["T1"], ["O1"])
        with pytest.raises(ClockError):
            encode_delta(Timestamp.zero(components), Timestamp.zero(other))

    def test_apply_delta_rejects_unknown_or_backwards(self, components):
        base = Timestamp(components, [1, 1, 1, 1])
        with pytest.raises(ClockError):
            apply_delta(base, {"mystery": 3})
        with pytest.raises(ClockError):
            apply_delta(base, {"T1": 0})


class TestEncoderDecoder:
    def test_first_record_is_full_then_deltas(self, components):
        encoder = DeltaEncoder(components)
        first = encoder.encode(Timestamp(components, [1, 0, 0, 0]))
        assert first == {"T1": 1, "T2": 0, "O1": 0, "O2": 0}
        second = encoder.encode(Timestamp(components, [2, 0, 1, 0]))
        assert second == {"T1": 2, "O1": 1}
        assert encoder.records == 2
        assert encoder.full_integers == 8
        assert encoder.transmitted_integers == 4 + 2 * 2
        assert encoder.compression_ratio() == pytest.approx(8 / 8)

    def test_decoder_reconstructs_stream(self, components):
        stamps = [
            Timestamp(components, [1, 0, 0, 0]),
            Timestamp(components, [2, 0, 1, 0]),
            Timestamp(components, [2, 3, 1, 1]),
        ]
        encoder = DeltaEncoder(components)
        decoder = DeltaDecoder(components)
        for stamp in stamps:
            assert decoder.decode(encoder.encode(stamp)) == stamp

    def test_encoder_rejects_foreign_timestamps(self, components):
        encoder = DeltaEncoder(components)
        with pytest.raises(ClockError):
            encoder.encode(Timestamp.zero(ClockComponents(["X"], [])))

    def test_empty_encoder_ratio_is_one(self, components):
        assert DeltaEncoder(components).compression_ratio() == 1.0


class TestChainCompression:
    def test_ratios_are_at_most_one_and_savings_compound(self):
        trace = random_trace(6, 12, 200, locality=0.6, seed=31)
        mixed = timestamp_offline(trace)
        threads = timestamp_with_thread_clock(trace)
        mixed_ratios = chain_compression_ratio(mixed)
        thread_ratios = chain_compression_ratio(threads)
        assert set(mixed_ratios) == set(trace.threads)
        for thread in trace.threads:
            assert 0 < mixed_ratios[thread] <= 1.0 + 1e-9
            assert 0 < thread_ratios[thread] <= 1.0 + 1e-9
        # Savings compound: the integers actually sent with the mixed clock
        # plus delta encoding are bounded by the mixed clock's own full cost,
        # which in turn is bounded by the thread clock's full cost - so the
        # combination is never worse than either optimisation alone.
        mixed_sent = sum(
            ratio * mixed.clock_size * len(trace.thread_events(thread))
            for thread, ratio in mixed_ratios.items()
        )
        mixed_full = mixed.clock_size * trace.num_events
        thread_full = threads.clock_size * trace.num_events
        assert mixed_sent <= mixed_full + 1e-6
        assert mixed_full <= thread_full
