"""Unit tests for the simulated concurrent system and the real-thread tracer."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import RuntimeSystemError
from repro.runtime import (
    ConcurrentSystem,
    TracingSession,
    acquire,
    counter_workload,
    increment,
    read,
    release,
    write,
)


class TestSteps:
    def test_step_constructors(self):
        r = read("x")
        assert not r.is_write and r.function is None
        w = write("x", lambda value: 5)
        assert w.is_write and w.function(None) == 5
        inc = increment("x", 3)
        assert inc.function(4) == 7
        assert inc.function(None) == 3
        assert acquire("lock").is_sync and release("lock").is_sync


class TestConcurrentSystem:
    def test_counter_workload_final_value(self):
        system = counter_workload(num_threads=3, increments=10)
        result = system.run(seed=1)
        assert result.final_values["counter"] == 30
        assert result.sync_objects == {"counter-lock"}
        assert result.num_events == 3 * 10 * 3  # acquire, increment, release

    def test_schedule_respects_program_order(self):
        system = ConcurrentSystem()
        system.add_thread("A", [increment("x"), increment("y"), increment("x")])
        system.add_thread("B", [increment("y")])
        result = system.run(seed=5)
        a_events = result.computation.thread_events("A")
        assert [e.obj for e in a_events] == ["x", "y", "x"]

    def test_every_step_becomes_one_event(self):
        system = ConcurrentSystem()
        system.add_thread("A", [increment("x")] * 4)
        system.add_thread("B", [read("x")] * 3)
        result = system.run(seed=2)
        assert result.num_events == 7
        assert len(result.schedule) == 7
        assert set(result.schedule) == {"A", "B"}

    def test_round_robin_policy_is_deterministic(self):
        def build():
            system = ConcurrentSystem()
            system.add_thread("A", [increment("x")] * 3)
            system.add_thread("B", [increment("x")] * 3)
            return system

        first = build().run(policy="round-robin")
        second = build().run(policy="round-robin")
        assert first.schedule == second.schedule
        assert first.final_values == second.final_values

    def test_random_policy_is_deterministic_given_seed(self):
        system = counter_workload(num_threads=2, increments=5)
        a = system.run(seed=11)
        b = system.run(seed=11)
        assert a.schedule == b.schedule
        assert a.computation == b.computation

    def test_read_steps_do_not_change_values(self):
        system = ConcurrentSystem()
        system.add_object("x", 10)
        system.add_thread("A", [read("x"), increment("x"), read("x")])
        result = system.run(seed=1)
        assert result.final_values["x"] == 11

    def test_errors(self):
        system = ConcurrentSystem()
        with pytest.raises(RuntimeSystemError):
            system.run()
        system.add_thread("A", [increment("x")])
        with pytest.raises(RuntimeSystemError):
            system.add_thread("A", [increment("x")])
        with pytest.raises(RuntimeSystemError):
            system.add_object("A", 0)
        system.add_object("obj", 0)
        with pytest.raises(RuntimeSystemError):
            system.add_thread("obj", [])
        with pytest.raises(RuntimeSystemError):
            system.run(policy="fifo")

    def test_object_names_include_step_targets(self):
        system = ConcurrentSystem()
        system.add_object("declared", 1)
        system.add_thread("A", [increment("implicit")])
        assert set(system.object_names) == {"declared", "implicit"}
        assert system.thread_names == ("A",)


class TestTracingSession:
    def test_single_thread_tracing(self):
        session = TracingSession()
        cell = session.traced_object("cell", 0)
        cell.write(1)
        assert cell.read() == 1
        cell.update(lambda value: value + 5)
        trace = session.finish()
        assert trace.num_events == 3
        assert [e.is_write for e in trace] == [True, False, True]

    def test_traced_object_is_reused_by_name(self):
        session = TracingSession()
        assert session.traced_object("x") is session.traced_object("x")

    def test_recording_after_finish_rejected(self):
        session = TracingSession()
        cell = session.traced_object("cell", 0)
        session.finish()
        with pytest.raises(RuntimeSystemError):
            cell.write(1)

    def test_multithreaded_counter(self):
        session = TracingSession()
        counter = session.traced_object("counter", 0)

        def worker():
            for _ in range(50):
                counter.update(lambda value: value + 1)

        session.run_threads({f"worker-{i}": worker for i in range(4)})
        trace = session.finish()
        assert counter._value == 200  # updates are atomic, so the count is exact
        assert trace.num_events == 200
        assert set(trace.threads) == {f"worker-{i}" for i in range(4)}
        assert trace.objects == ("counter",)
        assert session.events_recorded == 200
