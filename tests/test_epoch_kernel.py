"""The epoch-rotating clock kernel and the lifecycle-aware EpochClock.

Covers the three new kernel capabilities - append-only component growth
(``extend_components``), epoch rotation with slot compaction
(``rotate_epoch``), and the re-timestamping invariant check - plus the
EpochClock ledger semantics (FIFO expiry per pair, stable tokens across
rotations, causality queries on live events).
"""

from __future__ import annotations

import pytest

from repro.core import ClockComponents, ClockKernel, EpochClock, Timestamp, ordering
from repro.core.timestamping import verify_retimestamping
from repro.exceptions import ClockError, ComponentError, RetimestampingError


class TestKernelExtension:
    def test_extension_appends_zero_slots(self):
        kernel = ClockKernel(ClockComponents(thread_components=["T1"]))
        first = kernel.observe("T1", "O1")
        assert first.values == (1,)
        kernel.extend_components(object_components=["O2"])
        assert kernel.components.size == 2
        # The pre-extension clock is re-based: old value kept, new slot zero.
        assert kernel.thread_stamp("T1").values == (1, 0)
        second = kernel.observe("T1", "O2")
        assert second.values == (2, 1)

    def test_extension_matches_from_scratch_when_new_component_was_unused(self):
        """Extending before a component's first event == having it all along."""
        events = [("T1", "O1"), ("T1", "O2"), ("T2", "O2")]
        later = [("T2", "O3"), ("T1", "O3")]
        grown = ClockKernel(ClockComponents(thread_components=["T1", "T2"]))
        for thread, obj in events:
            grown.observe(thread, obj)
        grown.extend_components(object_components=["O3"])
        fresh = ClockKernel(
            ClockComponents(thread_components=["T1", "T2"], object_components=["O3"])
        )
        for thread, obj in events:
            fresh.observe(thread, obj)
        grown_tail = [grown.observe(t, o) for t, o in later]
        fresh_tail = [fresh.observe(t, o) for t, o in later]
        for grown_stamp, fresh_stamp in zip(grown_tail, fresh_tail):
            assert grown_stamp.as_dict() == fresh_stamp.as_dict()

    def test_extension_is_noop_for_known_components(self):
        kernel = ClockKernel(ClockComponents(thread_components=["T1"]))
        components = kernel.components
        assert kernel.extend_components(thread_components=["T1"]) is components

    def test_thread_slots_precede_object_slots_after_extension(self):
        kernel = ClockKernel(ClockComponents(object_components=["O1"]))
        kernel.observe("T1", "O1")
        kernel.extend_components(thread_components=["T2"])
        # Convention: threads first; O1's old value must follow T2's zero.
        assert kernel.components.ordered == ("T2", "O1")
        assert kernel.object_stamp("O1").values == (0, 1)


class TestKernelRotation:
    def test_rotation_counts_retirements_and_resets_state(self):
        kernel = ClockKernel(
            ClockComponents(thread_components=["T1", "T2"], object_components=["O1"])
        )
        kernel.observe("T1", "O1")
        retired = kernel.rotate_epoch(ClockComponents(thread_components=["T1"]))
        assert retired == 2  # T2 and O1
        assert kernel.epoch == 1
        assert kernel.retired_total == 2
        assert kernel.components.size == 1
        # All clock state is discarded; the caller replays the live window.
        assert kernel.thread_stamp("T1").values == (0,)

    def test_rotation_to_superset_retires_nothing(self):
        kernel = ClockKernel(ClockComponents(thread_components=["T1"]))
        retired = kernel.rotate_epoch(
            ClockComponents(thread_components=["T1", "T2"])
        )
        assert retired == 0
        assert kernel.retired_total == 0
        assert kernel.epoch == 1


class TestVerifyRetimestamping:
    def test_accepts_identical_verdicts(self):
        components = ClockComponents(thread_components=["T1", "T2"])
        a1 = Timestamp(components, [1, 0])
        b1 = Timestamp(components, [0, 1])
        verify_retimestamping([a1, b1], [a1, b1], components)

    def test_rejects_length_mismatch(self):
        components = ClockComponents(thread_components=["T1"])
        stamp = Timestamp(components, [1])
        with pytest.raises(RetimestampingError):
            verify_retimestamping([stamp, stamp], [stamp], components)

    def test_rejects_foreign_component_set(self):
        components = ClockComponents(thread_components=["T1"])
        other = ClockComponents(thread_components=["T1"])
        stamp = Timestamp(other, [1])
        with pytest.raises(RetimestampingError):
            verify_retimestamping([stamp], [stamp], components)

    def test_rejects_verdict_flip(self):
        before_components = ClockComponents(thread_components=["T1", "T2"])
        concurrent_a = Timestamp(before_components, [1, 0])
        concurrent_b = Timestamp(before_components, [0, 1])
        after_components = ClockComponents(thread_components=["T1"])
        ordered_a = Timestamp(after_components, [1])
        ordered_b = Timestamp(after_components, [2])
        assert ordering(concurrent_a, concurrent_b) == "concurrent"
        with pytest.raises(RetimestampingError):
            verify_retimestamping(
                [concurrent_a, concurrent_b],
                [ordered_a, ordered_b],
                after_components,
            )


class TestEpochClock:
    def test_observe_requires_coverage(self):
        clock = EpochClock()
        with pytest.raises(ComponentError):
            clock.observe("T1", "O1")

    def test_tokens_are_stable_across_rotation(self):
        clock = EpochClock(
            ClockComponents(thread_components=["T1", "T2"]), check_invariant=True
        )
        first = clock.observe("T1", "O1")
        second = clock.observe("T2", "O2")
        third = clock.observe("T1", "O2")
        assert clock.relation(first, third) == "before"  # same thread
        assert clock.relation(second, third) == "before"  # same object
        assert clock.relation(first, second) == "concurrent"
        clock.expire("T1", "O1")
        retired = clock.rotate(
            ClockComponents(thread_components=["T1", "T2"], object_components=["O2"])
        )
        assert retired == 0
        assert clock.live_tokens() == (second, third)
        assert clock.relation(second, third) == "before"
        with pytest.raises(ClockError):
            clock.timestamp(first)

    def test_expire_is_fifo_per_pair(self):
        clock = EpochClock(ClockComponents(thread_components=["T1"]))
        first = clock.observe("T1", "O1")
        second = clock.observe("T1", "O1")
        assert clock.expire("T1", "O1") == first
        assert clock.expire("T1", "O1") == second
        with pytest.raises(ClockError):
            clock.expire("T1", "O1")

    def test_rotation_compacts_retired_slots(self):
        clock = EpochClock(
            ClockComponents(thread_components=["T1", "T2"]), check_invariant=True
        )
        token = clock.observe("T1", "O1")
        clock.observe("T2", "O2")
        clock.expire("T2", "O2")
        retired = clock.rotate(ClockComponents(thread_components=["T1"]))
        assert retired == 1
        assert clock.size == 1
        assert clock.retired_total == 1
        assert clock.epoch == 1
        # The surviving event's stamp lives in the compacted basis.
        assert clock.timestamp(token).components.size == 1

    def test_rotation_without_coverage_raises(self):
        clock = EpochClock(ClockComponents(thread_components=["T1"]))
        clock.observe("T1", "O1")
        with pytest.raises(ComponentError):
            clock.rotate(ClockComponents(thread_components=["T9"]))

    def test_extension_preserves_live_verdicts(self):
        clock = EpochClock(ClockComponents(thread_components=["T1", "T2"]))
        a = clock.observe("T1", "O1")
        b = clock.observe("T2", "O1")
        before = clock.relation(a, b)
        clock.extend(object_components=("O1",))
        assert clock.size == 3
        assert clock.relation(a, b) == before
        c = clock.observe("T3", "O1")  # covered by the new object component
        assert clock.relation(b, c) == "before"
