"""Tests for the sharded execution engine (repro.engine).

The engine's whole value is one guarantee: a run's merged metrics are a
pure function of its configuration - independent of worker count,
backend, and interrupt/resume history.  Most tests here attack that
guarantee from a different angle (executor parallelism, checkpoint
cycles, per-shard reference reconstruction); the rest cover the
subsystem's parts (sharder, mergeable partials, seed derivation) in
isolation.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.metrics import MergeableStats, RunningStats, summarize
from repro.cli import main
from repro.computation.streams import StreamEvent, thread_churn_stream
from repro.engine import (
    EngineConfig,
    EngineInterrupted,
    HASH,
    OFFLINE_LABEL,
    PartialResult,
    ROUND_ROBIN,
    SeriesFragment,
    ShardExecutor,
    StreamSharder,
    execute_tasks,
    merge_partials,
    run_engine,
    run_shard,
    stable_vertex_hash,
)
from repro.engine.checkpoint import EngineCheckpointManager
from repro.exceptions import EngineError
from repro.seeds import derive_seed, spawn_seeds, splitmix64


# ---------------------------------------------------------------------------
# Seed derivation
# ---------------------------------------------------------------------------
class TestSeeds:
    def test_derivation_is_deterministic_and_label_sensitive(self):
        a = derive_seed(2019, "thread-churn", "shard", 0, "random")
        b = derive_seed(2019, "thread-churn", "shard", 0, "random")
        c = derive_seed(2019, "thread-churn", "shard", 1, "random")
        d = derive_seed(2019, "thread-churn", "shard", 0, "naive")
        assert a == b
        assert len({a, c, d}) == 3

    def test_type_distinguishes_path_parts(self):
        assert derive_seed(7, 1) != derive_seed(7, "1")
        assert derive_seed(7, 1) != derive_seed(7, 1.0)

    def test_known_value_pins_the_algorithm(self):
        # Changing the derivation algorithm silently re-seeds every
        # experiment in the repo; this pin makes that an explicit choice.
        assert splitmix64(0) == 16294208416658607535
        assert derive_seed(2019, "x") == 4812136287394512218

    def test_spawn_seeds_are_distinct(self):
        seeds = spawn_seeds(11, 32, "trial")
        assert len(set(seeds)) == 32


# ---------------------------------------------------------------------------
# Sharder
# ---------------------------------------------------------------------------
def _churn(events=300, threads=12, objects=16, seed=5):
    return thread_churn_stream(threads, objects, 0.3, events, seed=seed)


class TestStreamSharder:
    def test_hash_assignment_is_stable_across_instances(self):
        a = StreamSharder(4, HASH)
        b = StreamSharder(4, HASH)
        for i in range(50):
            assert a.shard_of(f"T{i}") == b.shard_of(f"T{i}")

    def test_stable_hash_ignores_process_randomisation(self):
        # The stable hash is pure arithmetic over the repr; a fixed pin
        # proves no hash() leakage (hash() varies per process for str).
        assert stable_vertex_hash("T0") == stable_vertex_hash("T0")
        assert stable_vertex_hash("T0") != stable_vertex_hash("T1")
        assert stable_vertex_hash(1) != stable_vertex_hash("1")

    def test_round_robin_assigns_by_first_appearance(self):
        sharder = StreamSharder(3, ROUND_ROBIN)
        events = [StreamEvent("TC", "O0"), StreamEvent("TA", "O0"),
                  StreamEvent("TC", "O1"), StreamEvent("TB", "O0")]
        tagged = list(sharder.split(events))
        assert [shard for shard, _ in tagged] == [0, 1, 0, 2]

    def test_expires_follow_their_thread(self):
        sharder = StreamSharder(5, HASH)
        for shard, event in sharder.split(_churn()):
            assert shard == StreamSharder(5, HASH).shard_of(event.thread)

    def test_select_is_the_filter_of_split(self):
        events = list(_churn())
        reference = {
            shard_id: [e for s, e in StreamSharder(3, HASH).split(events)
                       if s == shard_id]
            for shard_id in range(3)
        }
        for shard_id in range(3):
            selected = list(StreamSharder(3, HASH).select(events, shard_id))
            assert selected == reference[shard_id]

    def test_shards_partition_the_stream(self):
        events = list(_churn())
        pieces = [list(StreamSharder(4, ROUND_ROBIN).select(events, s))
                  for s in range(4)]
        assert sum(len(p) for p in pieces) == len(events)

    def test_sub_streams_stay_multiset_consistent(self):
        # Per shard, no edge is ever expired more often than inserted so
        # far - the DynamicMatching contract sharding must preserve.
        events = list(_churn(events=500))
        for shard_id in range(4):
            live = {}
            for event in StreamSharder(4, HASH).select(events, shard_id):
                if event.is_insert:
                    live[event.pair] = live.get(event.pair, 0) + 1
                else:
                    assert live.get(event.pair, 0) > 0
                    live[event.pair] -= 1

    def test_invalid_configuration_raises(self):
        with pytest.raises(EngineError):
            StreamSharder(0)
        with pytest.raises(EngineError):
            StreamSharder(2, "modulo")
        with pytest.raises(EngineError):
            list(StreamSharder(2).select([], 2))


# ---------------------------------------------------------------------------
# Mergeable statistics and partial results
# ---------------------------------------------------------------------------
class TestMergeableStats:
    def test_chunked_merge_matches_single_pass_moments(self):
        values = [float(v % 7) + 0.25 for v in range(200)]
        single = RunningStats()
        for value in values:
            single.update(value)
        left, right = RunningStats(), RunningStats()
        for value in values[:80]:
            left.update(value)
        for value in values[80:]:
            right.update(value)
        merged = left.freeze().merge(right.freeze())
        reference = summarize(values)
        assert merged.count == 200
        assert merged.mean == pytest.approx(reference.mean)
        assert merged.std == pytest.approx(reference.std)
        assert merged.minimum == reference.minimum
        assert merged.maximum == reference.maximum
        assert merged.to_summary().mean == pytest.approx(reference.mean)

    def test_empty_is_the_identity(self):
        stats = RunningStats()
        stats.update(3.0)
        frozen = stats.freeze()
        assert MergeableStats().merge(frozen) == frozen
        assert frozen.merge(MergeableStats()) == frozen

    def test_empty_to_summary_raises(self):
        with pytest.raises(ValueError):
            MergeableStats().to_summary()


def _fragment(start, sizes, stride=1):
    return SeriesFragment(
        start=start,
        count=len(sizes),
        stride=stride,
        final_size=sizes[-1],
        samples=tuple(sizes),
    )


class TestPartialResults:
    def test_fragment_merge_is_commutative_concatenation(self):
        a, b = _fragment(0, [1, 2]), _fragment(2, [2, 3, 3])
        assert a.merge(b) == b.merge(a)
        assert a.merge(b).samples == (1, 2, 2, 3, 3)
        assert a.merge(b).final_size == 3

    def test_fragment_merge_rejects_gaps_and_stride_mismatch(self):
        with pytest.raises(EngineError):
            _fragment(0, [1]).merge(_fragment(2, [2]))
        with pytest.raises(EngineError):
            _fragment(0, [1]).merge(_fragment(1, [2], stride=2))

    def test_partial_merge_unions_shards_and_chains_chunks(self):
        chunk1 = PartialResult(
            inserts=2, expires=0, series={(0, "naive"): _fragment(0, [1, 2])}
        )
        chunk2 = PartialResult(
            inserts=1, expires=1, series={(0, "naive"): _fragment(2, [2])}
        )
        other_shard = PartialResult(
            inserts=3, expires=0, series={(1, "naive"): _fragment(0, [1, 1, 2])}
        )
        merged = merge_partials([chunk1, chunk2, other_shard])
        assert merged.inserts == 6 and merged.expires == 1
        assert merged.fragment(0, "naive").samples == (1, 2, 2)
        assert merged.fragment(1, "naive").count == 3
        # In-order bracketings agree (associativity over adjacent joins).
        left = chunk1.merge(chunk2).merge(other_shard)
        right = chunk1.merge(chunk2.merge(other_shard))
        assert left == right

    def test_missing_fragment_raises(self):
        with pytest.raises(EngineError):
            PartialResult().fragment(0, "naive")


# ---------------------------------------------------------------------------
# Executor
# ---------------------------------------------------------------------------
class TestExecutor:
    def test_serial_preserves_task_order(self):
        assert execute_tasks(lambda x: x * x, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_negative_jobs_rejected(self):
        with pytest.raises(EngineError):
            ShardExecutor(-1)
        with pytest.raises(EngineError):
            execute_tasks(lambda x: x, [1], jobs=-2)

    def test_parallel_preserves_task_order(self):
        assert execute_tasks(splitmix64, list(range(6)), jobs=2) == [
            splitmix64(i) for i in range(6)
        ]


# ---------------------------------------------------------------------------
# The engine itself
# ---------------------------------------------------------------------------
BASE_CONFIG = EngineConfig(
    scenario="thread-churn",
    num_threads=16,
    num_objects=24,
    density=0.25,
    num_events=900,
    seed=424,
    num_shards=3,
    chunk_size=200,
    trajectory_stride=1,
)


class TestEngineDeterminism:
    def test_parallel_jobs_match_serial_bit_for_bit(self):
        serial = run_engine(BASE_CONFIG, jobs=1)
        parallel = run_engine(BASE_CONFIG, jobs=3)
        assert serial.fingerprint() == parallel.fingerprint()
        assert serial.partial == parallel.partial

    def test_chunk_size_does_not_change_series(self):
        # Trajectories, counts and finals are exactly chunking-invariant;
        # pooled float moments only up to rounding (documented contract).
        small = run_engine(dataclasses.replace(BASE_CONFIG, chunk_size=7))
        large = run_engine(dataclasses.replace(BASE_CONFIG, chunk_size=900))
        assert small.inserts == large.inserts
        assert small.expires == large.expires
        for key, fragment in large.partial.series.items():
            other = small.partial.series[key]
            assert other.samples == fragment.samples
            assert other.final_size == fragment.final_size
            assert other.ratios.count == fragment.ratios.count
            assert other.ratios.mean == pytest.approx(fragment.ratios.mean)

    def test_round_robin_strategy_is_deterministic_too(self):
        config = dataclasses.replace(BASE_CONFIG, strategy=ROUND_ROBIN)
        assert (
            run_engine(config, jobs=1).fingerprint()
            == run_engine(config, jobs=2).fingerprint()
        )

    def test_windowed_insert_only_scenario_runs(self):
        config = dataclasses.replace(
            BASE_CONFIG, scenario="hot-object-drift", window=60
        )
        result = run_engine(config)
        assert result.inserts == config.num_events
        # The window expires one insert per insert once full, per shard.
        assert result.expires > 0
        assert run_engine(config, jobs=2).fingerprint() == result.fingerprint()

    def test_offline_series_is_a_lower_bound_per_shard(self):
        result = run_engine(BASE_CONFIG)
        for shard in result.partial.shard_ids():
            offline = result.partial.fragment(shard, OFFLINE_LABEL).samples
            for label in BASE_CONFIG.mechanisms:
                online = result.partial.fragment(shard, label).samples
                assert all(o >= f for o, f in zip(online, offline))

    def test_empty_stream_produces_empty_result(self):
        config = dataclasses.replace(BASE_CONFIG, num_events=0)
        result = run_engine(config)
        assert result.inserts == 0 and result.expires == 0
        assert result.partial.series == {}
        assert result.format()  # renders without data


class TestEngineValidation:
    def test_unknown_scenario(self):
        with pytest.raises(EngineError):
            run_engine(dataclasses.replace(BASE_CONFIG, scenario="uniform"))

    def test_window_on_self_expiring_scenario(self):
        with pytest.raises(EngineError):
            run_engine(dataclasses.replace(BASE_CONFIG, window=10))

    def test_unknown_mechanism_label(self):
        with pytest.raises(EngineError):
            run_engine(
                dataclasses.replace(BASE_CONFIG, mechanisms=("naive", "oracle"))
            )

    def test_offline_label_reserved(self):
        with pytest.raises(EngineError):
            run_engine(
                dataclasses.replace(BASE_CONFIG, mechanisms=(OFFLINE_LABEL,))
            )

    def test_shard_id_bounds(self):
        with pytest.raises(EngineError):
            run_shard(BASE_CONFIG, BASE_CONFIG.num_shards)


class TestCheckpointResume:
    def _checkpointed(self, tmp_path, **overrides):
        return dataclasses.replace(
            BASE_CONFIG, checkpoint_dir=str(tmp_path / "ckpt"), **overrides
        )

    def test_interrupt_then_resume_matches_uninterrupted(self, tmp_path):
        reference = run_engine(BASE_CONFIG)
        config = self._checkpointed(tmp_path)
        with pytest.raises(EngineInterrupted):
            run_engine(dataclasses.replace(config, max_chunks_per_shard=1))
        resumed = run_engine(config)
        assert resumed.fingerprint() == reference.fingerprint()
        assert resumed.partial == reference.partial

    def test_resume_on_parallel_backend_matches(self, tmp_path):
        reference = run_engine(BASE_CONFIG)
        config = self._checkpointed(tmp_path)
        with pytest.raises(EngineInterrupted):
            run_engine(dataclasses.replace(config, max_chunks_per_shard=1))
        assert run_engine(config, jobs=2).fingerprint() == reference.fingerprint()

    def test_completed_run_reloads_from_checkpoints(self, tmp_path):
        config = self._checkpointed(tmp_path)
        first = run_engine(config)
        again = run_engine(config)
        assert again.fingerprint() == first.fingerprint()

    def test_mismatched_configuration_refuses_to_resume(self, tmp_path):
        config = self._checkpointed(tmp_path)
        run_engine(config)
        with pytest.raises(EngineError):
            run_engine(dataclasses.replace(config, seed=config.seed + 1))

    def test_manifest_records_signature(self, tmp_path):
        config = self._checkpointed(tmp_path)
        run_engine(config)
        manager = EngineCheckpointManager(
            config.checkpoint_dir, config.signature()
        )
        assert set(manager.shard_files()) == set(range(config.num_shards))
        manager.clear()
        assert manager.shard_files() == {}


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------
class TestEngineCli:
    ARGS = ["engine", "run", "--scenario", "thread-churn", "--events", "400",
            "--nodes", "12", "--shards", "3", "--chunk-size", "100"]

    def test_engine_run_prints_deterministic_report(self, capsys):
        assert main(self.ARGS + ["--jobs", "1"]) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS + ["--jobs", "2"]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "fingerprint:" in first
        assert "thread-churn" in first

    def test_engine_run_checkpoints_and_resumes(self, tmp_path, capsys):
        args = self.ARGS + ["--checkpoint-dir", str(tmp_path / "ck")]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_engine_rejects_window_on_self_expiring_scenario(self, capsys):
        assert main(["engine", "run", "--scenario", "thread-churn",
                     "--window", "5"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_sweep_ratio_jobs_flag(self, capsys):
        base = ["sweep", "ratio", "--scenario", "phase-change", "--nodes", "8",
                "--density", "0.2", "--trials", "1", "--window", "10",
                "--burn-in", "4", "--tail", "4", "--events", "40"]
        assert main(base + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(base + ["--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial
