"""Resident-array cache coherence: the edges where stale vectors hide.

The numpy backend keeps touched clock vectors resident across batches
(:class:`repro.core.kernel._ArrayCache`), which is exactly the kind of
optimisation that stays bit-identical in the steady state and silently
diverges at lifecycle edges.  Each test here drives one such edge with
hypothesis-generated streams and asserts the cached path agrees with the
uncached python loop value-for-value:

* mid-stream ``extend_components`` while the cache is warm (the deferred
  pad-on-read ``sync`` must reconcile resident vectors with the grown
  layout);
* ``rotate_epoch`` mid-stream (wholesale invalidation: nothing of the
  old epoch's arrays may leak into the new one);
* checkpoint/resume (the cache must not be pickled - it holds numpy
  arrays a numpy-less host cannot load - and a resumed kernel must
  rebuild it transparently);
* backend switch on resume (a cache built by numpy batches must not go
  stale when the python loop takes over, and vice versa).

These complement ``tests/test_batched_pipeline.py``'s broader backend
bit-identity suite; here every stream is long and wide enough to keep
the array path *on* (warm cache), because the fallback path would make
the assertions vacuous.
"""

from __future__ import annotations

import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.components import ClockComponents
from repro.core.kernel import ClockKernel, numpy_available

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend not installed"
)

SETTINGS = settings(max_examples=25, deadline=None)

#: Wide enough (30 + 20 = 50 slots) to clear MIN_ARRAY_DIM_MINT, so
#: batches of >= MIN_ARRAY_BATCH events take the array path and the
#: cache actually warms up.
THREAD_COMPS = [f"T{i}" for i in range(30)]
OBJECT_COMPS = [f"O{i}" for i in range(20)]


def fresh_components():
    return ClockComponents(THREAD_COMPS, OBJECT_COMPS)


@st.composite
def batched_pairs(draw, batches=4, batch_size=24):
    """A list of insert batches, each long enough for the array path."""
    rng = random.Random(draw(st.integers(min_value=0, max_value=2**31)))
    return [
        [
            (
                f"T{rng.randrange(len(THREAD_COMPS))}",
                f"O{rng.randrange(len(OBJECT_COMPS))}",
            )
            for _ in range(batch_size)
        ]
        for _ in range(draw(st.integers(min_value=2, max_value=batches)))
    ]


def drive(kernel, batches):
    """Timestamp every batch; returns the materialised stamp values."""
    out = []
    for batch in batches:
        out.extend(stamp.values for stamp in kernel.timestamp_batch(batch))
    return out


def assert_same_state(numpy_kernel, python_kernel):
    for thread in THREAD_COMPS:
        assert (
            numpy_kernel.thread_stamp(thread).values
            == python_kernel.thread_stamp(thread).values
        ), thread
    for obj in OBJECT_COMPS:
        assert (
            numpy_kernel.object_stamp(obj).values
            == python_kernel.object_stamp(obj).values
        ), obj


@requires_numpy
class TestCacheBitIdentity:
    @SETTINGS
    @given(batches=batched_pairs(), grow_at=st.integers(0, 3))
    def test_extend_components_with_warm_cache(self, batches, grow_at):
        """Deferred pad-on-read: growth between batches stays bit-identical."""
        cached = ClockKernel(fresh_components(), backend="numpy")
        uncached = ClockKernel(fresh_components(), backend="python")
        cached_values, uncached_values = [], []
        for index, batch in enumerate(batches):
            if index == min(grow_at, len(batches) - 1):
                for kernel in (cached, uncached):
                    kernel.extend_components(
                        thread_components=("T90",), object_components=("O90",)
                    )
            cached_values.extend(s.values for s in cached.timestamp_batch(batch))
            uncached_values.extend(
                s.values for s in uncached.timestamp_batch(batch)
            )
        assert cached_values == uncached_values
        assert_same_state(cached, uncached)
        # The edge under test actually ran on the array path.
        assert cached._cache is not None

    @SETTINGS
    @given(batches=batched_pairs())
    def test_rotate_epoch_drops_cache_and_stays_identical(self, batches):
        """Epoch rotation mid-stream: no old-epoch array survives."""
        cached = ClockKernel(fresh_components(), backend="numpy")
        uncached = ClockKernel(fresh_components(), backend="python")
        drive(cached, batches[:1])
        drive(uncached, batches[:1])
        assert cached._cache is not None
        for kernel in (cached, uncached):
            kernel.rotate_epoch(fresh_components())
        # Invalidation is wholesale: the resident arrays are gone, so the
        # new epoch cannot read stale pre-rotation vectors.
        assert cached._cache is None
        assert drive(cached, batches) == drive(uncached, batches)
        assert_same_state(cached, uncached)

    @SETTINGS
    @given(batches=batched_pairs())
    def test_advance_batch_fold_matches_python(self, batches):
        """The digest path reads resident arrays; folds must agree too."""
        cached = ClockKernel(fresh_components(), backend="numpy")
        uncached = ClockKernel(fresh_components(), backend="python")
        cached_fold = uncached_fold = 0
        for batch in batches:
            cached_fold = cached.advance_batch(batch, cached_fold)
            uncached_fold = uncached.advance_batch(batch, uncached_fold)
        assert cached_fold == uncached_fold
        assert_same_state(cached, uncached)


@requires_numpy
class TestCacheCheckpointing:
    def warm_kernel(self, seed=404):
        kernel = ClockKernel(fresh_components(), backend="numpy")
        rng = random.Random(seed)
        kernel.timestamp_batch(
            [
                (
                    f"T{rng.randrange(len(THREAD_COMPS))}",
                    f"O{rng.randrange(len(OBJECT_COMPS))}",
                )
                for _ in range(64)
            ]
        )
        assert kernel._cache is not None, "array path did not engage"
        return kernel

    def test_cache_not_pickled(self):
        kernel = self.warm_kernel()
        assert "_cache" not in kernel.__getstate__()
        clone = pickle.loads(pickle.dumps(kernel))
        assert clone._cache is None

    @SETTINGS
    @given(batches=batched_pairs())
    def test_resume_rebuilds_cache_bit_identically(self, batches):
        kernel = self.warm_kernel()
        clone = pickle.loads(pickle.dumps(kernel))
        assert drive(clone, batches) == drive(kernel, batches)
        # The resumed kernel re-warmed its own cache from the stamp dicts.
        assert clone._cache is not None

    @SETTINGS
    @given(batches=batched_pairs())
    def test_backend_switch_on_resume(self, batches):
        """numpy -> python and python -> numpy resumes stay identical."""
        reference = self.warm_kernel()
        to_python = pickle.loads(pickle.dumps(reference))
        to_python.set_backend("python")
        to_numpy = pickle.loads(pickle.dumps(reference))
        to_numpy.set_backend("numpy")
        expected = drive(reference, batches)
        assert drive(to_python, batches) == expected
        assert drive(to_numpy, batches) == expected
        assert_same_state(to_numpy, to_python)

    def test_python_batches_evict_from_warm_cache(self):
        """Short (fallback-path) batches must not strand stale vectors."""
        kernel = self.warm_kernel()
        mixed = pickle.loads(pickle.dumps(kernel))
        # A short batch after resume runs the python loop on the numpy
        # backend (below MIN_ARRAY_BATCH, cold cache) and then long
        # batches re-engage arrays; values must match the pure sequence.
        short = [("T0", "O0"), ("T1", "O1")]
        long = [
            (f"T{i % len(THREAD_COMPS)}", f"O{i % len(OBJECT_COMPS)}")
            for i in range(48)
        ]
        expected = drive(kernel, [short, long, short, long])
        assert drive(mixed, [short, long, short, long]) == expected
        assert_same_state(kernel, mixed)
