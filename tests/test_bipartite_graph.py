"""Unit tests for :class:`repro.graph.BipartiteGraph`."""

from __future__ import annotations

import pytest

from repro.exceptions import DuplicateVertexError, GraphError, UnknownVertexError
from repro.graph import BipartiteGraph, paper_example_graph


class TestConstruction:
    def test_empty_graph(self):
        graph = BipartiteGraph()
        assert graph.num_threads == 0
        assert graph.num_objects == 0
        assert graph.num_edges == 0
        assert graph.density() == 0.0
        assert len(graph) == 0

    def test_constructor_with_vertices_and_edges(self):
        graph = BipartiteGraph(
            threads=["T1", "T2"], objects=["O1"], edges=[("T1", "O1")]
        )
        assert graph.threads == {"T1", "T2"}
        assert graph.objects == {"O1"}
        assert graph.num_edges == 1

    def test_add_edge_creates_endpoints(self):
        graph = BipartiteGraph()
        assert graph.add_edge("T1", "O1") is True
        assert graph.has_thread("T1")
        assert graph.has_object("O1")

    def test_add_edge_is_idempotent(self):
        graph = BipartiteGraph()
        assert graph.add_edge("T1", "O1") is True
        assert graph.add_edge("T1", "O1") is False
        assert graph.num_edges == 1

    def test_add_vertex_is_idempotent(self):
        graph = BipartiteGraph()
        graph.add_thread("T1")
        graph.add_thread("T1")
        graph.add_object("O1")
        graph.add_object("O1")
        assert graph.num_threads == 1
        assert graph.num_objects == 1

    def test_vertex_cannot_live_on_both_sides(self):
        graph = BipartiteGraph()
        graph.add_thread("X")
        with pytest.raises(DuplicateVertexError):
            graph.add_object("X")
        graph.add_object("Y")
        with pytest.raises(DuplicateVertexError):
            graph.add_thread("Y")

    def test_remove_edge(self):
        graph = BipartiteGraph(edges=[("T1", "O1"), ("T1", "O2")])
        graph.remove_edge("T1", "O1")
        assert not graph.has_edge("T1", "O1")
        assert graph.has_edge("T1", "O2")
        assert graph.num_edges == 1

    def test_remove_missing_edge_raises(self):
        graph = BipartiteGraph(edges=[("T1", "O1")])
        with pytest.raises(GraphError):
            graph.remove_edge("T1", "O2")


class TestQueries:
    def test_neighbors_and_degree(self):
        graph = BipartiteGraph(edges=[("T1", "O1"), ("T1", "O2"), ("T2", "O1")])
        assert graph.thread_neighbors("T1") == {"O1", "O2"}
        assert graph.object_neighbors("O1") == {"T1", "T2"}
        assert graph.degree("T1") == 2
        assert graph.degree("O2") == 1
        assert graph.neighbors("T2") == {"O1"}
        assert graph.neighbors("O2") == {"T1"}

    def test_unknown_vertex_raises(self):
        graph = BipartiteGraph(edges=[("T1", "O1")])
        with pytest.raises(UnknownVertexError):
            graph.thread_neighbors("T9")
        with pytest.raises(UnknownVertexError):
            graph.object_neighbors("O9")
        with pytest.raises(UnknownVertexError):
            graph.degree("missing")
        with pytest.raises(UnknownVertexError):
            graph.neighbors("missing")

    def test_contains_and_has_vertex(self):
        graph = BipartiteGraph(edges=[("T1", "O1")])
        assert "T1" in graph
        assert "O1" in graph
        assert "T2" not in graph

    def test_edges_iteration(self):
        edges = {("T1", "O1"), ("T2", "O1"), ("T2", "O2")}
        graph = BipartiteGraph(edges=edges)
        assert set(graph.edges()) == edges

    def test_density(self):
        graph = BipartiteGraph(threads=["T1", "T2"], objects=["O1", "O2"])
        assert graph.density() == 0.0
        graph.add_edge("T1", "O1")
        assert graph.density() == pytest.approx(0.25)
        graph.add_edge("T1", "O2")
        graph.add_edge("T2", "O1")
        graph.add_edge("T2", "O2")
        assert graph.density() == pytest.approx(1.0)

    def test_popularity_definition(self):
        # pop(v) = deg(v) / |E|  (Definition 1 of the paper)
        graph = BipartiteGraph(edges=[("T1", "O1"), ("T2", "O1"), ("T3", "O2")])
        assert graph.popularity("O1") == pytest.approx(2 / 3)
        assert graph.popularity("T1") == pytest.approx(1 / 3)

    def test_popularity_on_empty_graph_is_zero(self):
        graph = BipartiteGraph(threads=["T1"], objects=["O1"])
        assert graph.popularity("T1") == 0.0
        with pytest.raises(UnknownVertexError):
            graph.popularity("missing")

    def test_isolated_vertices(self):
        graph = BipartiteGraph(
            threads=["T1", "T2"], objects=["O1", "O2"], edges=[("T1", "O1")]
        )
        assert graph.isolated_vertices() == {"T2", "O2"}


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        graph = BipartiteGraph(edges=[("T1", "O1")])
        clone = graph.copy()
        clone.add_edge("T2", "O2")
        assert graph.num_edges == 1
        assert clone.num_edges == 2
        assert graph != clone

    def test_equality(self):
        a = BipartiteGraph(edges=[("T1", "O1"), ("T2", "O2")])
        b = BipartiteGraph(edges=[("T2", "O2"), ("T1", "O1")])
        assert a == b
        b.add_edge("T1", "O2")
        assert a != b
        assert a != "not a graph"

    def test_subgraph(self):
        graph = BipartiteGraph(
            edges=[("T1", "O1"), ("T1", "O2"), ("T2", "O1"), ("T2", "O2")]
        )
        sub = graph.subgraph(["T1"], ["O1", "O2"])
        assert sub.threads == {"T1"}
        assert set(sub.edges()) == {("T1", "O1"), ("T1", "O2")}

    def test_subgraph_unknown_vertex(self):
        graph = BipartiteGraph(edges=[("T1", "O1")])
        with pytest.raises(UnknownVertexError):
            graph.subgraph(["T1", "T9"], ["O1"])


class TestPaperExample:
    def test_paper_graph_shape(self):
        graph = paper_example_graph()
        assert graph.num_threads == 4
        assert graph.num_objects == 4
        # Every edge touches T2, O2 or O3 (that is why the cover has size 3).
        for thread, obj in graph.edges():
            assert thread == "T2" or obj in ("O2", "O3")
