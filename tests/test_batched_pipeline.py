"""The batched hot-path pipeline: bit-identity, backends, gating, resume.

Three layers of the chunked execution path are pinned down here:

* **mechanisms** - hypothesis property: for every registered mechanism,
  driving a random lifecycle stream (inserts, multiset-consistent
  expires, epoch markers) through ``observe_batch`` chunks of random
  sizes leaves *identical* state - decisions, component order, revealed
  graph, counters - to per-event ``observe``/``expire``/``end_epoch``;
* **kernel** - ``timestamp_batch`` / ``advance_batch`` mint/fold exactly
  what per-event ``observe`` does, for every available backend, across
  random chunkings and mid-stream component extensions; the numpy
  backend is *gated*: without numpy it is unselectable with a clean
  error and everything else keeps working;
* **engine** - the run_shard pipelines ({per-event, batched} x
  {python, numpy} x jobs) produce one fingerprint, including the stamp
  digests, through interrupt/resume mid-run and checkpointed restarts.
"""

from __future__ import annotations

import dataclasses
import os
import random
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.kernel as kernel_module
from repro.analysis.experiments import EXTENDED_MECHANISMS
from repro.cli import main
from repro.computation.streams import epoch_marker, iter_event_batches, StreamEvent
from repro.core.components import ClockComponents
from repro.core.kernel import (
    ClockKernel,
    available_backends,
    fold_stamp_values,
    numpy_available,
    resolve_backend,
    set_default_backend,
)
from repro.engine import EngineCheckpointManager, EngineConfig, run_engine
from repro.engine.runner import EngineInterrupted
from repro.exceptions import ClockError, ComputationError, EngineError
from repro.online.adaptive import WindowedPopularityMechanism

BACKENDS = available_backends()


# ---------------------------------------------------------------------------
# Strategies: lifecycle op sequences and chunkings
# ---------------------------------------------------------------------------
@st.composite
def lifecycle_ops(draw, max_ops=120, threads=6, objects=6):
    """A random op list: ("insert", t, o) / ("expire", t, o) / ("epoch",).

    Expires are drawn from the current live multiset, so the stream
    contract (never more expires than inserts per pair) holds by
    construction - the adaptive mechanisms enforce it.
    """
    count = draw(st.integers(min_value=1, max_value=max_ops))
    rng = random.Random(draw(st.integers(min_value=0, max_value=2**31)))
    live = []
    ops = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.12 and live:
            pair = live.pop(rng.randrange(len(live)))
            ops.append(("expire",) + pair)
        elif roll < 0.18:
            ops.append(("epoch",))
        else:
            pair = (f"T{rng.randrange(threads)}", f"O{rng.randrange(objects)}")
            live.append(pair)
            ops.append(("insert",) + pair)
    return ops


def drive_per_event(mechanism, ops):
    sizes = []
    for op in ops:
        if op[0] == "insert":
            mechanism.observe(op[1], op[2])
            sizes.append(mechanism.clock_size)
        elif op[0] == "expire":
            mechanism.expire(op[1], op[2])
        else:
            mechanism.end_epoch()
    return sizes


def drive_batched(mechanism, ops, chunk_rng):
    """Feed insert runs through observe_batch, chopped at random sizes."""
    sizes = []
    run = []

    def flush():
        while run:
            cut = chunk_rng.randint(1, len(run))
            sizes.extend(mechanism.observe_batch(run[:cut]))
            del run[:cut]

    for op in ops:
        if op[0] == "insert":
            run.append((op[1], op[2]))
        elif op[0] == "expire":
            flush()
            mechanism.expire(op[1], op[2])
        else:
            flush()
            mechanism.end_epoch()
    flush()
    return sizes


def mechanism_state(mechanism):
    return (
        mechanism.decisions,
        mechanism.retirements,
        mechanism.components().ordered,
        mechanism.summary(),
        sorted(map(str, mechanism.revealed_graph.edges())),
    )


class TestObserveBatchBitIdentity:
    @settings(max_examples=40, deadline=None)
    @given(ops=lifecycle_ops(), chunk_seed=st.integers(0, 2**16))
    def test_all_registered_mechanisms(self, ops, chunk_seed):
        for label, factory in EXTENDED_MECHANISMS.items():
            reference = factory(11)
            batched = factory(11)
            ref_sizes = drive_per_event(reference, ops)
            batch_sizes = drive_batched(
                batched, ops, random.Random(chunk_seed)
            )
            assert ref_sizes == batch_sizes, label
            assert mechanism_state(reference) == mechanism_state(batched), label

    def test_base_fallback_when_hooks_overridden(self):
        """A subclass with a lifecycle hook must not take the fast path."""
        from repro.online.naive import NaiveMechanism

        seen = []

        class Hooked(NaiveMechanism):
            def _on_observe(self, thread, obj):
                seen.append((thread, obj))

        mechanism = Hooked()
        mechanism.observe_batch([("T0", "O0"), ("T1", "O0")])
        assert seen == [("T0", "O0"), ("T1", "O0")]

    def test_base_fallback_when_observe_overridden(self):
        """Overriding observe() itself also disables every fast path."""
        from repro.online.hybrid import HybridMechanism
        from repro.online.naive import NaiveMechanism
        from repro.online.popularity import PopularityMechanism

        for base in (NaiveMechanism, PopularityMechanism, HybridMechanism):
            calls = []

            class Audited(base):
                def observe(self, thread, obj):
                    calls.append((thread, obj))
                    return super().observe(thread, obj)

            mechanism = Audited()
            mechanism.observe_batch([("T0", "O0"), ("T1", "O0")])
            assert calls == [("T0", "O0"), ("T1", "O0")], base.__name__

    def test_decision_accessors(self):
        from repro.online.naive import NaiveMechanism

        mechanism = NaiveMechanism()
        mechanism.observe_batch([("T0", "O0"), ("T0", "O1"), ("T1", "O0")])
        assert mechanism.decision_count == 2
        assert mechanism.decisions_since(1) == mechanism.decisions[1:]


# ---------------------------------------------------------------------------
# Kernel batch entry points
# ---------------------------------------------------------------------------
@st.composite
def kernel_runs(draw):
    """(components, pair sequence, extension points) for kernel replays."""
    rng = random.Random(draw(st.integers(min_value=0, max_value=2**31)))
    threads = [f"T{i}" for i in range(8)]
    objects = [f"O{i}" for i in range(8)]
    thread_comps = [t for t in threads[:5]]
    object_comps = [o for o in objects[:4]]
    count = draw(st.integers(min_value=1, max_value=80))
    pairs = [
        (rng.choice(threads[:6]), rng.choice(objects))
        for _ in range(count)
    ]
    # Guarantee coverage under strict mode: each pair needs a component
    # endpoint; force the thread side into the covered prefix when the
    # object missed the component set.
    covered = []
    for thread, obj in pairs:
        if thread not in thread_comps and obj not in object_comps:
            covered.append((rng.choice(thread_comps), obj))
        else:
            covered.append((thread, obj))
    extension_at = draw(st.integers(min_value=0, max_value=count))
    return ClockComponents(thread_comps, object_comps), covered, extension_at


class TestKernelBatchBitIdentity:
    @settings(max_examples=40, deadline=None)
    @given(run=kernel_runs(), chunk_seed=st.integers(0, 2**16))
    def test_timestamp_batch_matches_observe(self, run, chunk_seed):
        components, pairs, extension_at = run
        reference = ClockKernel(components)
        ref_stamps = []
        for index, (thread, obj) in enumerate(pairs):
            if index == extension_at:
                reference.extend_components(thread_components=("T6",))
            ref_stamps.append(reference.observe(thread, obj))
        if extension_at == len(pairs):
            reference.extend_components(thread_components=("T6",))
        for backend in BACKENDS:
            kernel = ClockKernel(components, backend=backend)
            stamps = []
            rng = random.Random(chunk_seed)
            cursor = 0
            extended = False
            while cursor < len(pairs):
                if not extended and cursor >= extension_at:
                    kernel.extend_components(thread_components=("T6",))
                    extended = True
                boundary = len(pairs) if extended else extension_at
                cut = min(cursor + rng.randint(1, 17), boundary)
                stamps.extend(kernel.timestamp_batch(pairs[cursor:cut]))
                cursor = cut
            if not extended:
                kernel.extend_components(thread_components=("T6",))
            assert [s.values for s in stamps] == [
                s.values for s in ref_stamps
            ], backend
            # The stored per-entity clocks agree too (value-wise).
            for thread, _ in pairs:
                assert (
                    kernel.thread_stamp(thread).values
                    == reference.thread_stamp(thread).values
                ), backend

    @settings(max_examples=40, deadline=None)
    @given(run=kernel_runs(), chunk_seed=st.integers(0, 2**16))
    def test_advance_batch_matches_fold_event(self, run, chunk_seed):
        components, pairs, _ = run
        reference = ClockKernel(components)
        fold = 0
        for thread, obj in pairs:
            stamp = reference.observe(thread, obj)
            fold = reference.fold_event(fold, stamp, thread, obj)
        for backend in BACKENDS:
            kernel = ClockKernel(components, backend=backend)
            batched_fold = 0
            rng = random.Random(chunk_seed)
            cursor = 0
            while cursor < len(pairs):
                cut = min(cursor + rng.randint(1, 17), len(pairs))
                batched_fold = kernel.advance_batch(
                    pairs[cursor:cut], batched_fold
                )
                cursor = cut
            assert batched_fold == fold, backend
            for thread, _ in pairs:
                assert (
                    kernel.thread_stamp(thread).values
                    == reference.thread_stamp(thread).values
                ), backend

    def test_strict_batch_raises_and_applies_prefix(self):
        components = ClockComponents(thread_components=["T0"])
        pairs = [("T0", "O0"), ("T1", "O1"), ("T0", "O2")]
        for backend in BACKENDS:
            kernel = ClockKernel(components, backend=backend)
            with pytest.raises(Exception) as excinfo:
                kernel.timestamp_batch(pairs)
            assert "not covered" in str(excinfo.value)
            # The covered prefix was applied, like a sequential loop.
            assert kernel.thread_stamp("T0").values == (1,)

    def test_non_strict_batch_merge_only(self):
        components = ClockComponents(thread_components=["T0"])
        pairs = [("T0", "O0"), ("T1", "O0"), ("T0", "O1")]
        reference = ClockKernel(components, strict=False)
        expected = [reference.observe(t, o).values for t, o in pairs]
        for backend in BACKENDS:
            kernel = ClockKernel(components, strict=False, backend=backend)
            stamps = kernel.timestamp_batch(pairs)
            assert [s.values for s in stamps] == expected, backend

    def test_fold_is_order_sensitive(self):
        a = fold_stamp_values(fold_stamp_values(0, 1, 2), 3, 4)
        b = fold_stamp_values(fold_stamp_values(0, 3, 4), 1, 2)
        assert a != b

    def test_epoch_clock_observe_batch(self):
        from repro.core.timestamping import EpochClock

        components = ClockComponents(thread_components=["T0", "T1"])
        reference = EpochClock(components)
        pairs = [("T0", "O0"), ("T1", "O0"), ("T0", "O1")]
        ref_tokens = [reference.observe(t, o) for t, o in pairs]
        for backend in BACKENDS:
            clock = EpochClock(components, backend=backend)
            tokens = clock.observe_batch(pairs)
            assert tokens == ref_tokens
            for token in tokens:
                assert (
                    clock.timestamp(token).values
                    == reference.timestamp(token).values
                )


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
class TestNumpyArrayPath:
    """Bit-identity of the *array-resident* numpy loop specifically.

    The hypothesis suites above use small clocks and short chunks, which
    the numpy backend's crossover gates route to the Python fallback -
    correct, but it would mask a bug in the array loop itself.  These
    tests sit above both gates (clock width >= MIN_ARRAY_DIM_MINT,
    batches >= MIN_ARRAY_BATCH) and assert the gate is actually open.
    """

    WIDTH = 200  # > MIN_ARRAY_DIM_MINT (160) > MIN_ARRAY_DIM_ADVANCE (48)
    CHUNK = 96   # > MIN_ARRAY_BATCH (48)

    def _setup(self, seed):
        rng = random.Random(seed)
        threads = [f"T{i}" for i in range(160)]
        objects = [f"O{i}" for i in range(60)]
        components = ClockComponents(threads[:150], objects[:50])
        pairs = [
            (rng.choice(threads[:150]), rng.choice(objects))
            for _ in range(480)
        ]
        return components, threads, pairs

    def _assert_gate_open(self, kernel, chunk):
        from repro.core.kernel import NumpyKernelBackend

        backend = kernel._backend
        assert isinstance(backend, NumpyKernelBackend)
        assert backend._use_arrays(
            kernel, [None] * chunk, backend.MIN_ARRAY_DIM_MINT
        ), "test sizes no longer clear the array-path gates; raise them"

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mint_matches_per_event(self, seed):
        components, threads, pairs = self._setup(seed)
        reference = ClockKernel(components)
        ref_stamps = []
        for index, (thread, obj) in enumerate(pairs):
            if index == 288:
                reference.extend_components(thread_components=(threads[155],))
            ref_stamps.append(reference.observe(thread, obj))
        kernel = ClockKernel(components, backend="numpy")
        self._assert_gate_open(kernel, self.CHUNK)
        stamps = []
        for start in range(0, len(pairs), self.CHUNK):
            if start == 288:
                kernel.extend_components(thread_components=(threads[155],))
            stamps.extend(
                kernel.timestamp_batch(pairs[start:start + self.CHUNK])
            )
        assert [s.values for s in stamps] == [s.values for s in ref_stamps]
        assert all(
            type(value) is int for stamp in stamps for value in stamp.values
        )
        for thread, _ in pairs:
            assert (
                kernel.thread_stamp(thread).values
                == reference.thread_stamp(thread).values
            )

    @pytest.mark.parametrize("seed", [3, 4])
    def test_advance_matches_per_event_fold(self, seed):
        components, _, pairs = self._setup(seed)
        reference = ClockKernel(components)
        fold = 0
        for thread, obj in pairs:
            stamp = reference.observe(thread, obj)
            fold = reference.fold_event(fold, stamp, thread, obj)
        kernel = ClockKernel(components, backend="numpy")
        batched_fold = 0
        for start in range(0, len(pairs), self.CHUNK):
            batched_fold = kernel.advance_batch(
                pairs[start:start + self.CHUNK], batched_fold
            )
        assert batched_fold == fold
        for _, obj in pairs:
            assert (
                kernel.object_stamp(obj).values
                == reference.object_stamp(obj).values
            )

    def test_strict_error_applies_prefix_on_array_path(self):
        components, _, pairs = self._setup(9)
        poisoned = pairs[: self.CHUNK]
        poisoned[60] = ("T-unknown", "O-unknown")
        reference = ClockKernel(components)
        for thread, obj in poisoned[:60]:
            reference.observe(thread, obj)
        kernel = ClockKernel(components, backend="numpy")
        self._assert_gate_open(kernel, len(poisoned))
        with pytest.raises(Exception, match="not covered"):
            kernel.timestamp_batch(poisoned)
        for thread, obj in poisoned[:60]:
            assert (
                kernel.thread_stamp(thread).values
                == reference.thread_stamp(thread).values
            )
            assert (
                kernel.object_stamp(obj).values
                == reference.object_stamp(obj).values
            )


# ---------------------------------------------------------------------------
# Backend gating
# ---------------------------------------------------------------------------
class TestBackendGate:
    def test_python_always_available(self):
        assert "python" in available_backends()
        assert resolve_backend("python").name == "python"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ClockError, match="unknown kernel backend"):
            resolve_backend("fortran")

    def test_numpy_gate_degrades_cleanly(self, monkeypatch):
        """Without numpy: python-only listing, clean errors, working kernels."""
        monkeypatch.setattr(kernel_module, "_np", None)
        # The CI numpy job exports REPRO_KERNEL_BACKEND=numpy; this test
        # simulates numpy's *absence*, so clear the ambient selection.
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        assert available_backends() == ("python",)
        assert not numpy_available()
        with pytest.raises(ClockError, match="numpy is not importable"):
            resolve_backend("numpy")
        with pytest.raises(EngineError, match="numpy is not importable"):
            EngineConfig(
                scenario="thread-churn", backend="numpy"
            ).validate()
        # The python path is untouched by the gate.
        kernel = ClockKernel(ClockComponents(thread_components=["T0"]))
        assert kernel.timestamp_batch([("T0", "O0")])[0].values == (1,)

    def test_env_var_selects_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "python")
        kernel = ClockKernel(ClockComponents(thread_components=["T0"]))
        assert kernel.backend_name == "python"

    def test_set_default_backend_validates(self):
        with pytest.raises(ClockError):
            set_default_backend("no-such-backend")
        try:
            set_default_backend("python")
            assert ClockKernel(ClockComponents()).backend_name == "python"
        finally:
            set_default_backend(None)

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_numpy_backend_pickles_by_name(self):
        import pickle

        kernel = ClockKernel(
            ClockComponents(thread_components=["T0"]), backend="numpy"
        )
        clone = pickle.loads(pickle.dumps(kernel))
        assert clone.backend_name == "numpy"
        clone.set_backend("python")
        assert clone.backend_name == "python"

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_numpy_checkpoint_unpickles_without_numpy(self, monkeypatch):
        """A shard pickled under numpy loads on a numpy-less host."""
        import pickle

        kernel = ClockKernel(
            ClockComponents(thread_components=["T0"]), backend="numpy"
        )
        kernel.observe("T0", "O0")
        payload = pickle.dumps(kernel)
        monkeypatch.setattr(kernel_module, "_np", None)
        clone = pickle.loads(payload)
        assert clone.backend_name == "python"
        assert clone.thread_stamp("T0").values == (1,)


# ---------------------------------------------------------------------------
# Engine pipelines
# ---------------------------------------------------------------------------
MATRIX_CONFIG = dict(
    scenario="thread-churn",
    num_threads=25,
    num_objects=25,
    density=0.2,
    num_events=900,
    seed=77,
    num_shards=3,
    chunk_size=120,
    mechanisms=("naive", "popularity"),
    include_offline=True,
    timestamps=True,
)


class TestEnginePipelines:
    def test_fingerprint_matrix(self):
        fingerprints = {}
        for pipeline in ("per-event", "batched"):
            for backend in BACKENDS:
                config = EngineConfig(
                    pipeline=pipeline, backend=backend, **MATRIX_CONFIG
                )
                fingerprints[(pipeline, backend)] = run_engine(
                    config
                ).fingerprint()
        assert len(set(fingerprints.values())) == 1, fingerprints

    def test_stamp_digests_present_and_carried(self):
        result = run_engine(EngineConfig(**MATRIX_CONFIG))
        labels = {label for _, label in result.partial.series}
        assert "offline" in labels
        for (shard, label), fragment in result.partial.series.items():
            if label == "offline":
                assert fragment.stamp_digest is None
            else:
                assert fragment.stamp_digest

    def test_timestamps_off_keeps_digest_out_of_fingerprint(self):
        config = EngineConfig(
            **{**MATRIX_CONFIG, "timestamps": False}
        )
        result = run_engine(config)
        assert all(
            fragment.stamp_digest is None
            for fragment in result.partial.series.values()
        )
        assert "stamps=" not in "\n".join(result._canonical_lines())

    def test_timestamps_reject_window_aware_mechanisms(self):
        config = EngineConfig(
            scenario="thread-churn",
            mechanisms=("naive", "adaptive-popularity"),
            timestamps=True,
        )
        with pytest.raises(EngineError, match="append-only"):
            config.validate()

    def test_unknown_pipeline_rejected(self):
        with pytest.raises(EngineError, match="unknown pipeline"):
            EngineConfig(scenario="thread-churn", pipeline="warp").validate()

    def test_batched_with_window_and_epochs_matches_per_event(self):
        base = dict(
            scenario="hot-object-drift",
            num_threads=20,
            num_objects=20,
            density=0.2,
            num_events=800,
            seed=5,
            num_shards=2,
            chunk_size=150,
            window=120,
            epoch_every=90,
            mechanisms=("naive", "adaptive-popularity", "epoch-hybrid"),
        )
        per_event = run_engine(EngineConfig(pipeline="per-event", **base))
        batched = run_engine(EngineConfig(pipeline="batched", **base))
        assert batched.fingerprint() == per_event.fingerprint()

    def test_interrupt_resume_mid_chunk_batched(self, tmp_path):
        reference = run_engine(EngineConfig(**MATRIX_CONFIG))
        config = EngineConfig(
            checkpoint_dir=str(tmp_path / "ckpt"), **MATRIX_CONFIG
        )
        with pytest.raises(EngineInterrupted):
            run_engine(dataclasses.replace(config, max_chunks_per_shard=1))
        resumed = run_engine(config)
        assert resumed.fingerprint() == reference.fingerprint()

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_resume_under_different_backend(self, tmp_path):
        """A run checkpointed under one backend resumes under another."""
        reference = run_engine(EngineConfig(**MATRIX_CONFIG))
        config = EngineConfig(
            checkpoint_dir=str(tmp_path / "ckpt"),
            backend="python",
            **MATRIX_CONFIG,
        )
        with pytest.raises(EngineInterrupted):
            run_engine(dataclasses.replace(config, max_chunks_per_shard=1))
        resumed = run_engine(dataclasses.replace(config, backend="numpy"))
        assert resumed.fingerprint() == reference.fingerprint()

    def test_timestamps_key_absent_from_default_signature(self):
        """Pre-existing (timestamp-less) checkpoint dirs stay resumable."""
        config = EngineConfig(**{**MATRIX_CONFIG, "timestamps": False})
        assert "timestamps" not in config.signature()
        assert EngineConfig(**MATRIX_CONFIG).signature()["timestamps"] is True

    def test_timestamps_part_of_signature(self, tmp_path):
        config = EngineConfig(
            checkpoint_dir=str(tmp_path / "ckpt"), **MATRIX_CONFIG
        )
        run_engine(config)
        with pytest.raises(EngineError, match="different run configuration"):
            run_engine(dataclasses.replace(config, timestamps=False))


# ---------------------------------------------------------------------------
# Stream batching helpers and simulator parity
# ---------------------------------------------------------------------------
class TestIterEventBatches:
    def test_partitions_at_lifecycle_events(self):
        events = [
            StreamEvent("T0", "O0"),
            StreamEvent("T1", "O1"),
            StreamEvent("T0", "O0", "expire"),
            epoch_marker(),
            StreamEvent("T1", "O0"),
        ]
        batches = list(iter_event_batches(events, max_batch=10))
        assert [len(b) if isinstance(b, list) else b.kind for b in batches] == [
            2,
            "expire",
            "epoch",
            1,
        ]

    def test_max_batch_cuts_runs(self):
        events = [StreamEvent(f"T{i}", "O0") for i in range(5)]
        batches = list(iter_event_batches(events, max_batch=2))
        assert [len(b) for b in batches] == [2, 2, 1]

    def test_rejects_non_positive_cap(self):
        with pytest.raises(ComputationError):
            list(iter_event_batches([], max_batch=0))


# ---------------------------------------------------------------------------
# Windowed degree estimates (the drift bugfix, flagged)
# ---------------------------------------------------------------------------
class TestWindowedDegrees:
    def test_registered_label(self):
        mechanism = EXTENDED_MECHANISMS["adaptive-popularity-windowed"](0)
        assert isinstance(mechanism, WindowedPopularityMechanism)
        assert mechanism.windowed_degrees
        assert mechanism.name == "adaptive-popularity-windowed"
        assert not EXTENDED_MECHANISMS["adaptive-popularity"](0).windowed_degrees

    def test_windowed_choice_ignores_expired_popularity(self):
        """After a hot object's events expire, its dead degree stops winning.

        Build history where object O-hot accumulates high append-only
        degree, then expire all its events; a fresh uncovered event
        ``(T-new, O-hot)`` must pick the thread side under windowed
        degrees (the object has no live events beyond the current one)
        while the append-only policy still picks the object.
        """

        def history(mechanism):
            for i in range(5):
                mechanism.observe(f"T{i}", "O-hot")
            for i in range(5):
                mechanism.expire(f"T{i}", "O-hot")
            # Give the new thread one live event so its windowed count
            # ties/beats the dead object's.
            mechanism.observe("T-new", "O-fresh")
            return mechanism

        append_only = history(WindowedPopularityMechanism())
        windowed = history(
            WindowedPopularityMechanism(windowed_degrees=True)
        )
        # Un-cover the endpoints under test: retire any component that
        # would cover the probe event.  (The probe pair is chosen so
        # neither mechanism covers it: T-probe never appeared, O-stale
        # accumulated degree but was retired when its events expired.)
        probe = ("T-probe", "O-hot")
        for mechanism in (append_only, windowed):
            assert not mechanism.covers(*probe)
        added_append = append_only.observe(*probe)
        added_windowed = windowed.observe(*probe)
        # Append-only popularity: O-hot has revealed degree 6 vs thread
        # degree 1 -> picks the (dead) object.
        assert added_append == "O-hot"
        # Windowed: O-hot has 1 live event (this one), T-probe has 1 ->
        # tie falls to the thread side, tracking the live regime.
        assert added_windowed == "T-probe"


# ---------------------------------------------------------------------------
# Checkpoint age-based pruning
# ---------------------------------------------------------------------------
class TestMaxAgePrune:
    def _aged_checkpoint_dir(self, tmp_path):
        config = EngineConfig(
            checkpoint_dir=str(tmp_path / "ckpt"), **MATRIX_CONFIG
        )
        run_engine(config)
        return config

    def test_prune_max_age_removes_stale_shards(self, tmp_path):
        config = self._aged_checkpoint_dir(tmp_path)
        manager = EngineCheckpointManager.open(config.checkpoint_dir)
        files = manager.shard_files()
        assert files
        stale = files[0]
        old = time.time() - 3600
        os.utime(stale, (old, old))
        removed = manager.prune(max_age=600)
        assert stale in removed
        # Fresh shards and the manifest survive.
        assert set(manager.shard_files()) == set(files) - {0}
        assert (manager.directory / "manifest.json").exists()
        # The pruned shard is simply recomputed: the resumed run still
        # matches a fresh one bit for bit.
        resumed = run_engine(config)
        assert resumed.fingerprint() == run_engine(
            EngineConfig(**MATRIX_CONFIG)
        ).fingerprint()

    def test_prune_without_age_keeps_referenced(self, tmp_path):
        config = self._aged_checkpoint_dir(tmp_path)
        manager = EngineCheckpointManager.open(config.checkpoint_dir)
        count = len(manager.shard_files())
        assert manager.prune() == []
        assert len(manager.shard_files()) == count

    def test_negative_age_rejected(self, tmp_path):
        config = self._aged_checkpoint_dir(tmp_path)
        manager = EngineCheckpointManager.open(config.checkpoint_dir)
        with pytest.raises(EngineError):
            manager.prune(max_age=-1)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------
class TestCli:
    def test_engine_run_pipeline_backend_timestamps(self, capsys):
        code = main(
            [
                "engine", "run", "--scenario", "thread-churn",
                "--events", "400", "--nodes", "15", "--shards", "2",
                "--chunk-size", "100", "--mechanisms", "naive",
                "--pipeline", "per-event", "--backend", "python",
                "--timestamps",
            ]
        )
        out_per_event = capsys.readouterr().out
        assert code == 0
        code = main(
            [
                "engine", "run", "--scenario", "thread-churn",
                "--events", "400", "--nodes", "15", "--shards", "2",
                "--chunk-size", "100", "--mechanisms", "naive",
                "--pipeline", "batched", "--timestamps",
            ]
        )
        out_batched = capsys.readouterr().out
        assert code == 0
        fp_a = [l for l in out_per_event.splitlines() if "fingerprint" in l]
        fp_b = [l for l in out_batched.splitlines() if "fingerprint" in l]
        assert fp_a == fp_b

    def test_engine_run_rejects_numpy_without_numpy(self, capsys, monkeypatch):
        monkeypatch.setattr(kernel_module, "_np", None)
        code = main(
            [
                "engine", "run", "--scenario", "thread-churn",
                "--events", "100", "--backend", "numpy",
            ]
        )
        assert code == 2
        assert "numpy is not importable" in capsys.readouterr().err

    def test_sweep_ratio_backend(self, capsys):
        code = main(
            [
                "sweep", "ratio", "--scenario", "thread-churn",
                "--trials", "1", "--nodes", "10", "--density", "0.2",
                "--events", "150", "--burn-in", "30", "--tail", "30",
                "--backend", "python",
            ]
        )
        assert code == 0
        assert "ratio-sweep-thread-churn" in capsys.readouterr().out

    def test_engine_clean_max_age(self, tmp_path, capsys):
        config = EngineConfig(
            checkpoint_dir=str(tmp_path / "ckpt"), **MATRIX_CONFIG
        )
        run_engine(config)
        for path in EngineCheckpointManager.open(
            config.checkpoint_dir
        ).shard_files().values():
            old = time.time() - 7200
            os.utime(path, (old, old))
        code = main(
            ["engine", "clean", config.checkpoint_dir, "--max-age", "3600"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "pruned 3 unreferenced/stale file(s)" in out
