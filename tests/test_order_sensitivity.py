"""Unit tests for the reveal-order sensitivity analysis."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.graph import BipartiteGraph, nonuniform_bipartite, uniform_bipartite
from repro.online import NaiveMechanism, PopularityMechanism, RandomMechanism
from repro.online.sensitivity import compare_order_sensitivity, order_sensitivity


class TestOrderSensitivity:
    def test_naive_is_order_insensitive(self):
        # Naive always adds the thread of an uncovered event, so the final
        # component set is exactly the set of active threads - independent
        # of the reveal order.
        graph = uniform_bipartite(15, 15, 0.2, seed=1)
        result = order_sensitivity(graph, lambda seed: NaiveMechanism(), trials=10)
        assert result.spread == 0
        assert result.stats.minimum == result.stats.maximum
        assert result.mechanism == "naive-thread"

    def test_adaptive_mechanisms_respect_optimum_bound(self):
        graph = nonuniform_bipartite(20, 20, 0.1, seed=2)
        for factory in (lambda seed: RandomMechanism(seed=seed),
                        lambda seed: PopularityMechanism()):
            result = order_sensitivity(graph, factory, trials=8, base_seed=5)
            assert result.best >= result.offline_optimum
            assert result.worst_case_ratio() >= 1.0
            assert result.stats.count == 8

    def test_best_and_worst_seeds_are_reproducible(self):
        graph = uniform_bipartite(15, 15, 0.15, seed=7)
        a = order_sensitivity(graph, lambda seed: RandomMechanism(seed=seed),
                              trials=6, base_seed=11)
        b = order_sensitivity(graph, lambda seed: RandomMechanism(seed=seed),
                              trials=6, base_seed=11)
        assert a.stats.mean == b.stats.mean
        assert a.best_order_seed == b.best_order_seed
        assert a.worst_order_seed == b.worst_order_seed

    def test_parameter_validation(self):
        graph = uniform_bipartite(5, 5, 0.5, seed=1)
        with pytest.raises(ExperimentError):
            order_sensitivity(graph, lambda seed: NaiveMechanism(), trials=0)
        empty = BipartiteGraph(threads=["T1"], objects=["O1"])
        with pytest.raises(ExperimentError):
            order_sensitivity(empty, lambda seed: NaiveMechanism())

    def test_compare_runs_every_mechanism(self):
        graph = nonuniform_bipartite(15, 15, 0.1, seed=3)
        results = compare_order_sensitivity(
            graph,
            {
                "naive": lambda seed: NaiveMechanism(),
                "popularity": lambda seed: PopularityMechanism(),
            },
            trials=5,
        )
        assert set(results) == {"naive", "popularity"}
        assert results["naive"].mechanism == "naive"
        for result in results.values():
            assert result.offline_optimum <= result.best
