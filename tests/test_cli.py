"""Unit tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import WORKLOADS, build_parser, main
from repro.computation.serialization import dump_computation, load_computation
from repro.computation.workloads import paper_example_trace


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_workloads_listed(self):
        assert "producer-consumer" in WORKLOADS
        assert "paper-example" in WORKLOADS

    def test_workloads_derived_from_registry(self):
        # The CLI no longer keeps its own workload table: choices, help
        # text and error messages all come from the scenario registry.
        from repro.computation import REGISTRY, TRACE

        assert tuple(sorted(WORKLOADS)) == REGISTRY.names(TRACE)
        for name in WORKLOADS:
            assert WORKLOADS[name] is REGISTRY.get(name, kind=TRACE).factory

    def test_generate_help_lists_registered_descriptions(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--help"])
        out = capsys.readouterr().out
        assert "producer-consumer:" in out  # description line from the registry


class TestDemo:
    def test_demo_prints_cover_and_timestamps(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "O2" in out and "O3" in out and "T2" in out
        assert "Clock size 3" in out
        assert "clock components" in out  # the timestamp table


class TestGenerateAndAnalyze:
    def test_generate_writes_loadable_trace(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        assert main(["generate", "--workload", "work-stealing", "--seed", "3",
                     "--out", str(out_path)]) == 0
        assert "wrote" in capsys.readouterr().out
        trace = load_computation(out_path)
        assert trace.num_events > 0

    def test_analyze_reports_optimal_clock(self, tmp_path, capsys):
        path = tmp_path / "paper.json"
        dump_computation(paper_example_trace(), path)
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "optimal clock:     3 components" in out
        assert "O2" in out and "O3" in out and "T2" in out

    def test_analyze_with_oracle_check(self, tmp_path, capsys):
        path = tmp_path / "paper.json"
        dump_computation(paper_example_trace(), path)
        assert main(["analyze", str(path), "--check"]) == 0
        assert "0 mismatching pairs" in capsys.readouterr().out

    def test_analyze_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_analyze_corrupt_file_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["analyze", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_every_workload_generates(self, workload, tmp_path):
        out_path = tmp_path / f"{workload}.json"
        assert main(["generate", "--workload", workload, "--out", str(out_path)]) == 0
        document = json.loads(out_path.read_text())
        assert document["format"] == "repro-trace"


class TestSweep:
    def test_density_sweep_output(self, capsys):
        assert main(["sweep", "density", "--nodes", "12", "--trials", "1"]) == 0
        out = capsys.readouterr().out
        assert "density-sweep-uniform" in out
        assert "popularity" in out
        assert "crossover" in out

    def test_node_sweep_with_offline(self, capsys):
        assert main(["sweep", "nodes", "--density", "0.1", "--trials", "1",
                     "--scenario", "nonuniform", "--offline"]) == 0
        out = capsys.readouterr().out
        assert "node-sweep-nonuniform" in out
        assert "offline" in out

    def test_ratio_sweep_scopes_to_one_scenario_and_cell(self, capsys):
        assert main(["sweep", "ratio", "--scenario", "phase-change",
                     "--nodes", "10", "--density", "0.1", "--trials", "1",
                     "--window", "20", "--burn-in", "5", "--tail", "5",
                     "--events", "60"]) == 0
        out = capsys.readouterr().out
        assert "ratio-sweep-phase-change" in out
        assert "thread-churn" not in out
        assert "0.10" in out and "10" in out  # the requested grid cell

    def test_stream_scenario_on_graph_axis_fails_cleanly(self, capsys):
        assert main(["sweep", "density", "--scenario", "thread-churn",
                     "--trials", "1"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "graph scenario" in err

    def test_graph_scenario_on_ratio_axis_fails_cleanly(self, capsys):
        assert main(["sweep", "ratio", "--scenario", "uniform",
                     "--trials", "1"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_ratio_sweep_prints_burn_in_vs_steady_tables(self, capsys):
        assert main(["sweep", "ratio", "--trials", "1", "--window", "20",
                     "--burn-in", "5", "--tail", "5", "--events", "60"]) == 0
        out = capsys.readouterr().out
        # One burn-in/steady-state table per registered stream scenario.
        for scenario in ("hot-object-drift", "phase-change", "thread-churn"):
            assert f"ratio-sweep-{scenario}" in out
        assert ":burn" in out and ":steady" in out
        assert "burn-in first 5" in out and "steady last 5" in out
