"""Unit tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import WORKLOADS, build_parser, main
from repro.computation.serialization import dump_computation, load_computation
from repro.computation.workloads import paper_example_trace


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_workloads_listed(self):
        assert "producer-consumer" in WORKLOADS
        assert "paper-example" in WORKLOADS


class TestDemo:
    def test_demo_prints_cover_and_timestamps(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "O2" in out and "O3" in out and "T2" in out
        assert "Clock size 3" in out
        assert "clock components" in out  # the timestamp table


class TestGenerateAndAnalyze:
    def test_generate_writes_loadable_trace(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        assert main(["generate", "--workload", "work-stealing", "--seed", "3",
                     "--out", str(out_path)]) == 0
        assert "wrote" in capsys.readouterr().out
        trace = load_computation(out_path)
        assert trace.num_events > 0

    def test_analyze_reports_optimal_clock(self, tmp_path, capsys):
        path = tmp_path / "paper.json"
        dump_computation(paper_example_trace(), path)
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "optimal clock:     3 components" in out
        assert "O2" in out and "O3" in out and "T2" in out

    def test_analyze_with_oracle_check(self, tmp_path, capsys):
        path = tmp_path / "paper.json"
        dump_computation(paper_example_trace(), path)
        assert main(["analyze", str(path), "--check"]) == 0
        assert "0 mismatching pairs" in capsys.readouterr().out

    def test_analyze_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_analyze_corrupt_file_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["analyze", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_every_workload_generates(self, workload, tmp_path):
        out_path = tmp_path / f"{workload}.json"
        assert main(["generate", "--workload", workload, "--out", str(out_path)]) == 0
        document = json.loads(out_path.read_text())
        assert document["format"] == "repro-trace"


class TestSweep:
    def test_density_sweep_output(self, capsys):
        assert main(["sweep", "density", "--nodes", "12", "--trials", "1"]) == 0
        out = capsys.readouterr().out
        assert "density-sweep-uniform" in out
        assert "popularity" in out
        assert "crossover" in out

    def test_node_sweep_with_offline(self, capsys):
        assert main(["sweep", "nodes", "--density", "0.1", "--trials", "1",
                     "--scenario", "nonuniform", "--offline"]) == 0
        out = capsys.readouterr().out
        assert "node-sweep-nonuniform" in out
        assert "offline" in out
