"""Unit tests for the offline optimal algorithm (Section III pipeline)."""

from __future__ import annotations

import pytest

from repro.computation import paper_example_trace, random_trace, trace_from_graph
from repro.graph import (
    complete_bipartite,
    paper_example_graph,
    star_bipartite,
    uniform_bipartite,
)
from repro.graph.vertex_cover import brute_force_vertex_cover
from repro.offline import (
    optimal_clock_size,
    optimal_components_for_computation,
    optimal_components_for_graph,
    timestamp_offline,
)
from tests.conftest import assert_valid_vector_clock, small_random_graph


class TestOfflineOnGraphs:
    def test_paper_example(self):
        result = optimal_components_for_graph(paper_example_graph())
        assert result.clock_size == 3
        assert result.cover == {"T2", "O2", "O3"}
        assert result.thread_component_count == 1
        assert result.object_component_count == 2
        assert result.savings_vs_naive() == 1  # 4 - 3

    def test_clock_size_equals_matching_size(self):
        for seed in range(8):
            graph = uniform_bipartite(20, 20, 0.1, seed=seed)
            result = optimal_components_for_graph(graph)
            assert result.clock_size == len(result.matching)

    def test_never_larger_than_min_nm(self):
        for seed in range(8):
            graph = uniform_bipartite(15, 25, 0.15, seed=seed)
            result = optimal_components_for_graph(graph)
            assert result.clock_size <= min(graph.num_threads, graph.num_objects)

    def test_matches_brute_force_on_tiny_graphs(self):
        for seed in range(20):
            graph = small_random_graph(seed, max_side=5, density=0.4)
            if graph.num_vertices > 10:
                continue
            assert optimal_clock_size(graph) == len(brute_force_vertex_cover(graph))

    def test_star_graph_needs_one_component(self):
        assert optimal_clock_size(star_bipartite(1, 20)) == 1

    def test_complete_graph_needs_smaller_side(self):
        assert optimal_clock_size(complete_bipartite(6, 9)) == 6

    def test_summary_fields(self):
        result = optimal_components_for_graph(paper_example_graph())
        summary = result.summary()
        assert summary["clock_size"] == 3
        assert summary["threads"] == 4
        assert summary["objects"] == 4
        assert summary["naive_size"] == 4
        assert summary["matching_size"] == 3

    def test_both_matcher_backends_agree(self):
        for seed in range(5):
            graph = uniform_bipartite(18, 18, 0.12, seed=seed)
            assert optimal_clock_size(graph, algorithm="hopcroft-karp") == optimal_clock_size(
                graph, algorithm="augmenting-path"
            )


class TestOfflineOnComputations:
    def test_components_cover_the_computation(self):
        trace = random_trace(8, 8, 100, seed=4)
        result = optimal_components_for_computation(trace)
        result.components.validate_covers_graph(trace.bipartite_graph())

    def test_timestamp_offline_is_valid_vector_clock(self):
        trace = random_trace(6, 7, 80, seed=11)
        stamped = timestamp_offline(trace)
        assert_valid_vector_clock(trace, stamped.timestamp)

    def test_timestamp_offline_on_paper_trace(self):
        stamped = timestamp_offline(paper_example_trace())
        assert stamped.clock_size == 3
        assert_valid_vector_clock(paper_example_trace(), stamped.timestamp)

    def test_offline_never_worse_than_thread_or_object_clock(self):
        for seed in range(6):
            graph = uniform_bipartite(12, 9, 0.2, seed=seed)
            trace = trace_from_graph(graph, seed=seed)
            result = optimal_components_for_computation(trace)
            assert result.clock_size <= trace.num_threads
            assert result.clock_size <= trace.num_objects

    def test_protocol_factory_returns_fresh_protocols(self):
        result = optimal_components_for_computation(paper_example_trace())
        first = result.protocol()
        second = result.protocol()
        assert first is not second
        first.observe("T2", "O1")
        assert second.events_observed == 0
