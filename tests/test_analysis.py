"""Unit tests for the statistics, sweep harness and report rendering."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    PAPER_MECHANISMS,
    SummaryStats,
    crossover_point,
    density_sweep,
    format_comparison_table,
    format_series,
    format_sweep,
    format_table,
    node_sweep,
    relative_reduction,
    scenario_comparison,
    summarize,
    summarize_by_key,
    sweep_crossovers,
)
from repro.computation import lock_hierarchy_trace, producer_consumer_trace
from repro.exceptions import ExperimentError


class TestMetrics:
    def test_summarize_basic(self):
        stats = summarize([1, 2, 3, 4])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1 and stats.maximum == 4
        assert stats.std == pytest.approx(1.2909944, rel=1e-5)
        assert stats.stderr > 0
        assert stats.confidence_halfwidth() == pytest.approx(1.96 * stats.stderr)
        assert "±" in str(stats)

    def test_summarize_single_value(self):
        stats = summarize([7])
        assert stats.mean == 7
        assert stats.std == 0.0
        assert stats.stderr == 0.0

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_summarize_by_key(self):
        stats = summarize_by_key([{"a": 1, "b": 2}, {"a": 3}])
        assert stats["a"].mean == 2
        assert stats["b"].count == 1

    def test_relative_reduction(self):
        assert relative_reduction(50, 35) == pytest.approx(0.3)
        assert relative_reduction(0, 5) == 0.0

    def test_crossover_point(self):
        xs = [0.1, 0.2, 0.3]
        assert crossover_point(xs, [1, 5, 9], [4, 4, 4]) == 0.2
        assert crossover_point(xs, [1, 2, 3], [4, 4, 4]) == math.inf
        with pytest.raises(ValueError):
            crossover_point([1], [1, 2], [1, 2])


class TestSweeps:
    def test_density_sweep_structure(self):
        result = density_sweep([0.02, 0.1], num_threads=15, num_objects=15, trials=2,
                               include_offline=True)
        assert result.x_label == "density"
        assert result.xs == (0.02, 0.1)
        assert set(result.mechanisms) == {"naive", "random", "popularity", "thread_clock"}
        assert len(result.series("naive")) == 2
        assert len(result.series("offline")) == 2
        rows = result.as_rows()
        assert rows[0]["density"] == 0.02
        assert "offline" in rows[0]

    def test_offline_is_never_above_any_mechanism(self):
        result = density_sweep([0.05, 0.2], num_threads=12, num_objects=12, trials=2,
                               include_offline=True)
        for point in result.points:
            for mechanism in ("naive", "random", "popularity"):
                assert point.offline.mean <= point.sizes[mechanism].mean + 1e-9

    def test_thread_clock_series_is_constant_n(self):
        result = density_sweep([0.05, 0.3], num_threads=13, num_objects=13, trials=2)
        assert result.series("thread_clock") == (13.0, 13.0)

    def test_node_sweep_structure(self):
        result = node_sweep([10, 20], density=0.1, trials=2, include_offline=True)
        assert result.x_label == "nodes_per_side"
        assert result.series("thread_clock") == (10.0, 20.0)

    def test_nonuniform_scenario_supported(self):
        result = density_sweep([0.05], scenario="nonuniform", num_threads=15,
                               num_objects=15, trials=2)
        assert result.points[0].sizes["popularity"].mean > 0

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ExperimentError):
            density_sweep([0.05], scenario="bimodal", trials=1)

    def test_invalid_parameters(self):
        with pytest.raises(ExperimentError):
            density_sweep([0.1], trials=0)
        with pytest.raises(ExperimentError):
            density_sweep([], trials=1)

    def test_sweeps_are_deterministic(self):
        a = density_sweep([0.05], num_threads=10, num_objects=10, trials=2, base_seed=77)
        b = density_sweep([0.05], num_threads=10, num_objects=10, trials=2, base_seed=77)
        assert a.as_rows() == b.as_rows()

    def test_requesting_offline_series_when_absent_raises(self):
        result = density_sweep([0.05], num_threads=10, num_objects=10, trials=1)
        with pytest.raises(ExperimentError):
            result.series("offline")


class TestScenarioComparison:
    def test_structured_workload_table(self):
        table = scenario_comparison(
            {
                "producer-consumer": producer_consumer_trace(seed=1),
                "lock-hierarchy": lock_hierarchy_trace(seed=1),
            }
        )
        assert set(table) == {"producer-consumer", "lock-hierarchy"}
        for row in table.values():
            assert row["offline"] <= min(row["thread_clock"], row["object_clock"])
            for mechanism in PAPER_MECHANISMS:
                assert row[mechanism] >= row["offline"]


class TestReportRendering:
    def test_format_table_alignment_and_floats(self):
        text = format_table([{"x": 1.234, "label": "abc"}, {"x": 10.5, "label": "d"}])
        assert "1.23" in text and "10.50" in text
        assert "---" in text.splitlines()[1]

    def test_format_table_empty(self):
        assert format_table([]) == "(no data)"

    def test_format_sweep_and_crossovers(self):
        result = density_sweep([0.02, 0.4], num_threads=12, num_objects=12, trials=2)
        text = format_sweep(result)
        assert "density-sweep-uniform" in text
        assert "popularity" in text
        crossings = sweep_crossovers(result, baseline="thread_clock")
        assert set(crossings) == {"naive", "random", "popularity"}

    def test_format_series(self):
        assert format_series("naive", [0.1, 0.2], [5, 6]) == "naive: (0.1, 5.0) (0.2, 6.0)"

    def test_format_comparison_table(self):
        text = format_comparison_table({"wl": {"offline": 3, "naive": 5}})
        assert "wl" in text and "offline" in text
