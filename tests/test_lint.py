"""Tests for ``repro lint``: rules, suppression, baseline, CLI.

Each rule gets at least one positive fixture (a snippet that must be
flagged) and one negative fixture (the conforming shape that must not
be), plus shared tests for ``# repro: noqa[...]`` suppression and the
baseline workflow.  The final test is the self-application gate: the
repository's own ``src/``, ``benchmarks/`` and ``tests/`` must lint
clean against the committed baseline - the same invariant CI enforces.
"""

from __future__ import annotations

import json
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.exceptions import LintError
from repro.lint import (
    ALL_RULES,
    DEFAULT_BASELINE,
    Finding,
    apply_baseline,
    check_file,
    load_baseline,
    render_baseline,
    run_lint,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_source(tmp_path, source, select=None):
    """Lint one dedented snippet; returns the list of findings."""
    path = tmp_path / "snippet.py"
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    rules = [rule() for rule in ALL_RULES if select is None or rule.id in select]
    return check_file(path, rules)


def rule_ids(findings):
    return [finding.rule for finding in findings]


# ---------------------------------------------------------------------------
# D101 - unsorted set iteration
# ---------------------------------------------------------------------------
class TestSetIteration:
    def test_for_over_set_literal_name_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            names = {"a", "b"}
            out = []
            for name in names:
                out.append(name)
            """,
        )
        assert rule_ids(findings) == ["D101"]

    def test_comprehension_over_set_call_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def dedup(items):
                return [item for item in set(items)]
            """,
        )
        assert rule_ids(findings) == ["D101"]

    def test_set_operator_expression_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def shared(a):
                left = {"x"}
                for item in left & a:
                    print(item)
            """,
        )
        assert "D101" in rule_ids(findings)

    def test_list_materialisation_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            vertices = list({"a", "b"} | {"c"})
            """,
        )
        assert rule_ids(findings) == ["D101"]

    def test_sorted_iteration_not_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            names = {"a", "b"}
            for name in sorted(names):
                print(name)
            """,
        )
        assert findings == []

    def test_reassigned_to_sorted_not_flagged(self, tmp_path):
        # x = sorted(x) cleanses the name: every assignment must be set-shaped.
        findings = lint_source(
            tmp_path,
            """
            names = {"a", "b"}
            names = sorted(names)
            for name in names:
                print(name)
            """,
        )
        assert findings == []

    def test_membership_test_not_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            seen = set()
            def check(v):
                return v in seen
            """,
        )
        assert findings == []


# ---------------------------------------------------------------------------
# D102 - builtin hash()
# ---------------------------------------------------------------------------
class TestBuiltinHash:
    def test_hash_call_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def route(key, shards):
                return hash(key) % shards
            """,
        )
        assert rule_ids(findings) == ["D102"]

    def test_hash_inside_dunder_hash_not_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            class Point:
                def __hash__(self):
                    return hash((self.x, self.y))
            """,
        )
        assert findings == []


# ---------------------------------------------------------------------------
# D103 - process-global random state
# ---------------------------------------------------------------------------
class TestGlobalRandom:
    def test_module_level_random_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import random
            value = random.random()
            random.shuffle([1, 2, 3])
            """,
        )
        assert rule_ids(findings) == ["D103", "D103"]

    def test_from_import_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from random import choice
            pick = choice([1, 2, 3])
            """,
        )
        assert rule_ids(findings) == ["D103"]

    def test_numpy_global_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import numpy as np
            noise = np.random.rand(10)
            """,
        )
        assert rule_ids(findings) == ["D103"]

    def test_seeded_instance_not_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import random
            from repro.seeds import derive_seed

            def build(seed):
                rng = random.Random(derive_seed(seed, "build"))
                return rng.random()
            """,
        )
        assert findings == []


# ---------------------------------------------------------------------------
# D104 - wall-clock reads
# ---------------------------------------------------------------------------
class TestWallClock:
    def test_time_time_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import time
            stamp = time.time()
            """,
        )
        assert rule_ids(findings) == ["D104"]

    def test_datetime_now_flagged_through_from_import(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from datetime import datetime
            started = datetime.now()
            """,
        )
        assert rule_ids(findings) == ["D104"]

    def test_perf_counter_not_flagged(self, tmp_path):
        # Elapsed-time measurement is fine; only absolute wall time leaks.
        findings = lint_source(
            tmp_path,
            """
            import time
            t0 = time.perf_counter()
            elapsed = time.perf_counter() - t0
            """,
        )
        assert findings == []


# ---------------------------------------------------------------------------
# D105 - unsorted directory listings
# ---------------------------------------------------------------------------
class TestUnsortedListing:
    def test_os_listdir_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import os
            for name in os.listdir("."):
                print(name)
            """,
        )
        assert rule_ids(findings) == ["D105"]

    def test_path_glob_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def shard_files(directory):
                return [p for p in directory.glob("shard-*.pickle")]
            """,
        )
        assert rule_ids(findings) == ["D105"]

    def test_sorted_glob_not_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import glob
            paths = sorted(glob.glob("*.json"))

            def shard_files(directory):
                return sorted(directory.glob("shard-*.pickle"))
            """,
        )
        assert findings == []


# ---------------------------------------------------------------------------
# D106 - completion-order multiprocessing collection
# ---------------------------------------------------------------------------
class TestUnorderedPool:
    def test_imap_unordered_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def run(pool, work):
                return [r for r in pool.imap_unordered(str, work)]
            """,
        )
        assert rule_ids(findings) == ["D106"]

    def test_as_completed_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from concurrent.futures import as_completed

            def collect(futures):
                return [f.result() for f in as_completed(futures)]
            """,
        )
        assert rule_ids(findings) == ["D106"]

    def test_submission_order_imap_not_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def run(pool, work):
                return list(pool.imap(str, work))
            """,
        )
        assert findings == []


# ---------------------------------------------------------------------------
# D107 - arbitrary set element
# ---------------------------------------------------------------------------
class TestArbitrarySetElement:
    def test_next_iter_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            unknown = {"a", "b"}
            first = next(iter(unknown))
            """,
        )
        assert rule_ids(findings) == ["D107"]

    def test_set_pop_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            work = {"a", "b"}
            item = work.pop()
            """,
        )
        assert rule_ids(findings) == ["D107"]

    def test_min_with_key_not_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            unknown = {"a", "b"}
            first = min(unknown, key=lambda v: (type(v).__name__, repr(v)))
            """,
        )
        assert findings == []

    def test_next_iter_of_list_not_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            items = [1, 2, 3]
            first = next(iter(items))
            """,
        )
        assert findings == []


# ---------------------------------------------------------------------------
# D108 - set rendered into output
# ---------------------------------------------------------------------------
class TestSetInOutput:
    def test_fstring_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            missing = {"a", "b"}
            message = f"missing vertices: {missing!r}"
            """,
        )
        assert rule_ids(findings) == ["D108"]

    def test_join_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            labels = {"a", "b"}
            text = ", ".join(labels)
            """,
        )
        assert rule_ids(findings) == ["D108"]

    def test_sorted_render_not_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            missing = {"a", "b"}
            message = f"missing vertices: {sorted(missing)}"
            text = ", ".join(sorted(missing))
            """,
        )
        assert findings == []


# ---------------------------------------------------------------------------
# C201 - observe_batch fallback guard
# ---------------------------------------------------------------------------
class TestMechanismBatchGuard:
    def test_hoisted_batch_without_guard_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from repro.online.base import OnlineMechanism

            class FastMechanism(OnlineMechanism):
                def observe_batch(self, pairs):
                    return [self._quick(t, o) for t, o in pairs]
            """,
        )
        assert rule_ids(findings) == ["C201"]

    def test_guarded_batch_not_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from repro.online.base import OnlineMechanism

            class FastMechanism(OnlineMechanism):
                def observe_batch(self, pairs):
                    cls = type(self)
                    if cls._choose is not FastMechanism._choose:
                        return super().observe_batch(pairs)
                    return [self._quick(t, o) for t, o in pairs]
            """,
        )
        assert findings == []

    def test_non_mechanism_class_not_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            class Collector:
                def observe_batch(self, pairs):
                    return [len(pairs)]
            """,
        )
        assert findings == []


# ---------------------------------------------------------------------------
# C202 - kernel backend bit-identity surface
# ---------------------------------------------------------------------------
class TestKernelSurface:
    def test_partial_override_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from repro.core.kernel import KernelBackend

            class HalfBackend(KernelBackend):
                def advance_batch(self, kernel, pairs, fold):
                    return None
            """,
        )
        assert rule_ids(findings) == ["C202"]
        assert "timestamp_batch" in findings[0].message

    def test_full_override_not_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from repro.core.kernel import KernelBackend

            class FullBackend(KernelBackend):
                def advance_batch(self, kernel, pairs, fold):
                    return None

                def timestamp_batch(self, kernel, pairs):
                    return []
            """,
        )
        assert findings == []

    def test_no_surface_override_not_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from repro.core.kernel import PythonKernelBackend

            class NamedBackend(PythonKernelBackend):
                name = "named"
            """,
        )
        assert findings == []


# ---------------------------------------------------------------------------
# C203 - EngineConfig signature membership
# ---------------------------------------------------------------------------
class TestEngineConfigSignature:
    def test_undecided_field_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class EngineConfig:
                scenario: str
                new_knob: int = 0

                def signature(self):
                    return {"scenario": self.scenario}
            """,
        )
        assert rule_ids(findings) == ["C203"]
        assert "new_knob" in findings[0].message

    def test_declared_exclusion_not_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from dataclasses import dataclass

            NON_SIGNATURE_FIELDS = ("new_knob",)

            @dataclass(frozen=True)
            class EngineConfig:
                scenario: str
                new_knob: int = 0

                def signature(self):
                    return {"scenario": self.scenario}
            """,
        )
        assert findings == []

    def test_repo_engine_config_is_fully_decided(self):
        # The real EngineConfig is the rule's reason to exist: every field
        # must have a recorded membership decision.
        rules = [rule() for rule in ALL_RULES if rule.id == "C203"]
        path = REPO_ROOT / "src" / "repro" / "engine" / "runner.py"
        assert check_file(path, rules) == []

    def test_workers_is_a_declared_non_signature_field(self):
        # The worker-pool size is physical scheduling, never identity:
        # checkpoints written at one --workers count must resume at any
        # other (and under the jobs mode).  Pinning the membership here
        # keeps a future signature() edit from silently invalidating
        # every existing checkpoint directory.
        from repro.engine.runner import NON_SIGNATURE_FIELDS, EngineConfig

        assert "workers" in NON_SIGNATURE_FIELDS
        assert "workers" not in EngineConfig(scenario="thread-churn").signature()


# ---------------------------------------------------------------------------
# C204 - scenario factories must consume their seed
# ---------------------------------------------------------------------------
class TestScenarioSeed:
    def test_unused_seed_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from repro.computation.registry import register_scenario

            @register_scenario("fixed", kind="trace")
            def fixed_scenario(seed=None):
                return build_constant_trace()
            """,
        )
        assert rule_ids(findings) == ["C204"]

    def test_threaded_seed_not_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            from repro.computation.registry import register_scenario
            from repro.seeds import derive_seed

            @register_scenario("seeded", kind="trace")
            def seeded_scenario(seed=None):
                return build_trace(derive_seed(seed or 0, "seeded"))
            """,
        )
        assert findings == []

    def test_undecorated_function_not_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def helper(seed=None):
                return 42
            """,
        )
        assert findings == []


# ---------------------------------------------------------------------------
# C205 - ClockKernel mutations must keep the resident cache coherent
# ---------------------------------------------------------------------------
class TestKernelCacheInvalidation:
    def test_unhooked_mutation_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            class ClockKernel:
                def forget(self, thread):
                    self._thread_stamps.pop(thread, None)
            """,
        )
        assert rule_ids(findings) == ["C205"]
        assert "forget" in findings[0].message

    def test_subscript_store_without_hook_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            class ClockKernel:
                def stash(self, thread, stamp):
                    self._thread_stamps[thread] = stamp
            """,
        )
        assert rule_ids(findings) == ["C205"]

    def test_layout_rebind_without_hook_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            class ClockKernel:
                def rebind(self, components):
                    self._components = components
            """,
        )
        assert rule_ids(findings) == ["C205"]

    def test_mutating_delegate_without_hook_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            class ClockKernel:
                def shuffle(self, components):
                    self._rebase_stamps(components)
            """,
        )
        assert rule_ids(findings) == ["C205"]

    def test_invalidate_call_satisfies(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            class ClockKernel:
                def forget_all(self):
                    self._thread_stamps.clear()
                    self._invalidate_cache()
            """,
        )
        assert findings == []

    def test_targeted_evict_satisfies(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            class ClockKernel:
                def touch(self, thread, obj, stamp):
                    self._cache_evict(thread, obj)
                    self._thread_stamps[thread] = stamp
            """,
        )
        assert findings == []

    def test_cache_assignment_satisfies(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            class ClockKernel:
                def restore(self, state):
                    self._thread_stamps = state
                    self._cache = None
            """,
        )
        assert findings == []

    def test_declared_exemption_satisfies(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            CACHE_SAFE_METHODS = ("append_only_grow",)

            class ClockKernel:
                def append_only_grow(self, components):
                    self._bind_components(components)
            """,
        )
        assert findings == []

    def test_read_only_method_not_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            class ClockKernel:
                def thread_stamp(self, thread):
                    return self._thread_stamps.get(thread, self._zero)
            """,
        )
        assert findings == []

    def test_other_class_not_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            class Ledger:
                def forget(self, thread):
                    self._thread_stamps.pop(thread, None)
            """,
        )
        assert findings == []

    def test_repo_clock_kernel_is_cache_coherent(self):
        # The real kernel is the rule's reason to exist: every mutating
        # method must already carry its coherence action or exemption.
        rules = [rule() for rule in ALL_RULES if rule.id == "C205"]
        path = REPO_ROOT / "src" / "repro" / "core" / "kernel.py"
        assert check_file(path, rules) == []


def lint_at(tmp_path, monkeypatch, relpath, source, select=None):
    """Lint one snippet *at a given repo-relative path* (for path-scoped
    rules: C206's result-path prefixes, the D104 obs carve-out)."""
    monkeypatch.chdir(tmp_path)
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    rules = [rule() for rule in ALL_RULES if select is None or rule.id in select]
    return check_file(Path(relpath), rules)


# ---------------------------------------------------------------------------
# C206 - telemetry reads stay out of result paths
# ---------------------------------------------------------------------------
class TestTelemetryReadInResultPath:
    def test_exporter_import_in_result_path_flagged(self, tmp_path, monkeypatch):
        findings = lint_at(
            tmp_path,
            monkeypatch,
            "src/repro/core/fastpath.py",
            """
            from repro.obs import exporters

            def report(registry):
                return exporters.metrics_document(registry)
            """,
        )
        assert rule_ids(findings) == ["C206"]
        assert "exporters" in findings[0].message

    def test_registry_read_in_result_path_flagged(self, tmp_path, monkeypatch):
        findings = lint_at(
            tmp_path,
            monkeypatch,
            "src/repro/engine/scheduler.py",
            """
            from repro.obs.registry import active

            def should_rechunk():
                registry = active()
                return registry.counter_value("engine.chunks") > 100
            """,
        )
        assert rule_ids(findings) == ["C206"]
        assert "counter_value" in findings[0].message

    def test_telemetry_writes_in_result_path_allowed(self, tmp_path, monkeypatch):
        findings = lint_at(
            tmp_path,
            monkeypatch,
            "src/repro/engine/scheduler.py",
            """
            from repro.obs.registry import active

            def run_chunk(registry=None):
                registry = active()
                if registry is not None:
                    registry.add("engine.chunks")
                    registry.observe("engine.chunk_s", 0.5)
                    with registry.span("engine.chunk"):
                        pass
            """,
        )
        assert findings == []

    def test_read_method_names_without_obs_import_not_flagged(
        self, tmp_path, monkeypatch
    ):
        # .percentile() on a QuantileSketch (analysis/metrics.py shape):
        # the module never imports repro.obs, so the name match must not
        # fire on unrelated objects.
        findings = lint_at(
            tmp_path,
            monkeypatch,
            "src/repro/analysis/summaries.py",
            """
            def summarise(sketch):
                return sketch.percentile(50.0), sketch.snapshot()
            """,
        )
        assert findings == []

    def test_bridge_module_exempt(self, tmp_path, monkeypatch):
        findings = lint_at(
            tmp_path,
            monkeypatch,
            "src/repro/engine/telemetry.py",
            """
            from repro.obs.registry import MetricsRegistry

            def capture(registry):
                return registry.snapshot()

            def absorb(registry, snapshots):
                for snapshot in snapshots:
                    registry.merge_snapshot(snapshot)
            """,
        )
        assert findings == []

    def test_cli_layer_reads_freely(self, tmp_path, monkeypatch):
        findings = lint_at(
            tmp_path,
            monkeypatch,
            "src/repro/cli.py",
            """
            from repro.obs import MetricsRegistry
            from repro.obs import exporters

            def show(registry):
                print(exporters.format_summary(registry))
                return registry.counter_value("engine.chunks")
            """,
        )
        assert findings == []

    def test_repo_result_paths_are_write_only(self):
        rules = [rule() for rule in ALL_RULES if rule.id == "C206"]
        from repro.lint import run_lint as _run_lint
        import os

        cwd = os.getcwd()
        os.chdir(REPO_ROOT)
        try:
            findings = _run_lint(["src"], rules)
        finally:
            os.chdir(cwd)
        assert findings == []


# ---------------------------------------------------------------------------
# D104 path policy - the obs subtree owns its wall-clock anchor
# ---------------------------------------------------------------------------
class TestWallClockPathPolicy:
    def test_wall_clock_in_obs_subtree_exempt(self, tmp_path, monkeypatch):
        findings = lint_at(
            tmp_path,
            monkeypatch,
            "src/repro/obs/registry.py",
            """
            import time

            def anchor():
                return time.time()
            """,
            select={"D104"},
        )
        assert findings == []

    def test_wall_clock_elsewhere_still_flagged(self, tmp_path, monkeypatch):
        findings = lint_at(
            tmp_path,
            monkeypatch,
            "src/repro/engine/runner.py",
            """
            import time

            def stamp():
                return time.time()
            """,
            select={"D104"},
        )
        assert rule_ids(findings) == ["D104"]


# ---------------------------------------------------------------------------
# noqa suppression
# ---------------------------------------------------------------------------
class TestNoqa:
    def test_targeted_noqa_suppresses_named_rule(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import time
            stamp = time.time()  # repro: noqa[D104] wall time is the feature here
            """,
        )
        assert findings == []

    def test_targeted_noqa_leaves_other_rules_active(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import time
            stamp = hash(time.time())  # repro: noqa[D104] wall time is fine
            """,
        )
        assert rule_ids(findings) == ["D102"]

    def test_blanket_noqa_suppresses_everything_on_the_line(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import time
            stamp = hash(time.time())  # repro: noqa
            """,
        )
        assert findings == []

    def test_noqa_on_other_line_does_not_leak(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import time
            ok = 1  # repro: noqa[D104]
            stamp = time.time()
            """,
        )
        assert rule_ids(findings) == ["D104"]


# ---------------------------------------------------------------------------
# Baseline machinery
# ---------------------------------------------------------------------------
class TestBaseline:
    def _finding(self, message="m", path="pkg/mod.py", rule="D101", line=3):
        return Finding(path=path, line=line, col=0, rule=rule, message=message)

    def test_round_trip_and_matching(self, tmp_path):
        findings = [self._finding(), self._finding(line=9)]
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(render_baseline(findings), encoding="utf-8")
        entries = load_baseline(baseline_path)
        assert len(entries) == 1 and entries[0].count == 2
        active, suppressed, stale = apply_baseline(findings, entries)
        assert active == [] and len(suppressed) == 2 and stale == []

    def test_line_shift_still_matches(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(
            render_baseline([self._finding(line=3)]), encoding="utf-8"
        )
        entries = load_baseline(baseline_path)
        active, suppressed, _ = apply_baseline([self._finding(line=77)], entries)
        assert active == [] and len(suppressed) == 1

    def test_extra_occurrence_beyond_count_is_active(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(
            render_baseline([self._finding()]), encoding="utf-8"
        )
        entries = load_baseline(baseline_path)
        active, suppressed, _ = apply_baseline(
            [self._finding(line=3), self._finding(line=9)], entries
        )
        assert len(active) == 1 and len(suppressed) == 1

    def test_stale_entry_reported(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(
            render_baseline([self._finding(message="gone")]), encoding="utf-8"
        )
        entries = load_baseline(baseline_path)
        active, suppressed, stale = apply_baseline([], entries)
        assert active == [] and suppressed == [] and len(stale) == 1

    def test_malformed_baseline_raises(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text("[]", encoding="utf-8")
        with pytest.raises(LintError):
            load_baseline(baseline_path)


# ---------------------------------------------------------------------------
# CLI behaviour
# ---------------------------------------------------------------------------
class TestCli:
    def _write_dirty(self, tmp_path):
        path = tmp_path / "dirty.py"
        path.write_text(
            "import time\nstamp = time.time()\nkey = hash('x')\n",
            encoding="utf-8",
        )
        return path

    def test_exit_one_on_findings_and_zero_when_clean(self, tmp_path, capsys):
        dirty = self._write_dirty(tmp_path)
        assert main(["lint", "--no-baseline", str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "D104" in out and "D102" in out
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        assert main(["lint", "--no-baseline", str(clean)]) == 0

    def test_select_and_ignore(self, tmp_path, capsys):
        dirty = self._write_dirty(tmp_path)
        assert main(["lint", "--no-baseline", "--select", "D102", str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "D102" in out and "D104" not in out
        assert (
            main(
                ["lint", "--no-baseline", "--ignore", "D102,wall-clock", str(dirty)]
            )
            == 0
        )

    def test_unknown_rule_is_usage_error(self, tmp_path):
        dirty = self._write_dirty(tmp_path)
        assert main(["lint", "--select", "D999", str(dirty)]) == 2

    def test_json_format(self, tmp_path, capsys):
        dirty = self._write_dirty(tmp_path)
        assert main(["lint", "--no-baseline", "--format", "json", str(dirty)]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["counts"]["active"] == 2
        rules = {finding["rule"] for finding in document["findings"]}
        assert rules == {"D102", "D104"}

    def test_explain_and_list_rules(self, capsys):
        assert main(["lint", "--explain", "D101"]) == 0
        assert "PYTHONHASHSEED" in capsys.readouterr().out
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.id in out

    def test_write_baseline_then_clean(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        self._write_dirty(tmp_path)
        assert main(["lint", "--write-baseline", "dirty.py"]) == 0
        assert Path(DEFAULT_BASELINE).is_file()
        capsys.readouterr()
        # The default baseline is picked up automatically; run is clean.
        assert main(["lint", "dirty.py"]) == 0
        assert "baselined" in capsys.readouterr().out

    def test_changed_scopes_to_git_diff(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        env = {"GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
               "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t"}
        subprocess.run(["git", "init", "-q"], check=True)
        committed = tmp_path / "committed.py"
        committed.write_text("import time\nstamp = time.time()\n", encoding="utf-8")
        subprocess.run(["git", "add", "committed.py"], check=True)
        subprocess.run(
            ["git", "-c", "user.name=t", "-c", "user.email=t@t",
             "commit", "-q", "-m", "seed"],
            check=True, env={**__import__("os").environ, **env},
        )
        # Nothing changed: the dirty committed file is out of scope.
        assert main(["lint", "--changed", "--no-baseline"]) == 0
        assert "no changed python files" in capsys.readouterr().out
        untracked = tmp_path / "fresh.py"
        untracked.write_text("key = hash('x')\n", encoding="utf-8")
        assert main(["lint", "--changed", "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "fresh.py" in out and "committed.py" not in out

    def test_nonexistent_path_is_usage_error(self):
        assert main(["lint", "no/such/dir"]) == 2


# ---------------------------------------------------------------------------
# Self-application: the repository must satisfy its own contracts
# ---------------------------------------------------------------------------
class TestSelfApplication:
    def test_repo_lints_clean_against_committed_baseline(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "src", "benchmarks", "tests"]) == 0

    def test_src_is_clean_without_any_baseline(self, monkeypatch):
        # The baseline only covers tests/: the library itself has zero
        # accepted findings, so src must pass with the baseline disabled.
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "--no-baseline", "src", "benchmarks"]) == 0

    def test_every_rule_has_docs(self):
        for rule in ALL_RULES:
            assert rule.id and rule.name and rule.summary
            explanation = rule.explain()
            assert len(explanation.splitlines()) > 2, rule.id
