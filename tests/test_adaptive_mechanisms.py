"""Window-aware adaptive mechanisms and the lifecycle protocol.

Four concerns:

* the lifecycle shim: append-only mechanisms behave bit-identically
  whether or not expires and epoch ticks are delivered (regression for
  the observe-only era);
* unit behaviour of the two adaptive mechanisms (retirement on endpoint
  death, epoch rebuild to the live König cover);
* the headline hypothesis property: driving a lifecycle mechanism
  through :class:`~repro.online.adaptive.LifecycleClockDriver` preserves
  every happened-before / concurrent verdict among live-window event
  pairs across retirements and epoch rotations, judged against the
  full-history thread-clock oracle (plus the driver's own per-rotation
  re-timestamping invariant check);
* the acceptance numbers: on the thread-churn stream each adaptive
  mechanism's steady-state competitive ratio is strictly better than its
  append-only counterpart's, and its live clock size is bounded (shrinks
  again) instead of growing monotonically.
"""

from __future__ import annotations

from collections import deque

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.experiments import EXTENDED_MECHANISMS
from repro.analysis.metrics import competitive_ratio_trajectory
from repro.computation import REGISTRY, STREAM
from repro.computation.streams import (
    epoch_marker,
    phase_change_stream,
    sliding_window,
    thread_churn_stream,
    with_epochs,
)
from repro.core import ClockComponents, VectorClockProtocol
from repro.core.clock import ordering
from repro.exceptions import OnlineMechanismError
from repro.online import (
    EpochRotatingHybridMechanism,
    HybridMechanism,
    LifecycleClockDriver,
    NaiveMechanism,
    PopularityMechanism,
    RandomMechanism,
    WindowedPopularityMechanism,
    compare_mechanisms_on_stream,
    run_mechanism,
    seed_mechanism_factories,
)
from repro.seeds import derive_seed


# ---------------------------------------------------------------------------
# The lifecycle shim: append-only mechanisms are unchanged
# ---------------------------------------------------------------------------
class TestAppendOnlyShim:
    APPEND_ONLY = {
        "naive": lambda: NaiveMechanism(),
        "random": lambda: RandomMechanism(seed=11),
        "popularity": lambda: PopularityMechanism(),
        "hybrid": lambda: HybridMechanism(),
    }

    def test_lifecycle_delivery_changes_nothing(self):
        """Expire + epoch ticks through the shims == plain insert replay."""
        stream = list(thread_churn_stream(12, 12, 0.3, 400, seed=5))
        lifecycle = compare_mechanisms_on_stream(
            iter(stream), dict(self.APPEND_ONLY), include_offline=False, epoch=40
        )
        inserts = [event.pair for event in stream if event.is_insert]
        for label, factory in self.APPEND_ONLY.items():
            plain = run_mechanism(factory(), inserts)
            assert lifecycle[label].size_trajectory == plain.size_trajectory
            assert lifecycle[label].final_size == plain.final_size
            assert lifecycle[label].retired_components == 0
            assert lifecycle[label].expires_seen > 0
            assert lifecycle[label].epochs == 10

    def test_expire_and_epoch_are_counted_noops(self):
        mechanism = NaiveMechanism()
        mechanism.observe("T1", "O1")
        mechanism.expire("T1", "O1")
        assert mechanism.end_epoch() == ()
        assert mechanism.clock_size == 1
        assert mechanism.expires_seen == 1
        assert mechanism.epoch == 1
        summary = mechanism.summary()
        assert summary["retired_components"] == 0
        assert summary["peak_size"] == 1


# ---------------------------------------------------------------------------
# WindowedPopularityMechanism
# ---------------------------------------------------------------------------
class TestWindowedPopularity:
    def test_retires_component_when_last_covered_event_expires(self):
        mechanism = WindowedPopularityMechanism()
        mechanism.observe("T1", "O1")  # adds T1 (tie -> thread)
        mechanism.observe("T1", "O2")  # covered
        assert mechanism.clock_size == 1
        mechanism.expire("T1", "O1")
        assert mechanism.clock_size == 1  # (T1, O2) still live
        mechanism.expire("T1", "O2")
        assert mechanism.clock_size == 0
        assert mechanism.retired_total == 1
        assert mechanism.retirements[0].component == "T1"
        assert mechanism.peak_size == 1

    def test_live_event_blocks_retirement_of_both_endpoints(self):
        mechanism = WindowedPopularityMechanism()
        mechanism.observe("T1", "O1")  # adds T1
        mechanism.observe("T2", "O1")  # O1 degree 2 -> adds O1
        mechanism.expire("T1", "O1")
        # (T2, O1) is live: O1 must survive; T1 covers nothing live.
        assert mechanism.thread_components == frozenset()
        assert mechanism.object_components == frozenset({"O1"})

    def test_retired_vertex_can_be_readopted(self):
        mechanism = WindowedPopularityMechanism()
        mechanism.observe("T1", "O1")
        mechanism.expire("T1", "O1")
        assert mechanism.clock_size == 0
        assert mechanism.observe("T1", "O9") == "T1"
        assert mechanism.clock_size == 1

    def test_lazy_mode_retires_only_at_epoch_boundaries(self):
        mechanism = WindowedPopularityMechanism(eager=False)
        mechanism.observe("T1", "O1")
        mechanism.expire("T1", "O1")
        assert mechanism.clock_size == 1  # dead but not yet reclaimed
        retired = mechanism.end_epoch()
        assert retired == ("T1",)
        assert mechanism.clock_size == 0

    def test_over_expiry_is_rejected(self):
        mechanism = WindowedPopularityMechanism()
        mechanism.observe("T1", "O1")
        mechanism.expire("T1", "O1")
        with pytest.raises(OnlineMechanismError):
            mechanism.expire("T1", "O1")


# ---------------------------------------------------------------------------
# EpochRotatingHybridMechanism
# ---------------------------------------------------------------------------
class TestEpochRotatingHybrid:
    def test_rebuild_shrinks_to_live_konig_cover(self):
        mechanism = EpochRotatingHybridMechanism()
        # A star through O1 plus a stray pair; expire the stray.
        for thread in ("T1", "T2", "T3"):
            mechanism.observe(thread, "O1")
        mechanism.observe("T9", "O9")
        mechanism.expire("T9", "O9")
        before = mechanism.clock_size
        mechanism.end_epoch()
        # The live graph is the O1 star: its minimum cover is {O1}.
        assert mechanism.clock_size == 1
        assert mechanism.clock_size == mechanism.live_optimum
        assert mechanism.object_components == frozenset({"O1"})
        assert mechanism.retired_total >= before - 1
        assert mechanism.epoch == 1

    def test_rebuild_covers_every_live_edge(self):
        mechanism = EpochRotatingHybridMechanism()
        events = [("T1", "O1"), ("T2", "O2"), ("T1", "O2"), ("T3", "O3")]
        for thread, obj in events:
            mechanism.observe(thread, obj)
        mechanism.end_epoch()
        for thread, obj in events:
            assert mechanism.covers(thread, obj)

    def test_switch_resets_at_epoch_boundary(self):
        mechanism = EpochRotatingHybridMechanism(node_threshold=3, warmup_edges=999)
        mechanism.observe("T1", "O1")
        mechanism.observe("T2", "O2")  # 4 live vertices > 3 -> switch
        assert mechanism.switched_at is not None
        mechanism.expire("T1", "O1")
        mechanism.end_epoch()
        assert mechanism.switched_at is None


# ---------------------------------------------------------------------------
# Verdict preservation under the lifecycle (the tentpole property)
# ---------------------------------------------------------------------------
def _full_history_oracle(pairs):
    """Per-event timestamps from the all-threads clock (exact, Theorem 2)."""
    threads = sorted({thread for thread, _ in pairs})
    protocol = VectorClockProtocol(ClockComponents.all_threads(threads))
    return [protocol.observe(thread, obj) for thread, obj in pairs]


MECHANISM_FACTORIES = {
    "adaptive-popularity-eager": lambda: WindowedPopularityMechanism(),
    "adaptive-popularity-lazy": lambda: WindowedPopularityMechanism(eager=False),
    "epoch-hybrid": lambda: EpochRotatingHybridMechanism(),
}


class TestVerdictPreservation:
    @settings(max_examples=40, deadline=None)
    @given(
        choices=st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 4)),
            min_size=1,
            max_size=50,
        ),
        window=st.integers(2, 10),
        epoch_every=st.integers(2, 12),
        mechanism_key=st.sampled_from(sorted(MECHANISM_FACTORIES)),
    )
    def test_live_pair_verdicts_survive_retirement_and_rotation(
        self, choices, window, epoch_every, mechanism_key
    ):
        """Adaptive timestamps agree with full history on every live pair.

        The driver runs with ``check_invariant=True``, so every rotation
        additionally self-checks that the replay preserved the verdicts
        it saw before rotating; this test closes the loop against an
        *independent* oracle that never expires anything.
        """
        pairs = [(f"T{t}", f"O{o}") for t, o in choices]
        oracle = _full_history_oracle(pairs)
        driver = LifecycleClockDriver(
            MECHANISM_FACTORIES[mechanism_key](), check_invariant=True
        )
        live: deque = deque()  # (insert index, token)
        for index, (thread, obj) in enumerate(pairs):
            token = driver.observe(thread, obj)
            live.append((index, token))
            if len(live) > window:
                old_index, _ = live.popleft()
                driver.expire(*pairs[old_index])
            if (index + 1) % epoch_every == 0:
                driver.end_epoch()
            records = list(live)
            for a in range(len(records)):
                for b in range(a + 1, len(records)):
                    index_a, token_a = records[a]
                    index_b, token_b = records[b]
                    expected = ordering(oracle[index_a], oracle[index_b])
                    assert driver.relation(token_a, token_b) == expected


# ---------------------------------------------------------------------------
# Epoch markers in streams and the simulator
# ---------------------------------------------------------------------------
class TestEpochMarkers:
    def test_phase_change_emits_markers_at_phase_boundaries(self):
        events = list(phase_change_stream(6, 6, 0.3, 40, seed=1, phases=4))
        markers = [event for event in events if event.is_epoch]
        inserts = [event for event in events if event.is_insert]
        assert len(inserts) == 40
        assert len(markers) == 3  # one per interior boundary
        assert REGISTRY.get("phase-change", kind=STREAM).epochs

    def test_with_epochs_counts_inserts_only(self):
        stream = list(thread_churn_stream(8, 8, 0.4, 30, seed=3))
        wrapped = list(with_epochs(iter(stream), 10))
        inserts_seen = 0
        for event in wrapped:
            if event.is_insert:
                inserts_seen += 1
            if event.is_epoch:
                assert inserts_seen % 10 == 0
        assert sum(1 for event in wrapped if event.is_epoch) == 3

    def test_sliding_window_passes_markers_through(self):
        events = [("T1", "O1"), epoch_marker(), ("T1", "O2"), ("T2", "O3")]
        windowed = list(sliding_window(iter(events), window=2))
        assert sum(1 for event in windowed if event.is_epoch) == 1
        # The marker occupies no window slot: both early inserts stay live
        # until the third insert arrives.
        expires = [event for event in windowed if event.is_expire]
        assert [event.pair for event in expires] == [("T1", "O1")]

    def test_epoch_marker_carries_no_pair(self):
        with pytest.raises(Exception):
            epoch_marker().pair

    def test_simulator_counts_marker_and_counter_epochs(self):
        factories = {"adaptive": lambda: WindowedPopularityMechanism()}
        events = list(phase_change_stream(6, 6, 0.3, 40, seed=2, phases=4))
        results = compare_mechanisms_on_stream(
            iter(events), factories, include_offline=True, epoch=10
        )
        # 3 stream markers + 4 counter ticks (40 inserts / 10).
        assert results["offline"].epochs == 7
        assert results["adaptive"].epochs == 7


# ---------------------------------------------------------------------------
# Acceptance: adaptive beats append-only at steady state on thread churn
# ---------------------------------------------------------------------------
class TestThreadChurnAcceptance:
    TAIL = 300

    @pytest.fixture(scope="class")
    def churn_results(self):
        scenario = REGISTRY.get("thread-churn", kind=STREAM)
        root = derive_seed(424242, "adaptive-acceptance")
        events = scenario.build(
            30, 30, 0.2, 3000, seed=derive_seed(root, "stream")
        )
        labels = ("popularity", "adaptive-popularity", "hybrid", "epoch-hybrid")
        factories = seed_mechanism_factories(
            {label: EXTENDED_MECHANISMS[label] for label in labels},
            derive_seed(root, "mechanisms"),
        )
        return compare_mechanisms_on_stream(
            events, factories, include_offline=True, epoch=150
        )

    def _steady_mean(self, results, label):
        ratios = competitive_ratio_trajectory(
            results[label].size_trajectory, results["offline"].size_trajectory
        )
        tail = ratios[-self.TAIL:]
        return sum(tail) / len(tail)

    @pytest.mark.parametrize(
        "adaptive,append_only",
        [("adaptive-popularity", "popularity"), ("epoch-hybrid", "hybrid")],
    )
    def test_steady_state_ratio_strictly_better(
        self, churn_results, adaptive, append_only
    ):
        assert self._steady_mean(churn_results, adaptive) < self._steady_mean(
            churn_results, append_only
        )

    @pytest.mark.parametrize("label", ["adaptive-popularity", "epoch-hybrid"])
    def test_live_clock_stays_bounded(self, churn_results, label):
        result = churn_results[label]
        trajectory = result.size_trajectory
        assert result.retired_components > 0
        # Not monotone: the clock genuinely shrinks somewhere.
        assert any(b < a for a, b in zip(trajectory, trajectory[1:]))
        # The steady-state tail never exceeds the burn-in peak: growth is
        # bounded by the live window, not by stream length.
        assert max(trajectory[-self.TAIL:]) <= result.peak_size
        assert trajectory[-1] < result.peak_size

    @pytest.mark.parametrize(
        "adaptive,append_only",
        [("adaptive-popularity", "popularity"), ("epoch-hybrid", "hybrid")],
    )
    def test_adaptive_tail_sizes_below_append_only(
        self, churn_results, adaptive, append_only
    ):
        adaptive_tail = churn_results[adaptive].size_trajectory[-self.TAIL:]
        append_tail = churn_results[append_only].size_trajectory[-self.TAIL:]
        assert max(adaptive_tail) < min(append_tail)

    @pytest.mark.parametrize("label", ["popularity", "hybrid"])
    def test_append_only_counterparts_grow_monotonically(
        self, churn_results, label
    ):
        trajectory = churn_results[label].size_trajectory
        assert all(b >= a for a, b in zip(trajectory, trajectory[1:]))
        assert churn_results[label].retired_components == 0
