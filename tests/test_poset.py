"""Unit tests for the happened-before oracle."""

from __future__ import annotations

import pytest

from repro.computation import Computation, HappenedBefore
from repro.exceptions import ComputationError
from tests.conftest import random_pairs


class TestHappenedBeforeBasics:
    def test_program_order_is_happened_before(self, small_computation):
        hb = HappenedBefore(small_computation)
        events = small_computation.events
        # (A,x)@0 -> (A,shared)@2 -> (A,x)@3 within thread A.
        assert hb.happened_before(events[0], events[2])
        assert hb.happened_before(events[2], events[3])
        assert hb.happened_before(events[0], events[3])  # transitive

    def test_object_order_is_happened_before(self, small_computation):
        hb = HappenedBefore(small_computation)
        events = small_computation.events
        # (B,shared)@1 -> (A,shared)@2 via object 'shared'.
        assert hb.happened_before(events[1], events[2])
        # and transitively to (A,x)@3.
        assert hb.happened_before(events[1], events[3])

    def test_concurrency(self, small_computation):
        hb = HappenedBefore(small_computation)
        events = small_computation.events
        # (A,x)@0 and (B,shared)@1 share neither thread nor object history.
        assert hb.concurrent(events[0], events[1])
        assert not hb.happened_before(events[0], events[1])
        assert not hb.happened_before(events[1], events[0])
        # (B,y)@4 is after (B,shared)@1 but concurrent with A's later events.
        assert hb.happened_before(events[1], events[4])
        assert hb.concurrent(events[3], events[4])

    def test_irreflexive(self, small_computation):
        hb = HappenedBefore(small_computation)
        for event in small_computation:
            assert not hb.happened_before(event, event)
            assert not hb.concurrent(event, event)

    def test_causally_related(self, small_computation):
        hb = HappenedBefore(small_computation)
        events = small_computation.events
        assert hb.causally_related(events[0], events[3])
        assert hb.causally_related(events[3], events[0])
        assert not hb.causally_related(events[0], events[1])

    def test_foreign_event_rejected(self, small_computation):
        hb = HappenedBefore(small_computation)
        other = Computation.from_pairs([("Z", "q"), ("Z", "q"), ("Z", "q"),
                                        ("Z", "q"), ("Z", "q"), ("Z", "q")])
        with pytest.raises(ComputationError):
            hb.happened_before(other.events[5], small_computation.events[0])


class TestDerivedSets:
    def test_successors_and_predecessors_are_inverse(self, medium_random_computation):
        hb = HappenedBefore(medium_random_computation)
        events = medium_random_computation.events
        sample = events[:: max(1, len(events) // 15)]
        for event in sample:
            for successor in hb.successors(event):
                assert event in hb.predecessors(successor)

    def test_comparable_plus_concurrent_counts(self, small_computation):
        hb = HappenedBefore(small_computation)
        n = len(small_computation)
        comparable = sum(1 for _ in hb.comparable_pairs())
        concurrent = sum(1 for _ in hb.concurrent_pairs())
        assert comparable + concurrent == n * (n - 1) // 2

    def test_transitivity_on_random_computation(self, medium_random_computation):
        hb = HappenedBefore(medium_random_computation)
        events = medium_random_computation.events
        sample = events[:: max(1, len(events) // 12)]
        for a in sample:
            for b in sample:
                for c in sample:
                    if hb.happened_before(a, b) and hb.happened_before(b, c):
                        assert hb.happened_before(a, c)

    def test_interleaving_is_linear_extension(self, medium_random_computation):
        hb = HappenedBefore(medium_random_computation)
        assert hb.is_linear_extension(medium_random_computation.events)
        # Reversing a computation with at least one ordered pair is not one.
        assert not hb.is_linear_extension(tuple(reversed(medium_random_computation.events)))

    def test_is_linear_extension_requires_permutation(self, small_computation):
        hb = HappenedBefore(small_computation)
        assert not hb.is_linear_extension(small_computation.events[:-1])

    def test_width_lower_bound_positive(self, medium_random_computation):
        hb = HappenedBefore(medium_random_computation)
        width = hb.width_lower_bound()
        assert 1 <= width <= len(medium_random_computation)


class TestChainsAreTotallyOrdered:
    def test_single_thread_computation_is_a_chain(self):
        computation = Computation.from_pairs([("A", f"O{i % 3}") for i in range(10)])
        hb = HappenedBefore(computation)
        events = computation.events
        for i, a in enumerate(events):
            for b in events[i + 1 :]:
                assert hb.happened_before(a, b)

    def test_single_object_computation_is_a_chain(self):
        pairs = [(f"T{i % 4}", "x") for i in range(10)]
        computation = Computation.from_pairs(pairs)
        hb = HappenedBefore(computation)
        events = computation.events
        for i, a in enumerate(events):
            for b in events[i + 1 :]:
                assert hb.happened_before(a, b)

    def test_disjoint_threads_all_concurrent(self):
        computation = Computation.from_pairs([("A", "x"), ("B", "y"), ("C", "z")])
        hb = HappenedBefore(computation)
        events = computation.events
        assert hb.concurrent(events[0], events[1])
        assert hb.concurrent(events[1], events[2])
        assert hb.concurrent(events[0], events[2])

    def test_random_computation_consistency(self):
        computation = Computation.from_pairs(random_pairs(5, 5, 60, seed=9))
        hb = HappenedBefore(computation)
        events = computation.events
        # happened_before implies index order (the trace is a linear extension).
        for a in events:
            for b in events:
                if hb.happened_before(a, b):
                    assert a.index < b.index
