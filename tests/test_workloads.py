"""Unit tests for the workload / trace generators."""

from __future__ import annotations

import pytest

from repro.computation import (
    lock_hierarchy_trace,
    pipeline_trace,
    producer_consumer_trace,
    random_trace,
    trace_from_graph,
    work_stealing_trace,
)
from repro.exceptions import ComputationError
from repro.graph import uniform_bipartite


class TestTraceFromGraph:
    def test_graph_round_trip(self):
        graph = uniform_bipartite(8, 8, 0.3, seed=4)
        trace = trace_from_graph(graph, seed=1)
        regraph = trace.bipartite_graph()
        assert set(regraph.edges()) == set(graph.edges())

    def test_operations_per_edge(self):
        graph = uniform_bipartite(5, 5, 0.5, seed=2)
        trace = trace_from_graph(graph, operations_per_edge=3, seed=1)
        assert trace.num_events == 3 * graph.num_edges

    def test_determinism(self):
        graph = uniform_bipartite(6, 6, 0.4, seed=8)
        assert trace_from_graph(graph, seed=5) == trace_from_graph(graph, seed=5)

    def test_invalid_operations_per_edge(self):
        graph = uniform_bipartite(3, 3, 0.5, seed=1)
        with pytest.raises(ComputationError):
            trace_from_graph(graph, operations_per_edge=0)

    def test_unshuffled_order_follows_edge_listing(self):
        graph = uniform_bipartite(4, 4, 0.5, seed=3)
        trace = trace_from_graph(graph, shuffle=False)
        assert trace.num_events == graph.num_edges


class TestRandomTrace:
    def test_size_and_universe(self):
        trace = random_trace(5, 7, 100, seed=1)
        assert trace.num_events == 100
        assert trace.num_threads <= 5
        assert trace.num_objects <= 7

    def test_zero_events(self):
        trace = random_trace(3, 3, 0, seed=1)
        assert trace.num_events == 0

    def test_locality_reduces_distinct_pairs(self):
        spread = random_trace(10, 40, 300, locality=0.0, seed=6)
        local = random_trace(10, 40, 300, locality=0.95, seed=6)
        assert len(local.access_pairs()) < len(spread.access_pairs())

    def test_parameter_validation(self):
        with pytest.raises(ComputationError):
            random_trace(3, 3, -1)
        with pytest.raises(ComputationError):
            random_trace(3, 3, 10, locality=2.0)

    def test_determinism(self):
        assert random_trace(4, 4, 50, seed=3) == random_trace(4, 4, 50, seed=3)


class TestScenarioTraces:
    def test_producer_consumer_structure(self):
        trace = producer_consumer_trace(
            num_producers=3, num_consumers=2, num_queues=2, items_per_producer=5, seed=1
        )
        assert trace.num_threads == 5
        queues = [o for o in trace.objects if str(o).startswith("queue-")]
        assert len(queues) <= 2
        # Queues are shared across threads; private state objects are not.
        graph = trace.bipartite_graph()
        assert any(graph.degree(q) >= 2 for q in queues)
        for obj in trace.objects:
            if str(obj).startswith("state-"):
                assert graph.degree(obj) == 1

    def test_producer_consumer_preserves_program_order(self):
        # Each thread's item numbers must be non-decreasing in its own chain,
        # regardless of how the scheduler interleaved the threads.
        trace = producer_consumer_trace(num_producers=2, num_consumers=1, seed=2)
        for thread in trace.threads:
            item_numbers = [int(e.label.rsplit("-", 1)[1]) for e in trace.thread_events(thread)]
            assert item_numbers == sorted(item_numbers)

    def test_work_stealing_mostly_local(self):
        trace = work_stealing_trace(num_workers=6, tasks_per_worker=30,
                                    steal_probability=0.1, seed=3)
        graph = trace.bipartite_graph()
        local_edges = sum(
            1
            for worker_index in range(6)
            if graph.has_edge(f"worker-{worker_index}", f"deque-{worker_index}")
        )
        assert local_edges == 6
        assert trace.num_events == 6 * 30

    def test_lock_hierarchy_touches_locks_and_accounts(self):
        trace = lock_hierarchy_trace(num_threads=4, num_locks=2, num_accounts=6,
                                     transfers_per_thread=5, seed=4)
        locks = [o for o in trace.objects if str(o).startswith("lock-")]
        accounts = [o for o in trace.objects if str(o).startswith("account-")]
        assert 1 <= len(locks) <= 2
        assert len(accounts) >= 2
        assert trace.num_events == 4 * 5 * 4  # acquire, debit, credit, release

    def test_pipeline_stage_structure(self):
        trace = pipeline_trace(num_stages=3, workers_per_stage=2, items=12, seed=5)
        graph = trace.bipartite_graph()
        # A stage-1 worker touches buffers 1 and 2 only.
        neighbors = graph.thread_neighbors("stage1-worker0")
        assert neighbors == {"buffer-1", "buffer-2"}

    def test_scenarios_are_deterministic(self):
        assert producer_consumer_trace(seed=9) == producer_consumer_trace(seed=9)
        assert work_stealing_trace(seed=9) == work_stealing_trace(seed=9)
        assert lock_hierarchy_trace(seed=9) == lock_hierarchy_trace(seed=9)
        assert pipeline_trace(seed=9) == pipeline_trace(seed=9)
