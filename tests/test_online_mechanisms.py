"""Unit tests for the online mechanisms (Naive, Random, Popularity, Hybrid)."""

from __future__ import annotations

import pytest

from repro.exceptions import OnlineMechanismError
from repro.graph import paper_example_graph, star_bipartite, uniform_bipartite
from repro.offline import optimal_clock_size
from repro.online import (
    HybridMechanism,
    NaiveMechanism,
    PopularityMechanism,
    RandomMechanism,
)
from repro.online.base import OBJECT, THREAD


def feed(mechanism, pairs):
    for thread, obj in pairs:
        mechanism.observe(thread, obj)
    return mechanism


class TestBaseBehaviour:
    def test_components_cover_every_revealed_event(self):
        graph = uniform_bipartite(20, 20, 0.1, seed=3)
        for mechanism in (NaiveMechanism(), RandomMechanism(seed=1), PopularityMechanism(), HybridMechanism()):
            feed(mechanism, graph.edges())
            for thread, obj in graph.edges():
                assert mechanism.covers(thread, obj)
            components = mechanism.components()
            components.validate_covers_graph(mechanism.revealed_graph)

    def test_covered_event_does_not_grow_clock(self):
        mechanism = NaiveMechanism()
        assert mechanism.observe("T1", "O1") == "T1"
        assert mechanism.observe("T1", "O2") is None  # T1 already a component
        assert mechanism.clock_size == 1

    def test_repeated_event_does_not_grow_clock_or_graph(self):
        mechanism = PopularityMechanism()
        mechanism.observe("T1", "O1")
        edges_before = mechanism.revealed_graph.num_edges
        mechanism.observe("T1", "O1")
        assert mechanism.revealed_graph.num_edges == edges_before
        assert mechanism.clock_size == 1

    def test_decision_log(self):
        mechanism = NaiveMechanism()
        mechanism.observe("T1", "O1")
        mechanism.observe("T2", "O1")
        decisions = mechanism.decisions
        assert len(decisions) == 2
        assert decisions[0].component == "T1"
        assert decisions[0].event_index == 0
        assert decisions[1].thread == "T2"
        assert decisions[1].choice == THREAD

    def test_observe_all_and_summary(self):
        mechanism = NaiveMechanism()
        mechanism.observe_all([("T1", "O1"), ("T2", "O2")])
        summary = mechanism.summary()
        assert summary["mechanism"] == "naive-thread"
        assert summary["clock_size"] == 2
        assert summary["events_seen"] == 2
        assert summary["revealed_edges"] == 2

    def test_existing_components_are_never_removed(self):
        graph = uniform_bipartite(15, 15, 0.2, seed=5)
        mechanism = PopularityMechanism()
        seen = set()
        for thread, obj in graph.edges():
            mechanism.observe(thread, obj)
            current = set(mechanism.thread_components) | set(mechanism.object_components)
            assert seen <= current  # monotone growth
            seen = current

    def test_invalid_choice_rejected(self):
        class BrokenMechanism(NaiveMechanism):
            def _choose(self, thread, obj):
                return "coin"

        with pytest.raises(OnlineMechanismError):
            BrokenMechanism().observe("T1", "O1")


class TestNaive:
    def test_thread_side_counts_distinct_threads(self):
        graph = uniform_bipartite(10, 10, 0.3, seed=2)
        mechanism = feed(NaiveMechanism(side=THREAD), graph.edges())
        active_threads = {t for t, _ in graph.edges()}
        assert mechanism.clock_size == len(active_threads)
        assert mechanism.object_components == frozenset()

    def test_object_side_counts_distinct_objects(self):
        graph = uniform_bipartite(10, 10, 0.3, seed=2)
        mechanism = feed(NaiveMechanism(side=OBJECT), graph.edges())
        active_objects = {o for _, o in graph.edges()}
        assert mechanism.clock_size == len(active_objects)
        assert mechanism.thread_components == frozenset()

    def test_invalid_side(self):
        with pytest.raises(OnlineMechanismError):
            NaiveMechanism(side="both")

    def test_name_reflects_side(self):
        assert NaiveMechanism(side=THREAD).name == "naive-thread"
        assert NaiveMechanism(side=OBJECT).name == "naive-object"


class TestRandom:
    def test_deterministic_given_seed(self):
        graph = uniform_bipartite(20, 20, 0.1, seed=7)
        order = sorted(graph.edges())
        a = feed(RandomMechanism(seed=42), order)
        b = feed(RandomMechanism(seed=42), order)
        assert a.components() == b.components()

    def test_probability_extremes_degenerate_to_naive(self):
        graph = uniform_bipartite(10, 10, 0.3, seed=9)
        order = sorted(graph.edges())
        all_threads = feed(RandomMechanism(seed=1, thread_probability=1.0), order)
        assert all_threads.object_components == frozenset()
        all_objects = feed(RandomMechanism(seed=1, thread_probability=0.0), order)
        assert all_objects.thread_components == frozenset()

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            RandomMechanism(thread_probability=1.5)


class TestPopularity:
    def test_picks_more_popular_endpoint(self):
        mechanism = PopularityMechanism()
        # Build up O1's degree through covered events, then present an
        # uncovered event whose object is clearly more popular.
        mechanism.observe("T1", "O1")        # adds T1 (tie, degree 1 vs 1)
        mechanism.observe("T2", "O1")        # O1 now degree 2 > T2 degree 1 -> adds O1
        assert "O1" in mechanism.object_components
        # A fresh thread touching the popular object is already covered.
        assert mechanism.observe("T3", "O1") is None

    def test_tie_break_side(self):
        thread_tie = PopularityMechanism(tie_break=THREAD)
        thread_tie.observe("T1", "O1")
        assert "T1" in thread_tie.thread_components
        object_tie = PopularityMechanism(tie_break=OBJECT)
        object_tie.observe("T1", "O1")
        assert "O1" in object_tie.object_components

    def test_invalid_tie_break(self):
        with pytest.raises(OnlineMechanismError):
            PopularityMechanism(tie_break="coin")

    def test_star_graph_converges_to_single_hub(self):
        # All edges share the thread hub; popularity locks onto it quickly.
        graph = star_bipartite(1, 30)
        mechanism = feed(PopularityMechanism(), sorted(graph.edges()))
        assert mechanism.clock_size <= 2
        assert "T0" in mechanism.thread_components

    def test_paper_example_not_worse_than_naive(self):
        graph = paper_example_graph()
        order = sorted(graph.edges())
        popularity = feed(PopularityMechanism(), order)
        naive = feed(NaiveMechanism(), order)
        assert popularity.clock_size <= naive.clock_size
        assert popularity.clock_size >= optimal_clock_size(graph)


class TestHybrid:
    def test_switches_to_naive_when_density_exceeded(self):
        mechanism = HybridMechanism(
            density_threshold=0.0, node_threshold=10_000, warmup_edges=1
        )
        mechanism.observe("T1", "O1")
        assert mechanism.in_naive_phase
        assert mechanism.switched_at == 0
        mechanism.observe("T2", "O1")  # naive phase adds the thread
        assert "T2" in mechanism.thread_components

    def test_density_check_waits_for_warmup(self):
        mechanism = HybridMechanism(density_threshold=0.0, node_threshold=10_000,
                                    warmup_edges=3)
        mechanism.observe("T1", "O1")
        mechanism.observe("T2", "O2")
        assert not mechanism.in_naive_phase  # only 2 edges revealed so far
        mechanism.observe("T3", "O3")
        assert mechanism.in_naive_phase
        assert mechanism.warmup_edges == 3

    def test_switches_to_naive_when_node_count_exceeded(self):
        mechanism = HybridMechanism(density_threshold=10.0, node_threshold=3)
        mechanism.observe("T1", "O1")
        assert not mechanism.in_naive_phase
        mechanism.observe("T2", "O2")  # 4 vertices > 3 -> switch
        assert mechanism.in_naive_phase

    def test_behaves_like_popularity_before_switch(self):
        graph = uniform_bipartite(12, 12, 0.1, seed=6)
        order = sorted(graph.edges())
        hybrid = feed(HybridMechanism(density_threshold=10.0, node_threshold=10_000), order)
        popularity = feed(PopularityMechanism(), order)
        assert hybrid.components() == popularity.components()
        assert not hybrid.in_naive_phase

    def test_parameter_validation(self):
        with pytest.raises(OnlineMechanismError):
            HybridMechanism(density_threshold=-1)
        with pytest.raises(OnlineMechanismError):
            HybridMechanism(node_threshold=-1)
        with pytest.raises(OnlineMechanismError):
            HybridMechanism(naive_side="both")
        with pytest.raises(OnlineMechanismError):
            HybridMechanism(warmup_edges=-1)

    def test_clock_never_smaller_than_optimal(self):
        for seed in range(5):
            graph = uniform_bipartite(15, 15, 0.15, seed=seed)
            mechanism = feed(HybridMechanism(), sorted(graph.edges()))
            assert mechanism.clock_size >= optimal_clock_size(graph)
