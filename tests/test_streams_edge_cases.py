"""Stream-generator edge cases and the sharded-vs-serial equivalence property.

Three families of tests the streaming engine's correctness rests on:

* degenerate streams (zero events) flow through every generator, the
  windowing adapter, the one-pass comparator and the sharded engine
  without special-casing;
* expire-before-insert is rejected loudly at every layer that could see
  one (it is always a driver bug: generators are multiset-consistent by
  contract);
* the headline property: for randomized churn streams, running the
  sharded engine and merging its partials yields exactly the same
  per-shard trajectories, finals and ratio statistics as feeding each
  shard's sub-stream through the serial one-pass
  :func:`~repro.online.simulator.compare_mechanisms_on_stream` - i.e.
  sharding + merging loses nothing relative to the single-pass driver.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.experiments import EXTENDED_MECHANISMS
from repro.analysis.metrics import RunningStats
from repro.computation import REGISTRY, STREAM
from repro.computation.streams import (
    EXPIRE,
    StreamEvent,
    sliding_window,
    thread_churn_stream,
)
from repro.engine import EngineConfig, OFFLINE_LABEL, StreamSharder, run_engine
from repro.exceptions import ComputationError, GraphError
from repro.graph.incremental import DynamicMatching
from repro.online.simulator import (
    compare_mechanisms_on_stream,
    seed_mechanism_factories,
)
from repro.seeds import derive_seed

SETTINGS = settings(max_examples=12, deadline=None)


# ---------------------------------------------------------------------------
# Zero-length streams
# ---------------------------------------------------------------------------
class TestZeroLengthStreams:
    @pytest.mark.parametrize("name", REGISTRY.names(STREAM))
    def test_every_registered_generator_yields_nothing(self, name):
        scenario = REGISTRY.get(name, kind=STREAM)
        assert list(scenario.build(4, 4, 0.5, 0, seed=1)) == []

    @pytest.mark.parametrize("name", REGISTRY.names(STREAM))
    def test_negative_num_events_rejected(self, name):
        scenario = REGISTRY.get(name, kind=STREAM)
        with pytest.raises(ComputationError):
            list(scenario.build(4, 4, 0.5, -1, seed=1))

    def test_sliding_window_over_empty_stream(self):
        assert list(sliding_window([], window=3)) == []

    def test_compare_on_empty_stream(self):
        results = compare_mechanisms_on_stream(
            [], {"naive": lambda: EXTENDED_MECHANISMS["naive"](0)}
        )
        assert results["naive"].size_trajectory == ()
        assert results[OFFLINE_LABEL].final_size == 0


# ---------------------------------------------------------------------------
# Expire-before-insert
# ---------------------------------------------------------------------------
class TestExpireBeforeInsert:
    def test_dynamic_matching_rejects_dead_edge(self):
        engine = DynamicMatching()
        with pytest.raises(GraphError):
            engine.remove_edge("T0", "O0")
        engine.add_edge("T0", "O0")
        engine.remove_edge("T0", "O0")
        with pytest.raises(GraphError):
            engine.remove_edge("T0", "O0")

    def test_comparator_surfaces_the_error(self):
        stream = [StreamEvent("T0", "O0", EXPIRE)]
        with pytest.raises(GraphError):
            compare_mechanisms_on_stream(
                stream, {"naive": lambda: EXTENDED_MECHANISMS["naive"](0)}
            )

    def test_sliding_window_rejects_explicit_expiry(self):
        stream = [StreamEvent("T0", "O0"), StreamEvent("T0", "O0", EXPIRE)]
        with pytest.raises(ComputationError):
            list(sliding_window(stream, window=2))


# ---------------------------------------------------------------------------
# Sharded merge == serial single-pass (the engine's semantic anchor)
# ---------------------------------------------------------------------------
def _serial_reference(config: EngineConfig, shard_id: int):
    """What the one-pass driver says this shard's metrics should be."""
    scenario = REGISTRY.get(config.scenario, kind=STREAM)
    events = scenario.build(
        config.num_threads,
        config.num_objects,
        config.density,
        config.num_events,
        seed=derive_seed(config.seed, config.scenario, "stream"),
    )
    sub_stream = StreamSharder(config.num_shards, config.strategy).select(
        events, shard_id
    )
    shard_root = derive_seed(config.seed, config.scenario, "shard", shard_id)
    factories = seed_mechanism_factories(
        {label: EXTENDED_MECHANISMS[label] for label in config.mechanisms},
        shard_root,
    )
    return compare_mechanisms_on_stream(
        sub_stream, factories, include_offline=True, window=config.window
    )


@given(
    seed=st.integers(min_value=0, max_value=2**32),
    num_events=st.integers(min_value=0, max_value=260),
    num_shards=st.integers(min_value=1, max_value=5),
    chunk_size=st.integers(min_value=1, max_value=90),
    threads=st.integers(min_value=2, max_value=14),
    churn=st.floats(min_value=0.0, max_value=0.4),
)
@SETTINGS
def test_sharded_merge_equals_serial_single_pass(
    seed, num_events, num_shards, chunk_size, threads, churn
):
    # `churn` only randomises the stream shape indirectly (via the seed
    # space) - thread_churn_stream's churn knob is not registry-exposed,
    # so fold it into the seed to diversify the explored streams.
    config = EngineConfig(
        scenario="thread-churn",
        num_threads=threads,
        num_objects=threads + 3,
        density=0.4,
        num_events=num_events,
        seed=derive_seed(seed, repr(churn)),
        num_shards=num_shards,
        chunk_size=chunk_size,
        trajectory_stride=1,
    )
    merged = run_engine(config).partial

    total_reference_inserts = 0
    for shard_id in range(num_shards):
        reference = _serial_reference(config, shard_id)
        offline = reference[OFFLINE_LABEL]
        total_reference_inserts += offline.events_revealed
        if offline.events_revealed == 0:
            for label in config.mechanisms:
                assert (shard_id, label) not in merged.series
            continue
        assert merged.fragment(shard_id, OFFLINE_LABEL).samples == (
            offline.size_trajectory
        )
        for label in config.mechanisms:
            fragment = merged.fragment(shard_id, label)
            expected = reference[label]
            assert fragment.samples == expected.size_trajectory
            assert fragment.final_size == expected.final_size
            assert fragment.count == expected.events_revealed
            # Ratio statistics match a single-pass accumulation of the
            # same pointwise ratios, up to the documented float-rounding
            # of per-chunk merging.
            ratios = RunningStats()
            for online, opt in zip(
                expected.size_trajectory, offline.size_trajectory
            ):
                if opt:
                    ratios.update(online / opt)
            frozen = ratios.freeze()
            assert fragment.ratios.count == frozen.count
            assert fragment.ratios.minimum == frozen.minimum
            assert fragment.ratios.maximum == frozen.maximum
            assert fragment.ratios.mean == pytest.approx(frozen.mean)
    assert merged.inserts == total_reference_inserts == num_events


@given(
    seed=st.integers(min_value=0, max_value=2**32),
    window=st.integers(min_value=1, max_value=40),
    num_shards=st.integers(min_value=1, max_value=4),
)
@SETTINGS
def test_windowed_sharded_merge_matches_serial(seed, window, num_shards):
    # Same property for an insert-only scenario under a per-shard window.
    config = EngineConfig(
        scenario="hot-object-drift",
        num_threads=8,
        num_objects=12,
        density=0.3,
        num_events=150,
        seed=seed,
        num_shards=num_shards,
        chunk_size=32,
        window=window,
        trajectory_stride=1,
    )
    merged = run_engine(config).partial
    for shard_id in range(num_shards):
        reference = _serial_reference(config, shard_id)
        offline = reference[OFFLINE_LABEL]
        if offline.events_revealed == 0:
            continue
        assert merged.fragment(shard_id, OFFLINE_LABEL).samples == (
            offline.size_trajectory
        )
        for label in config.mechanisms:
            assert merged.fragment(shard_id, label).samples == (
                reference[label].size_trajectory
            )


def test_churn_knob_spot_check_matches_engine_defaults():
    # The property tests rely on thread_churn_stream's default churn; a
    # direct spot check that the generator parameters the engine uses are
    # the registered defaults (build forwards no extra kwargs).
    scenario = REGISTRY.get("thread-churn", kind=STREAM)
    direct = list(thread_churn_stream(6, 8, 0.4, 50, seed=9))
    via_registry = list(scenario.build(6, 8, 0.4, 50, seed=9))
    assert direct == via_registry
