"""Unit tests for online timestamping with a growing component set."""

from __future__ import annotations

import pytest

from repro.computation import Computation, HappenedBefore, random_trace
from repro.exceptions import ClockError
from repro.online import (
    NaiveMechanism,
    OnlineClockProtocol,
    PopularityMechanism,
    RandomMechanism,
)
from tests.conftest import assert_valid_vector_clock


class TestOnlineClockProtocol:
    def test_requires_fresh_mechanism(self):
        mechanism = NaiveMechanism()
        mechanism.observe("T1", "O1")
        with pytest.raises(ClockError):
            OnlineClockProtocol(mechanism)

    def test_observe_returns_growing_timestamps(self):
        protocol = OnlineClockProtocol(NaiveMechanism())
        first = protocol.observe("A", "x")
        second = protocol.observe("A", "x")
        assert first < second
        assert protocol.clock_size == 1
        assert protocol.thread_clock("A") == second
        assert protocol.object_clock("x") == second

    def test_unseen_endpoints_have_zero_clock(self):
        protocol = OnlineClockProtocol(NaiveMechanism())
        assert protocol.thread_clock("ghost").as_dict() == {}
        assert protocol.object_clock("ghost").as_dict() == {}

    def test_timestamp_computation_and_queries(self, small_computation):
        protocol = OnlineClockProtocol(PopularityMechanism())
        stamps = protocol.timestamp_computation(small_computation)
        assert set(stamps) == set(small_computation.events)
        oracle = HappenedBefore(small_computation)
        for a in small_computation:
            for b in small_computation:
                if a == b:
                    assert not protocol.concurrent(a, b)
                    continue
                assert protocol.happened_before(a, b) == oracle.happened_before(a, b)
                assert protocol.concurrent(a, b) == oracle.concurrent(a, b)

    def test_timestamp_computation_requires_fresh_protocol(self, small_computation):
        protocol = OnlineClockProtocol(NaiveMechanism())
        protocol.timestamp_computation(small_computation)
        with pytest.raises(ClockError):
            protocol.timestamp_computation(small_computation)

    def test_unknown_event_timestamp_rejected(self, small_computation):
        protocol = OnlineClockProtocol(NaiveMechanism())
        protocol.timestamp_computation(small_computation)
        foreign = Computation.from_pairs([("Z", "q")]).events[0]
        with pytest.raises(ClockError):
            protocol.timestamp(foreign)

    @pytest.mark.parametrize(
        "mechanism_factory",
        [
            lambda: NaiveMechanism(),
            lambda: NaiveMechanism(side="object"),
            lambda: RandomMechanism(seed=13),
            lambda: PopularityMechanism(),
        ],
        ids=["naive-thread", "naive-object", "random", "popularity"],
    )
    def test_validity_on_random_computations(self, mechanism_factory):
        trace = random_trace(6, 8, 90, seed=17)
        protocol = OnlineClockProtocol(mechanism_factory())
        protocol.timestamp_computation(trace)
        assert_valid_vector_clock(trace, protocol.timestamp)

    def test_clock_size_matches_mechanism(self, medium_random_computation):
        mechanism = PopularityMechanism()
        protocol = OnlineClockProtocol(mechanism)
        protocol.timestamp_computation(medium_random_computation)
        assert protocol.clock_size == mechanism.clock_size
        assert protocol.mechanism is mechanism
