"""Unit tests for dense and sparse timestamp values."""

from __future__ import annotations

import pytest

from repro.core import ClockComponents, Timestamp, ordering
from repro.exceptions import ClockError
from repro.online import SparseTimestamp


@pytest.fixture
def components() -> ClockComponents:
    return ClockComponents(["T1", "T2"], ["O1"])


class TestDenseTimestamp:
    def test_zero(self, components):
        zero = Timestamp.zero(components)
        assert zero.values == (0, 0, 0)
        assert zero.sum() == 0
        assert len(zero) == 3
        assert list(zero) == [0, 0, 0]

    def test_explicit_values_and_accessors(self, components):
        stamp = Timestamp(components, [1, 2, 3])
        assert stamp.value_of("T1") == 1
        assert stamp.value_of("O1") == 3
        assert stamp.as_dict() == {"T1": 1, "T2": 2, "O1": 3}
        assert stamp.components is components

    def test_from_mapping(self, components):
        stamp = Timestamp.from_mapping(components, {"T2": 5})
        assert stamp.values == (0, 5, 0)
        with pytest.raises(ClockError):
            Timestamp.from_mapping(components, {"T9": 1})

    def test_length_and_sign_validation(self, components):
        with pytest.raises(ClockError):
            Timestamp(components, [1, 2])
        with pytest.raises(ClockError):
            Timestamp(components, [1, 2, -1])

    def test_merge_is_componentwise_max(self, components):
        a = Timestamp(components, [1, 5, 0])
        b = Timestamp(components, [2, 1, 4])
        assert a.merged(b).values == (2, 5, 4)
        assert b.merged(a).values == (2, 5, 4)

    def test_increment(self, components):
        stamp = Timestamp.zero(components).incremented("T2")
        assert stamp.values == (0, 1, 0)
        assert stamp.incremented("T2", amount=3).values == (0, 4, 0)
        with pytest.raises(ClockError):
            stamp.incremented("T2", amount=0)

    def test_ordering_relations(self, components):
        small = Timestamp(components, [1, 1, 1])
        big = Timestamp(components, [2, 1, 1])
        other = Timestamp(components, [0, 5, 0])
        assert small < big
        assert small <= big
        assert big > small
        assert big >= small
        assert not (big < small)
        assert small.concurrent_with(other)
        assert not small.concurrent_with(big)
        assert big.dominates(small)
        assert small == Timestamp(components, [1, 1, 1])
        assert small != big
        assert hash(small) == hash(Timestamp(components, [1, 1, 1]))

    def test_comparison_across_component_sets_rejected(self, components):
        other_components = ClockComponents(["T1"], ["O1"])
        with pytest.raises(ClockError):
            Timestamp.zero(components).merged(Timestamp.zero(other_components))
        with pytest.raises(ClockError):
            Timestamp.zero(components) < Timestamp.zero(other_components)

    def test_ordering_classifier(self, components):
        a = Timestamp(components, [1, 0, 0])
        b = Timestamp(components, [2, 0, 0])
        c = Timestamp(components, [0, 1, 0])
        assert ordering(a, b) == "before"
        assert ordering(b, a) == "after"
        assert ordering(a, a) == "equal"
        assert ordering(a, c) == "concurrent"

    def test_repr_contains_components(self, components):
        assert "T1:1" in repr(Timestamp(components, [1, 0, 2]))


class TestSparseTimestamp:
    def test_zero_values_dropped(self):
        stamp = SparseTimestamp({"a": 0, "b": 2})
        assert stamp.as_dict() == {"b": 2}
        assert stamp.value_of("a") == 0
        assert stamp.components() == {"b"}
        assert len(stamp) == 1
        assert dict(iter(stamp)) == {"b": 2}

    def test_negative_rejected(self):
        with pytest.raises(ClockError):
            SparseTimestamp({"a": -1})

    def test_merge_and_increment(self):
        a = SparseTimestamp({"x": 1, "y": 3})
        b = SparseTimestamp({"y": 1, "z": 2})
        merged = a.merged(b)
        assert merged.as_dict() == {"x": 1, "y": 3, "z": 2}
        assert a.incremented("x").value_of("x") == 2
        assert a.incremented("new").value_of("new") == 1
        with pytest.raises(ClockError):
            a.incremented("x", amount=0)

    def test_missing_components_compare_as_zero(self):
        small = SparseTimestamp({"x": 1})
        big = SparseTimestamp({"x": 1, "y": 1})
        assert small < big
        assert small <= big
        assert big > small
        assert big >= small
        assert not big < small

    def test_concurrency_and_equality(self):
        a = SparseTimestamp({"x": 1})
        b = SparseTimestamp({"y": 1})
        assert a.concurrent_with(b)
        assert not a.concurrent_with(SparseTimestamp({"x": 2}))
        assert SparseTimestamp({"x": 1}) == SparseTimestamp({"x": 1, "y": 0})
        assert hash(SparseTimestamp({"x": 1})) == hash(SparseTimestamp({"x": 1}))
        assert a != "junk"

    def test_empty_timestamp_below_everything(self):
        zero = SparseTimestamp()
        assert zero <= SparseTimestamp({"x": 1})
        assert zero < SparseTimestamp({"x": 1})
        assert zero == SparseTimestamp({})

    def test_repr(self):
        assert "x:1" in repr(SparseTimestamp({"x": 1}))
