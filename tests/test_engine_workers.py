"""Tests for the worker-pooled engine: shard groups, the pool, identity.

The worker-pooled mode rearranges *where* shards run - contiguous shard
groups, one stream pass per pool worker - without being allowed to touch
*what* they compute.  These tests attack that boundary from every layer:

* :func:`plan_shard_groups` / :class:`ShardGroup` - the deterministic
  balanced partition whose flattening must recover shard-id order;
* :meth:`StreamSharder.split_runs_group` - the one-pass router, checked
  event-for-event against independent single-shard ``split_runs``
  passes, including epoch-broadcast copy-position skip arithmetic (the
  "resume mid-epoch" regression the ISSUE suspected of double-counting);
* :class:`WorkerPool` - task order, exception transport (original type
  preserved across the process boundary), dead-worker detection;
* ``run_engine(workers=w)`` - the hypothesis property that every
  registered stream scenario, on every available kernel backend, merges
  to a fingerprint bit-identical to serial for any pool size, plus
  interrupt/resume cycles that *cross* worker counts (checkpoint written
  at ``workers=4``, resumed at ``workers=1``, and jobs-mode crossings);
* the CLI ``--workers`` surface and the telemetry invariants (counters
  identical across scheduling modes; pool gauges present).
"""

from __future__ import annotations

import os
import threading
from dataclasses import replace

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.computation.registry import REGISTRY, STREAM
from repro.computation.streams import EXPIRE, StreamEvent, epoch_marker
from repro.core.kernel import available_backends
from repro.engine import (
    EngineConfig,
    EngineInterrupted,
    ShardGroup,
    StreamSharder,
    WorkerPool,
    plan_shard_groups,
    run_engine,
    run_shard,
    run_shard_group,
)
from repro.engine.results import merge_partials
from repro.exceptions import EngineError
from repro.obs.registry import MetricsRegistry, disable, enable

SCENARIOS = REGISTRY.names(STREAM)
BACKENDS = available_backends()


# ---------------------------------------------------------------------------
# plan_shard_groups / ShardGroup
# ---------------------------------------------------------------------------
class TestPlanShardGroups:
    @given(num_shards=st.integers(1, 64), workers=st.integers(1, 80))
    @settings(max_examples=60, deadline=None)
    def test_plan_partitions_shards_exactly(self, num_shards, workers):
        groups = plan_shard_groups(num_shards, workers)
        flattened = [
            shard_id for group in groups for shard_id in group.shard_ids
        ]
        # Flattening in group-id order recovers shard-id order exactly -
        # the property the engine's merge tree depends on.
        assert flattened == list(range(num_shards))
        assert [group.group_id for group in groups] == list(range(len(groups)))
        assert len(groups) == min(workers, num_shards)
        sizes = [len(group.shard_ids) for group in groups]
        assert max(sizes) - min(sizes) <= 1
        # Oversized groups come first (the deal is deterministic).
        assert sizes == sorted(sizes, reverse=True)

    def test_plan_is_deterministic(self):
        assert plan_shard_groups(8, 3) == plan_shard_groups(8, 3)
        assert plan_shard_groups(8, 3) == (
            ShardGroup(0, (0, 1, 2)),
            ShardGroup(1, (3, 4, 5)),
            ShardGroup(2, (6, 7)),
        )

    def test_workers_above_shards_clamp(self):
        groups = plan_shard_groups(3, 9)
        assert len(groups) == 3
        assert all(len(group.shard_ids) == 1 for group in groups)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(EngineError):
            plan_shard_groups(0, 2)
        with pytest.raises(EngineError):
            plan_shard_groups(4, 0)

    def test_shard_group_validates_ids(self):
        with pytest.raises(EngineError):
            ShardGroup(0, ())
        with pytest.raises(EngineError):
            ShardGroup(0, (2, 1))
        with pytest.raises(EngineError):
            ShardGroup(0, (1, 1))


# ---------------------------------------------------------------------------
# split_runs_group vs independent split_runs passes
# ---------------------------------------------------------------------------
def _stream_events(draw_ops):
    """Materialise op tuples into stream events."""
    events = []
    for op in draw_ops:
        if op[0] == "epoch":
            events.append(epoch_marker())
        elif op[0] == "expire":
            events.append(StreamEvent(f"T{op[1]}", f"O{op[2]}", EXPIRE))
        else:
            events.append(StreamEvent(f"T{op[1]}", f"O{op[2]}"))
    return events


_ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 5), st.integers(0, 5)),
        st.tuples(st.just("expire"), st.integers(0, 5), st.integers(0, 5)),
        st.tuples(st.just("epoch")),
    ),
    max_size=60,
)


class TestSplitRunsGroup:
    @given(
        ops=_ops,
        num_shards=st.integers(1, 5),
        cap=st.integers(1, 7),
        strategy=st.sampled_from(["hash", "round-robin"]),
    )
    @settings(max_examples=80, deadline=None)
    def test_group_pass_matches_single_shard_passes(
        self, ops, num_shards, cap, strategy
    ):
        # A group pass over ALL shards must yield, per shard, exactly the
        # (consumed, item) sequence a dedicated split_runs pass yields -
        # same run boundaries, same counts.  Fresh sharders per pass:
        # round-robin is stateful.
        events = _stream_events(ops)
        owned = tuple(range(num_shards))
        grouped = {shard_id: [] for shard_id in owned}
        group_sharder = StreamSharder(num_shards, strategy)
        for shard_id, consumed, item in group_sharder.split_runs_group(
            events, owned, {shard_id: (lambda: cap) for shard_id in owned}
        ):
            grouped[shard_id].append((consumed, item))
        for shard_id in owned:
            solo_sharder = StreamSharder(num_shards, strategy)
            solo = list(
                solo_sharder.split_runs(events, shard_id, lambda: cap)
            )
            assert grouped[shard_id] == solo, f"shard {shard_id} diverged"

    @given(
        ops=_ops,
        num_shards=st.integers(1, 4),
        cap=st.integers(1, 7),
        skip=st.integers(0, 80),
    )
    @settings(max_examples=60, deadline=None)
    def test_group_skip_matches_single_shard_skip(
        self, ops, num_shards, cap, skip
    ):
        events = _stream_events(ops)
        owned = tuple(range(num_shards))
        # Tagged length bounds the valid skips; oversize must raise on
        # both paths identically.
        tagged = len(list(StreamSharder(num_shards).split(events)))
        skips = {shard_id: min(skip, tagged) for shard_id in owned}
        grouped = {shard_id: [] for shard_id in owned}
        for shard_id, consumed, item in StreamSharder(
            num_shards
        ).split_runs_group(
            events,
            owned,
            {shard_id: (lambda: cap) for shard_id in owned},
            skips,
        ):
            grouped[shard_id].append((consumed, item))
        for shard_id in owned:
            solo = list(
                StreamSharder(num_shards).split_runs(
                    events, shard_id, lambda: cap, skip=skips[shard_id]
                )
            )
            assert grouped[shard_id] == solo

    def test_mid_epoch_skip_uses_per_shard_copy_positions(self):
        # The regression the ISSUE suspected: a resume whose skip lands
        # *inside* an epoch broadcast must deliver the marker only to the
        # shards whose own copy position lies beyond their skip - not
        # re-deliver (double-count) it to shards already past theirs.
        # With 3 shards, the marker after one insert occupies tagged
        # positions 2, 3, 4 (copy of shard 0, 1, 2).  A skip of 3 covers
        # shard 0's and shard 1's copies but not shard 2's.
        events = [StreamEvent("T0", "O0"), epoch_marker()]
        sharder = StreamSharder(3)
        insert_shard = sharder.shard_of("T0")
        caps = {shard_id: (lambda: 10) for shard_id in range(3)}
        out = {shard_id: [] for shard_id in range(3)}
        for shard_id, consumed, item in StreamSharder(3).split_runs_group(
            events, (0, 1, 2), caps, {0: 3, 1: 3, 2: 3}
        ):
            out[shard_id].append((consumed, item))
        for shard_id in range(3):
            expected = []
            if shard_id == 2:
                # Only shard 2's copy (position 4) lies beyond skip=3.
                expected.append((4, events[1]))
            expected.append((4, None))
            assert out[shard_id] == expected, f"shard {shard_id}"
        assert insert_shard in range(3)  # the insert itself was skipped

    def test_group_validation(self):
        sharder = StreamSharder(4)
        caps = {0: (lambda: 5), 2: (lambda: 5)}
        with pytest.raises(EngineError):
            list(sharder.split_runs_group([], (), {}))
        with pytest.raises(EngineError):
            list(sharder.split_runs_group([], (2, 0), caps))
        with pytest.raises(EngineError):
            list(sharder.split_runs_group([], (0, 9), caps))
        with pytest.raises(EngineError):
            list(sharder.split_runs_group([], (0, 1), caps))  # no cap for 1

    def test_skip_beyond_stream_raises(self):
        events = [StreamEvent("T0", "O0")]
        with pytest.raises(EngineError, match="exhausted"):
            list(
                StreamSharder(2).split_runs_group(
                    events, (0, 1), {0: (lambda: 5), 1: (lambda: 5)}, {0: 0, 1: 9}
                )
            )


# ---------------------------------------------------------------------------
# WorkerPool
# ---------------------------------------------------------------------------
def _square(value):
    return value * value


def _raise_value_error(value):
    raise ValueError(f"task {value} exploded")


def _raise_interrupt(value):
    raise EngineInterrupted(f"task {value} stopped")


class _UnpicklableError(Exception):
    def __init__(self):
        super().__init__("stateful failure")
        self.lock = threading.Lock()  # defeats pickle


def _raise_unpicklable(value):
    raise _UnpicklableError()


def _exit_hard(value):
    os._exit(3)  # simulates an OOM-killed / segfaulted worker


class TestWorkerPool:
    def test_results_in_task_order(self):
        assert WorkerPool(2).map(_square, [3, 1, 4, 1, 5, 9]) == [
            9, 1, 16, 1, 25, 81,
        ]

    def test_serial_paths_take_no_pool(self):
        # workers=1 and single-task inputs run in-process (lambdas work:
        # nothing is pickled).
        assert WorkerPool(1).map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
        assert WorkerPool(4).map(lambda x: x + 1, [7]) == [8]

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(EngineError):
            WorkerPool(0)

    def test_exception_type_crosses_the_process_boundary(self):
        with pytest.raises(ValueError, match="exploded"):
            WorkerPool(2).map(_raise_value_error, [0, 1])

    def test_engine_interrupted_survives_transport(self):
        # EngineInterrupted carries resume semantics run_engine's callers
        # match on; the pool must not launder it into a generic error.
        with pytest.raises(EngineInterrupted):
            WorkerPool(2).map(_raise_interrupt, [0, 1])

    def test_unpicklable_exception_degrades_with_traceback(self):
        with pytest.raises(EngineError, match="_UnpicklableError"):
            WorkerPool(2).map(_raise_unpicklable, [0, 1])

    def test_dead_worker_detected(self):
        with pytest.raises(EngineError, match="pool died"):
            WorkerPool(2).map(_exit_hard, [0, 1])


# ---------------------------------------------------------------------------
# run_engine(workers=w): the fingerprint identity property
# ---------------------------------------------------------------------------
def _config(scenario, backend, seed, **extra):
    return EngineConfig(
        scenario=scenario,
        num_threads=12,
        num_objects=12,
        density=0.15,
        num_events=360,
        seed=seed,
        num_shards=3,
        chunk_size=50,
        backend=backend,
        timestamps=True,
        **extra,
    )


_serial_fingerprints = {}


def _serial_fingerprint(config):
    key = (config.scenario, config.backend, config.seed)
    if key not in _serial_fingerprints:
        _serial_fingerprints[key] = run_engine(config, jobs=1).fingerprint()
    return _serial_fingerprints[key]


class TestWorkersFingerprintIdentity:
    @given(
        scenario=st.sampled_from(SCENARIOS),
        backend=st.sampled_from(BACKENDS),
        workers=st.integers(1, 4),
        seed=st.integers(0, 2**20),
    )
    # Pin every registered scenario x available backend combination so
    # the full matrix runs on every invocation, not just when hypothesis
    # happens to draw it; random examples then vary workers and seed.
    @example(scenario=SCENARIOS[0], backend=BACKENDS[0], workers=2, seed=2019)
    @example(scenario=SCENARIOS[0], backend=BACKENDS[-1], workers=3, seed=2019)
    @example(scenario=SCENARIOS[1], backend=BACKENDS[0], workers=2, seed=2019)
    @example(scenario=SCENARIOS[1], backend=BACKENDS[-1], workers=3, seed=2019)
    @example(scenario=SCENARIOS[2], backend=BACKENDS[0], workers=2, seed=2019)
    @example(scenario=SCENARIOS[2], backend=BACKENDS[-1], workers=3, seed=2019)
    @settings(max_examples=10, deadline=None)
    def test_workers_fingerprint_identical_to_serial(
        self, scenario, backend, workers, seed
    ):
        config = _config(scenario, backend, seed)
        pooled = run_engine(replace(config, workers=workers))
        assert pooled.fingerprint() == _serial_fingerprint(config)

    def test_group_partials_equal_per_shard_partials(self):
        # One level down from the fingerprint: the group task's per-shard
        # partials are the same objects run_shard would have produced.
        config = _config("thread-churn", None, 77)
        grouped = run_shard_group(config, (0, 1, 2))
        for shard_id in range(3):
            assert grouped[shard_id] == run_shard(config, shard_id)
        merged = merge_partials(
            [grouped[shard_id] for shard_id in range(3)]
        )
        assert merged == run_engine(config, jobs=1).partial

    def test_workers_above_shards_clamp_in_run_engine(self):
        config = _config("thread-churn", None, 5)
        assert (
            run_engine(replace(config, workers=9)).fingerprint()
            == _serial_fingerprint(config)
        )

    def test_workers_and_jobs_are_mutually_exclusive(self):
        config = _config("thread-churn", None, 5, workers=2)
        with pytest.raises(EngineError, match="workers"):
            run_engine(config, jobs=2)

    def test_invalid_workers_rejected(self):
        with pytest.raises(EngineError, match="workers"):
            run_engine(_config("thread-churn", None, 5, workers=0))


# ---------------------------------------------------------------------------
# Interrupt/resume crossing worker counts (and scheduling modes)
# ---------------------------------------------------------------------------
class TestResumeAcrossWorkerCounts:
    BASE = EngineConfig(
        scenario="phase-change",
        num_threads=14,
        num_objects=14,
        density=0.15,
        num_events=3_000,
        seed=424,
        num_shards=4,
        chunk_size=150,
        epoch_every=220,
    )

    def _reference(self):
        return run_engine(self.BASE, jobs=1).fingerprint()

    def test_checkpoint_at_workers_4_resumes_at_workers_1(self, tmp_path):
        interrupted = replace(
            self.BASE,
            checkpoint_dir=str(tmp_path),
            max_chunks_per_shard=1,
            workers=4,
        )
        with pytest.raises(EngineInterrupted):
            run_engine(interrupted)
        resumed = run_engine(
            replace(self.BASE, checkpoint_dir=str(tmp_path), workers=1)
        )
        assert resumed.fingerprint() == self._reference()

    def test_mid_epoch_checkpoint_resumes_across_pool_sizes(self, tmp_path):
        # The satellite regression: phase-change emits stream epoch
        # markers AND epoch_every adds shard-local ones, chunk_size does
        # not divide either interval, and the interrupted run stops each
        # shard between epoch boundaries.  If resume recomputed the
        # broadcast consumed-counts from zero (the suspected
        # double-count), the resumed shards would re-deliver or skip
        # marker copies and the fingerprint would diverge.  It does not:
        # per-shard copy positions make the arithmetic exact.
        interrupted = replace(
            self.BASE,
            checkpoint_dir=str(tmp_path),
            max_chunks_per_shard=2,
            workers=2,
        )
        with pytest.raises(EngineInterrupted):
            run_engine(interrupted)
        resumed = run_engine(
            replace(self.BASE, checkpoint_dir=str(tmp_path), workers=3)
        )
        assert resumed.fingerprint() == self._reference()

    def test_jobs_checkpoint_resumes_under_workers(self, tmp_path):
        interrupted = replace(
            self.BASE, checkpoint_dir=str(tmp_path), max_chunks_per_shard=1
        )
        with pytest.raises(EngineInterrupted):
            run_engine(interrupted, jobs=1)
        resumed = run_engine(
            replace(self.BASE, checkpoint_dir=str(tmp_path), workers=2)
        )
        assert resumed.fingerprint() == self._reference()

    def test_workers_checkpoint_resumes_under_jobs(self, tmp_path):
        interrupted = replace(
            self.BASE,
            checkpoint_dir=str(tmp_path),
            max_chunks_per_shard=1,
            workers=3,
        )
        with pytest.raises(EngineInterrupted):
            run_engine(interrupted)
        resumed = run_engine(
            replace(self.BASE, checkpoint_dir=str(tmp_path)), jobs=1
        )
        assert resumed.fingerprint() == self._reference()


# ---------------------------------------------------------------------------
# CLI surface and telemetry invariants
# ---------------------------------------------------------------------------
class TestWorkersCli:
    ARGS = [
        "engine", "run", "--scenario", "thread-churn",
        "--events", "900", "--shards", "4", "--nodes", "16",
        "--chunk-size", "120",
    ]

    def test_workers_flag_matches_serial_output(self, capsys):
        assert main(self.ARGS) == 0
        serial_out = capsys.readouterr().out
        assert main(self.ARGS + ["--workers", "2"]) == 0
        captured = capsys.readouterr()
        assert captured.out == serial_out  # stdout is schedule-independent
        assert "workers=2" in captured.err

    def test_workers_with_jobs_fails_cleanly(self, capsys):
        code = main(self.ARGS + ["--workers", "2", "--jobs", "2"])
        assert code != 0


class TestWorkersTelemetry:
    CONFIG = EngineConfig(
        scenario="thread-churn",
        num_threads=12,
        num_objects=12,
        density=0.15,
        num_events=600,
        seed=99,
        num_shards=4,
        chunk_size=100,
    )

    def _registry_for(self, **run_kwargs):
        registry = enable(MetricsRegistry(origin="engine"))
        try:
            if "workers" in run_kwargs:
                run_engine(
                    replace(self.CONFIG, workers=run_kwargs["workers"])
                )
            else:
                run_engine(self.CONFIG, jobs=run_kwargs.get("jobs", 1))
        finally:
            disable()
        return registry

    def test_counters_identical_across_scheduling_modes(self):
        # Counters describe the logical run, never the physical schedule
        # - the same invariant the jobs modes honour, extended to pools.
        serial = self._registry_for(jobs=1).counters()
        assert self._registry_for(workers=1).counters() == serial
        assert self._registry_for(workers=2).counters() == serial

    def test_pool_and_shard_telemetry_present(self):
        registry = self._registry_for(workers=2)
        gauges = registry.gauges()
        assert gauges["pool.workers"] == 2
        assert gauges["engine.workers"] == 2
        for shard in range(self.CONFIG.num_shards):
            assert gauges[f"engine.shard[{shard}].inserts"] > 0
        histogram_names = {name for name, _ in registry.histograms()}
        assert "pool.worker_spawn_s" in histogram_names
        assert "pool.task_wait_s" in histogram_names
        assert "pool.tasks_per_worker" in histogram_names
        assert "engine.stream_gen_s" in histogram_names
