"""Tests for the incremental matching engine and the fast clock kernel.

Two independent cross-checks of the new hot paths against the slow,
trusted implementations:

* :class:`~repro.graph.incremental.IncrementalMatching` must agree with a
  from-scratch maximum matching on *every prefix* of every reveal order -
  the property that makes the offline-optimum trajectory exact;
* the array-backed :class:`~repro.core.kernel.ClockKernel` must produce
  timestamps *bit-identical* to the naive ``merged``/``incremented``
  derivation the seed protocol used, for every clock family.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.computation import Computation
from repro.core import ClockComponents, Timestamp, VectorClockProtocol
from repro.graph import (
    BipartiteGraph,
    IncrementalMatching,
    chain_bipartite,
    hopcroft_karp_matching,
    incremental_optimum_trajectory,
    is_maximum_matching,
    uniform_bipartite,
    validate_matching,
)
from repro.offline import (
    offline_optimum_trajectory,
    optimal_clock_size,
    optimal_components_for_computation,
)

SETTINGS = settings(max_examples=50, deadline=None)

edge_sequences = st.lists(
    st.tuples(
        st.sampled_from(["T0", "T1", "T2", "T3", "T4", "T5"]),
        st.sampled_from(["O0", "O1", "O2", "O3", "O4", "O5"]),
    ),
    min_size=0,
    max_size=25,  # repeats allowed on purpose: reveals may repeat pairs
)

pair_sequences = st.lists(
    st.tuples(
        st.sampled_from(["A", "B", "C", "D"]),
        st.sampled_from(["x", "y", "z"]),
    ),
    min_size=1,
    max_size=30,
)


# ---------------------------------------------------------------------------
# IncrementalMatching vs from-scratch matching
# ---------------------------------------------------------------------------
@SETTINGS
@given(edge_sequences)
def test_incremental_size_matches_from_scratch_at_every_prefix(edges):
    engine = IncrementalMatching()
    prefix = BipartiteGraph()
    for thread, obj in edges:
        engine.add_edge(thread, obj)
        prefix.add_edge(thread, obj)
        assert engine.size == len(hopcroft_karp_matching(prefix))
    trajectory = engine.optimal_size_trajectory()
    assert len(trajectory) == len(edges)
    if edges:
        assert trajectory[-1] == optimal_clock_size(prefix)


@SETTINGS
@given(edge_sequences)
def test_incremental_matching_is_valid_and_maximum(edges):
    engine = IncrementalMatching(edges)
    matching = engine.matching()
    validate_matching(engine.graph, matching)
    assert is_maximum_matching(engine.graph, matching)


def test_trajectory_final_value_over_random_graphs_and_orders():
    rng = random.Random(2019)
    for trial in range(25):
        graph = uniform_bipartite(
            rng.randint(2, 15), rng.randint(2, 15), rng.uniform(0.05, 0.5), seed=trial
        )
        edges = list(graph.edges())
        rng.shuffle(edges)
        trajectory = incremental_optimum_trajectory(edges)
        assert len(trajectory) == len(edges)
        if edges:
            assert trajectory[-1] == optimal_clock_size(graph)
            assert list(trajectory) == sorted(trajectory)  # optimum only grows


def test_trajectory_counts_repeated_pairs_without_growing():
    trajectory = incremental_optimum_trajectory(
        [("T0", "O0"), ("T0", "O0"), ("T1", "O1"), ("T0", "O0")]
    )
    assert trajectory == (1, 1, 2, 2)


def test_incremental_handles_long_chains_iteratively():
    # Chains force O(V)-hop augmenting paths; the engine must not recurse.
    graph = chain_bipartite(4_000)
    edges = list(graph.edges())
    random.Random(5).shuffle(edges)
    engine = IncrementalMatching(edges)
    assert engine.size == 2_000
    assert engine.size == optimal_clock_size(graph)


def test_offline_trajectory_helper_matches_engine():
    graph = uniform_bipartite(10, 10, 0.3, seed=3)
    edges = sorted(graph.edges(), key=str)
    assert offline_optimum_trajectory(edges) == incremental_optimum_trajectory(edges)


# ---------------------------------------------------------------------------
# Fast kernel vs naive timestamp derivation
# ---------------------------------------------------------------------------
def _reference_timestamps(computation, components):
    """The seed protocol's derivation: merged() + incremented() per event.

    Kept as the independent oracle for the kernel's bit-identical claim.
    """
    zero = Timestamp.zero(components)
    thread_clocks = {}
    object_clocks = {}
    stamps = {}
    for event in computation:
        merged = thread_clocks.get(event.thread, zero).merged(
            object_clocks.get(event.obj, zero)
        )
        stamped = merged
        if event.obj in components.object_components:
            stamped = stamped.incremented(event.obj)
        if event.thread in components.thread_components:
            stamped = stamped.incremented(event.thread)
        thread_clocks[event.thread] = stamped
        object_clocks[event.obj] = stamped
        stamps[event] = stamped
    return stamps


def _assert_bit_identical(computation, components):
    stamped = VectorClockProtocol(components).timestamp_computation(computation)
    reference = _reference_timestamps(computation, components)
    for event in computation:
        assert stamped[event].values == reference[event].values
        assert stamped[event] == reference[event]


@SETTINGS
@given(pair_sequences)
def test_kernel_matches_reference_with_thread_clock(pairs):
    computation = Computation.from_pairs(pairs)
    components = ClockComponents.all_threads(sorted(set(t for t, _ in pairs)))
    _assert_bit_identical(computation, components)


@SETTINGS
@given(pair_sequences)
def test_kernel_matches_reference_with_object_clock(pairs):
    computation = Computation.from_pairs(pairs)
    components = ClockComponents.all_objects(sorted(set(o for _, o in pairs)))
    _assert_bit_identical(computation, components)


@SETTINGS
@given(pair_sequences)
def test_kernel_matches_reference_with_optimal_mixed_clock(pairs):
    computation = Computation.from_pairs(pairs)
    components = optimal_components_for_computation(computation).components
    _assert_bit_identical(computation, components)


def test_kernel_matches_reference_on_random_traces():
    from repro.computation import random_trace

    for seed in range(5):
        trace = random_trace(6, 6, 80, seed=seed)
        components = optimal_components_for_computation(trace).components
        _assert_bit_identical(trace, components)


def test_kernel_incremental_observe_matches_batch():
    pairs = [("A", "x"), ("B", "x"), ("A", "y"), ("C", "y"), ("B", "x")]
    computation = Computation.from_pairs(pairs)
    components = optimal_components_for_computation(computation).components
    batch = VectorClockProtocol(components).timestamp_computation(computation)
    incremental = VectorClockProtocol(components)
    for event in computation:
        assert incremental.observe_event(event) == batch[event]
