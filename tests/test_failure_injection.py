"""Failure-injection tests: break an invariant on purpose, expect loud failure.

A causality-tracking library that silently produces wrong orderings is worse
than one that crashes.  These tests deliberately violate the preconditions
the correctness proofs rely on - a component set that is not a vertex
cover, tampered timestamps, malformed traces - and assert that the library
either refuses to proceed or demonstrably loses the vector clock property
(which is what the validation layers exist to prevent).
"""

from __future__ import annotations

import pytest

from hypothesis import given, settings, strategies as st

from repro.computation import Computation, HappenedBefore
from repro.core import ClockComponents, VectorClockProtocol, timestamp_with_mixed_clock
from repro.exceptions import (
    AmbiguousTimestampError,
    ClockError,
    ComponentError,
    ComputationError,
    VertexCoverError,
)
from repro.graph import uniform_bipartite
from repro.graph.vertex_cover import validate_vertex_cover
from repro.offline import optimal_components_for_computation
from tests.conftest import random_pairs


class TestBrokenCovers:
    def test_removing_any_cover_vertex_breaks_coverage(self):
        trace = Computation.from_pairs(random_pairs(5, 5, 60, seed=3))
        result = optimal_components_for_computation(trace)
        graph = trace.bipartite_graph()
        for vertex in result.cover:
            damaged = set(result.cover) - {vertex}
            # A minimum cover is tight: dropping any vertex uncovers an edge.
            with pytest.raises(VertexCoverError):
                validate_vertex_cover(graph, damaged)
            with pytest.raises(ComponentError):
                timestamp_with_mixed_clock(trace, damaged, graph=graph)

    def test_uncovered_protocol_loses_the_vector_clock_property(self):
        # Thread B's operations are not covered by the single component "A",
        # so consecutive B events receive identical (all-zero) timestamps:
        # the happened-before relation between them is lost.
        trace = Computation.from_pairs([("B", "x"), ("B", "x")])
        protocol = VectorClockProtocol(ClockComponents(["A"], []), strict=False)
        stamped = protocol.timestamp_computation(trace)
        oracle = HappenedBefore(trace)
        b_first, b_second = trace.events
        assert oracle.happened_before(b_first, b_second)
        # The timestamps fail to reflect it - which is exactly why strict
        # mode refuses to timestamp uncovered events in the first place.
        assert not (stamped[b_first] < stamped[b_second])
        assert stamped[b_first] == stamped[b_second]

    def test_identical_uncovered_timestamps_raise_on_causality_queries(self):
        # Same setup as above: two distinct uncovered events end up with
        # identical timestamps.  Answering "equal" (or "not concurrent")
        # for different events would silently corrupt causality analysis,
        # so every query path must surface the ambiguity instead.
        trace = Computation.from_pairs([("B", "x"), ("B", "x")])
        protocol = VectorClockProtocol(ClockComponents(["A"], []), strict=False)
        stamped = protocol.timestamp_computation(trace)
        b_first, b_second = trace.events
        with pytest.raises(AmbiguousTimestampError):
            stamped.relation(b_first, b_second)
        with pytest.raises(AmbiguousTimestampError):
            stamped.happened_before(b_first, b_second)
        with pytest.raises(AmbiguousTimestampError):
            stamped.concurrent(b_first, b_second)
        # The same event compared against itself stays unambiguous.
        assert stamped.relation(b_first, b_first) == "equal"
        assert not stamped.concurrent(b_first, b_first)

    def test_covered_events_never_trigger_the_ambiguity_guard(self):
        trace = Computation.from_pairs(random_pairs(4, 4, 40, seed=21))
        result = optimal_components_for_computation(trace)
        stamped = result.protocol().timestamp_computation(trace)
        # A valid cover increments at least one slot per event, so all
        # pairwise queries must succeed.
        for a in trace:
            for b in trace:
                stamped.relation(a, b)

    def test_strict_mode_rejects_the_same_situation_up_front(self):
        trace = Computation.from_pairs([("B", "x"), ("A", "x"), ("B", "x")])
        protocol = VectorClockProtocol(ClockComponents(["A"], []))
        with pytest.raises(ComponentError):
            protocol.timestamp_computation(trace)

    def test_failed_batch_poisons_the_protocol_until_reset(self):
        # A ComponentError mid-computation leaves clock state behind; the
        # fresh-instance guard must keep refusing reuse so the leaked
        # causality cannot silently bleed into a later computation.
        covered = Computation.from_pairs([("A", "x")])
        mixed = Computation.from_pairs([("A", "x"), ("B", "y")])
        protocol = VectorClockProtocol(ClockComponents(["A"], ["x"]))
        with pytest.raises(ComponentError):
            protocol.timestamp_computation(mixed)
        with pytest.raises(ClockError):
            protocol.timestamp_computation(covered)
        protocol.reset()
        stamped = protocol.timestamp_computation(covered)
        assert stamped[covered.events[0]].as_dict() == {"A": 1, "x": 1}


class TestTamperedTimestamps:
    def test_tampered_component_set_is_rejected_on_comparison(self):
        trace = Computation.from_pairs(random_pairs(4, 4, 30, seed=9))
        result = optimal_components_for_computation(trace)
        stamped = result.protocol().timestamp_computation(trace)
        other_components = ClockComponents(["Z"], [])
        from repro.core import Timestamp

        foreign = Timestamp.zero(other_components)
        with pytest.raises(ClockError):
            foreign < stamped[trace.events[0]]

    def test_negative_or_short_vectors_rejected(self):
        components = ClockComponents(["A"], ["x"])
        from repro.core import Timestamp

        with pytest.raises(ClockError):
            Timestamp(components, [1])
        with pytest.raises(ClockError):
            Timestamp(components, [1, -2])


class TestMalformedTraces:
    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_shuffled_event_metadata_is_rejected(self, data):
        pairs = data.draw(
            st.lists(
                st.tuples(st.sampled_from(["A", "B", "C"]), st.sampled_from(["x", "y"])),
                min_size=2,
                max_size=12,
            )
        )
        trace = Computation.from_pairs(pairs)
        events = list(trace.events)
        i = data.draw(st.integers(min_value=0, max_value=len(events) - 1))
        j = data.draw(st.integers(min_value=0, max_value=len(events) - 1))
        if i == j:
            return
        events[i], events[j] = events[j], events[i]
        # Swapping two events without re-deriving indices / chain positions
        # must be caught by Computation's validation.
        with pytest.raises(ComputationError):
            Computation(events)

    def test_prefix_of_foreign_events_rejected_by_oracle(self):
        trace_a = Computation.from_pairs(random_pairs(3, 3, 20, seed=1))
        trace_b = Computation.from_pairs(random_pairs(3, 3, 25, seed=2))
        oracle = HappenedBefore(trace_a)
        with pytest.raises(ComputationError):
            oracle.happened_before(trace_b.events[-1], trace_a.events[0])


class TestProtocolMisuse:
    def test_protocol_reuse_across_computations_is_rejected(self):
        trace = Computation.from_pairs(random_pairs(3, 3, 15, seed=5))
        result = optimal_components_for_computation(trace)
        protocol = result.protocol()
        protocol.timestamp_computation(trace)
        with pytest.raises(ClockError):
            protocol.timestamp_computation(trace)

    def test_cover_for_one_graph_rejected_on_a_larger_one(self):
        small = uniform_bipartite(6, 6, 0.3, seed=1)
        big = uniform_bipartite(12, 12, 0.3, seed=1)
        from repro.graph import minimum_vertex_cover

        small_cover = minimum_vertex_cover(small)
        components = ClockComponents.from_cover(big, small_cover)
        assert not components.covers_graph(big)
        with pytest.raises(ComponentError):
            components.validate_covers_graph(big)