"""Unit tests for the JSON trace serialization."""

from __future__ import annotations

import io
import json

import pytest

from repro.computation import Computation, producer_consumer_trace
from repro.computation.serialization import (
    FORMAT_NAME,
    FORMAT_VERSION,
    computation_from_dict,
    computation_to_dict,
    dump_computation,
    dumps_computation,
    load_computation,
    loads_computation,
)
from repro.exceptions import ComputationError


class TestRoundTrip:
    def test_dict_round_trip(self, small_computation):
        data = computation_to_dict(small_computation)
        assert data["format"] == FORMAT_NAME
        assert data["version"] == FORMAT_VERSION
        assert len(data["events"]) == small_computation.num_events
        rebuilt = computation_from_dict(data)
        assert rebuilt == small_computation

    def test_text_round_trip_preserves_labels_and_kinds(self):
        trace = producer_consumer_trace(num_producers=2, num_consumers=2,
                                        items_per_producer=3, seed=5)
        rebuilt = loads_computation(dumps_computation(trace))
        assert rebuilt == trace
        assert [e.label for e in rebuilt] == [e.label for e in trace]
        assert [e.is_write for e in rebuilt] == [e.is_write for e in trace]

    def test_file_round_trip(self, tmp_path, small_computation):
        path = tmp_path / "trace.json"
        dump_computation(small_computation, path)
        assert load_computation(path) == small_computation
        # The file is plain, pretty-printed JSON.
        document = json.loads(path.read_text())
        assert document["format"] == FORMAT_NAME

    def test_stream_round_trip(self, small_computation):
        buffer = io.StringIO()
        dump_computation(small_computation, buffer)
        buffer.seek(0)
        assert load_computation(buffer) == small_computation

    def test_integer_identifiers_round_trip(self):
        trace = Computation.from_pairs([(1, 10), (2, 10), (1, 11)])
        assert loads_computation(dumps_computation(trace)) == trace


class TestValidation:
    def test_rejects_wrong_format(self):
        with pytest.raises(ComputationError):
            computation_from_dict({"format": "something-else", "version": 1, "events": []})

    def test_rejects_wrong_version(self):
        with pytest.raises(ComputationError):
            computation_from_dict({"format": FORMAT_NAME, "version": 99, "events": []})

    def test_rejects_non_object_document(self):
        with pytest.raises(ComputationError):
            computation_from_dict(["not", "an", "object"])

    def test_rejects_missing_events(self):
        with pytest.raises(ComputationError):
            computation_from_dict({"format": FORMAT_NAME, "version": FORMAT_VERSION})

    def test_rejects_malformed_event(self):
        with pytest.raises(ComputationError):
            computation_from_dict(
                {"format": FORMAT_NAME, "version": FORMAT_VERSION, "events": [{"thread": "A"}]}
            )

    def test_rejects_invalid_json_text(self):
        with pytest.raises(ComputationError):
            loads_computation("{not json")

    def test_rejects_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{broken")
        with pytest.raises(ComputationError):
            load_computation(path)

    def test_empty_trace_round_trips(self):
        empty = Computation.from_pairs([])
        assert loads_computation(dumps_computation(empty)) == empty
