"""Property tests for PR 10's incremental epoch-rotation paths.

Three families of randomized evidence back the delta-rotation and
cover-repair fast paths:

* **delta == replay** - on arbitrary churn streams the ``"delta"``
  rotation strategy issues the same tokens and answers every causality
  query identically to the ``"replay"`` strategy (and to the
  ``check_invariant=True`` oracle, which replays *and* proves the
  re-timestamping invariant before committing).  Stamp values are
  allowed to differ only in representation (lazy projection chains vs
  eagerly replayed tuples) - their *verdicts* may not.
* **interrupt/resume** - pickling a delta-rotating driver mid-stream
  (while live stamps still hold unmaterialised projection chains) and
  resuming from the pickle changes nothing: the resumed run issues the
  same tokens and verdicts as the uninterrupted replay baseline.
* **repaired covers == from-scratch covers** - under random interleaved
  add/remove churn (duplicate edges and multiplicity deletion included),
  the persistent :class:`DynamicMatching`'s incrementally repaired
  König cover is *set-equal* to the from-scratch König construction on
  the same graph and matching, and stays a minimum cover.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.kernel import (
    default_backend_override,
    numpy_available,
    set_default_backend,
)
from repro.graph.bipartite import BipartiteGraph
from repro.graph.incremental import DynamicMatching
from repro.graph.matching import maximum_matching
from repro.graph.vertex_cover import konig_vertex_cover, validate_vertex_cover
from repro.online.adaptive import LifecycleClockDriver, WindowedPopularityMechanism

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend not installed"
)

SETTINGS = settings(max_examples=25, deadline=None)

#: Small ID spaces with a short window: expiries quickly kill endpoints,
#: so retirement-triggered (pure-subset, delta-eligible) rotations fire
#: on nearly every generated stream.
THREADS = ["T0", "T1", "T2", "T3", "T4", "T5"]
OBJECTS = ["O0", "O1", "O2", "O3", "O4", "O5"]

churn_streams = st.lists(
    st.tuples(st.sampled_from(THREADS), st.sampled_from(OBJECTS)),
    min_size=4,
    max_size=60,
)

windows = st.integers(min_value=2, max_value=8)


def drive(pairs, window, rotation, backend=None, pickle_at=None):
    """Run one lifecycle driver over a sliding-window churn stream.

    Returns ``(event tokens, verdict trace)`` where the verdict trace
    snapshots, after every event, the relation of each live-token pair -
    the full causality surface a monitor could query at that point.
    ``pickle_at`` round-trips the driver through ``pickle`` after that
    many events, which is exactly what an engine checkpoint does to a
    kernel holding unmaterialised projection chains.
    """
    saved = default_backend_override()
    if backend is not None:
        set_default_backend(backend)
    try:
        driver = LifecycleClockDriver(
            WindowedPopularityMechanism(), rotation=rotation
        )
        live = []
        tokens = []
        verdicts = []
        for step, pair in enumerate(pairs):
            if pickle_at is not None and step == pickle_at:
                driver = pickle.loads(pickle.dumps(driver))
            tokens.append(driver.observe(*pair))
            live.append(pair)
            if len(live) > window:
                driver.expire(*live.pop(0))
            alive = driver.live_tokens()
            verdicts.append(
                tuple(
                    driver.relation(a, b)
                    for i, a in enumerate(alive)
                    for b in alive[i + 1 :]
                )
            )
        return tokens, verdicts
    finally:
        if backend is not None:
            set_default_backend(saved)


@SETTINGS
@given(churn_streams, windows)
def test_delta_rotation_matches_replay_and_oracle(pairs, window):
    delta = drive(pairs, window, "delta")
    replay = drive(pairs, window, "replay")
    assert delta == replay
    # The invariant-checking oracle replays and verifies every rotation.
    oracle = LifecycleClockDriver(
        WindowedPopularityMechanism(), check_invariant=True
    )
    live = []
    for step, pair in enumerate(pairs):
        assert oracle.observe(*pair) == delta[0][step]
        live.append(pair)
        if len(live) > window:
            oracle.expire(*live.pop(0))


@requires_numpy
@SETTINGS
@given(churn_streams, windows)
def test_delta_rotation_is_backend_invariant(pairs, window):
    reference = drive(pairs, window, "replay", backend="python")
    assert drive(pairs, window, "delta", backend="python") == reference
    assert drive(pairs, window, "delta", backend="numpy") == reference
    assert drive(pairs, window, "replay", backend="numpy") == reference


@SETTINGS
@given(churn_streams, windows, st.data())
def test_delta_rotation_survives_interrupt_resume(pairs, window, data):
    """Pickling mid-stream (chains unmaterialised) changes no verdict."""
    pickle_at = data.draw(
        st.integers(min_value=1, max_value=len(pairs)), label="pickle_at"
    )
    reference = drive(pairs, window, "replay")
    assert drive(pairs, window, "delta", pickle_at=pickle_at) == reference


matching_ops = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove"]),
        st.sampled_from(THREADS),
        st.sampled_from(OBJECTS),
    ),
    min_size=1,
    max_size=80,
)


@SETTINGS
@given(matching_ops)
def test_repaired_cover_equals_from_scratch_cover(ops):
    """Incremental König repair == from-scratch construction, every step.

    The from-scratch oracle runs Algorithm 1's reachability sweep on the
    *same* graph and matching the persistent structure maintains, so the
    comparison is exact set equality, not just size equality; a second
    oracle (a fresh Hopcroft-Karp matching) pins minimality.
    """
    live = DynamicMatching(record_trajectory=False)
    for op, thread, obj in ops:
        if op == "add":
            live.add_edge(thread, obj)
        elif live.multiplicity(thread, obj):
            live.remove_edge(thread, obj)
        else:
            continue
        cover = live.vertex_cover()
        graph = live.graph
        assert cover == konig_vertex_cover(graph, live.matching())
        validate_vertex_cover(graph, cover)
        assert len(cover) == len(maximum_matching(graph))


def test_cover_repair_is_incremental_after_churn():
    """The steady-state cover path repairs instead of rebuilding.

    Deterministic companion to the property test: after warm-up, edge
    churn that stays away from the matching structure must be answered
    by the incremental reachability repair (cheap) rather than the full
    from-scratch sweep - the behaviour the rotation benchmark's >=5x
    boundary-pause assertion leans on.
    """
    from repro.obs.registry import MetricsRegistry, install as obs_install

    live = DynamicMatching(record_trajectory=False)
    for index in range(6):
        live.add_edge(f"T{index}", f"O{index}")
    live.vertex_cover()
    registry = MetricsRegistry(origin="test-cover-repair")
    previous = obs_install(registry)
    try:
        for index in range(6):
            live.add_edge(f"T{index}", f"O{(index + 1) % 6}")
            live.vertex_cover()
    finally:
        obs_install(previous)
    counters = dict(registry.counters())
    assert counters.get("matching.cover.repairs", 0) > 0
    assert counters.get("matching.cover.rebuilds", 0) == 0
