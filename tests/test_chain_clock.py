"""Unit tests for the chain-clock baseline."""

from __future__ import annotations

import pytest

from repro.baselines import ChainClock, chain_clock_size
from repro.computation import Computation, HappenedBefore, random_trace
from repro.exceptions import ClockError
from tests.conftest import assert_valid_vector_clock


class TestChainAssignment:
    def test_single_thread_uses_one_chain(self):
        computation = Computation.from_pairs([("A", f"O{i % 3}") for i in range(12)])
        result = ChainClock().run(computation)
        assert result.num_chains == 1
        assert set(result.chain_assignment.values()) == {0}

    def test_independent_threads_use_one_chain_each(self):
        computation = Computation.from_pairs([("A", "x"), ("B", "y"), ("A", "x"), ("B", "y")])
        result = ChainClock().run(computation)
        assert result.num_chains == 2

    def test_chain_elements_are_totally_ordered(self):
        trace = random_trace(5, 6, 80, seed=21)
        result = ChainClock().run(trace)
        oracle = HappenedBefore(trace)
        chains = {}
        for event, chain in result.chain_assignment.items():
            chains.setdefault(chain, []).append(event)
        for members in chains.values():
            members.sort(key=lambda e: e.index)
            for earlier, later in zip(members, members[1:]):
                assert oracle.happened_before(earlier, later)

    def test_number_of_chains_bounded_by_events(self):
        trace = random_trace(6, 6, 50, seed=3)
        assert 1 <= chain_clock_size(trace) <= trace.num_events


class TestChainClockTimestamps:
    def test_valid_vector_clock_on_random_trace(self):
        trace = random_trace(5, 7, 90, seed=8)
        result = ChainClock().run(trace)
        assert_valid_vector_clock(trace, lambda event: result.timestamps[event])

    def test_result_queries_match_oracle(self, small_computation):
        result = ChainClock().run(small_computation)
        oracle = HappenedBefore(small_computation)
        for a in small_computation:
            for b in small_computation:
                if a == b:
                    assert not result.concurrent(a, b)
                    continue
                assert result.happened_before(a, b) == oracle.happened_before(a, b)
                assert result.concurrent(a, b) == oracle.concurrent(a, b)

    def test_clock_size_property(self, small_computation):
        result = ChainClock().run(small_computation)
        assert result.clock_size == result.num_chains

    def test_reuse_rejected(self, small_computation):
        clock = ChainClock()
        clock.run(small_computation)
        with pytest.raises(ClockError):
            clock.run(small_computation)

    def test_unobserved_event_rejected(self, small_computation):
        clock = ChainClock()
        with pytest.raises(ClockError):
            clock.timestamp(small_computation.events[0])
        with pytest.raises(ClockError):
            clock.chain_of(small_computation.events[0])
