"""Tests for the dynamic (insert + delete) matching engine.

The decremental path is cross-checked the same way the incremental one
was in PR 1: against from-scratch computations on the live edge multiset
after *every* mutation, so the per-event optimum trajectory is exact in
both regimes.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import GraphError
from repro.graph import (
    BipartiteGraph,
    DynamicMatching,
    IncrementalMatching,
    chain_bipartite,
    hopcroft_karp_matching,
    is_maximum_matching,
    minimum_vertex_cover,
    sliding_window_optimum_trajectory,
    validate_matching,
    validate_vertex_cover,
)

SETTINGS = settings(max_examples=40, deadline=None)

THREADS = ["T0", "T1", "T2", "T3", "T4"]
OBJECTS = ["O0", "O1", "O2", "O3", "O4"]

# A script of (is_insert, thread, obj) steps; deletions are resolved
# against the live multiset at replay time (a delete step with no live
# edges is skipped), so every generated script is valid by construction.
mutation_scripts = st.lists(
    st.tuples(
        st.booleans(),
        st.sampled_from(THREADS),
        st.sampled_from(OBJECTS),
        st.integers(min_value=0, max_value=10_000),
    ),
    min_size=0,
    max_size=40,
)

pair_streams = st.lists(
    st.tuples(st.sampled_from(THREADS), st.sampled_from(OBJECTS)),
    min_size=0,
    max_size=40,
)


def _replay(script):
    """Replay a mutation script; yield (engine, live multiset) per step."""
    engine = DynamicMatching()
    live = {}
    for is_insert, thread, obj, pick in script:
        if is_insert or not live:
            engine.add_edge(thread, obj)
            live[(thread, obj)] = live.get((thread, obj), 0) + 1
        else:
            edge = sorted(live)[pick % len(live)]
            engine.remove_edge(*edge)
            live[edge] -= 1
            if not live[edge]:
                del live[edge]
        yield engine, dict(live)


# ---------------------------------------------------------------------------
# Interleaved insert/delete vs from-scratch (satellite: property test)
# ---------------------------------------------------------------------------
@SETTINGS
@given(mutation_scripts)
def test_interleaved_mutations_match_from_scratch_cover_at_every_prefix(script):
    for engine, live in _replay(script):
        reference = BipartiteGraph(edges=list(live))
        assert engine.size == len(minimum_vertex_cover(reference))
        assert engine.cover_size == engine.size


@SETTINGS
@given(mutation_scripts)
def test_interleaved_mutations_keep_matching_valid_and_maximum(script):
    for engine, _ in _replay(script):
        matching = engine.matching()
        validate_matching(engine.graph, matching)
        assert is_maximum_matching(engine.graph, matching)


@SETTINGS
@given(mutation_scripts)
def test_lazy_vertex_cover_is_a_valid_minimum_cover(script):
    for engine, _ in _replay(script):
        cover = engine.vertex_cover()
        validate_vertex_cover(engine.graph, cover)
        assert len(cover) == engine.size
        # The cache must serve repeat queries identically.
        assert engine.vertex_cover() is cover


# ---------------------------------------------------------------------------
# Deletion semantics
# ---------------------------------------------------------------------------
class TestRemoveEdge:
    def test_removing_unmatched_edge_keeps_size(self):
        engine = DynamicMatching([("T0", "O0"), ("T0", "O1"), ("T1", "O0")])
        assert engine.size == 2
        # (T0, O0) cannot be in the matching together with both others;
        # remove whichever edge is unmatched and the size must hold.
        matching = dict(engine.matching())
        unmatched = next(
            (t, o)
            for t, o in [("T0", "O0"), ("T0", "O1"), ("T1", "O0")]
            if matching.get(t) != o
        )
        assert engine.remove_edge(*unmatched) is False
        assert engine.size == 2

    def test_removing_matched_edge_reaugments_when_possible(self):
        # On the 2x2 complete graph every thread has an alternative
        # partner, so deleting any matched edge must re-augment along the
        # 3-hop alternating path and keep the size at 2.
        engine = DynamicMatching(
            [("T0", "O0"), ("T0", "O1"), ("T1", "O0"), ("T1", "O1")]
        )
        thread, matched_obj = next(iter(engine.matching()))
        assert engine.remove_edge(thread, matched_obj) is False
        assert engine.size == 2

    def test_removing_only_edge_shrinks(self):
        engine = DynamicMatching([("T0", "O0")])
        assert engine.remove_edge("T0", "O0") is True
        assert engine.size == 0
        assert engine.graph.num_edges == 0

    def test_multiplicity_keeps_edge_alive(self):
        engine = DynamicMatching([("T0", "O0"), ("T0", "O0")])
        assert engine.multiplicity("T0", "O0") == 2
        assert engine.remove_edge("T0", "O0") is False
        assert engine.size == 1
        assert engine.graph.has_edge("T0", "O0")
        assert engine.remove_edge("T0", "O0") is True
        assert engine.size == 0

    def test_removing_non_live_edge_raises(self):
        engine = DynamicMatching([("T0", "O0")])
        with pytest.raises(GraphError):
            engine.remove_edge("T0", "O1")
        engine.remove_edge("T0", "O0")
        with pytest.raises(GraphError):
            engine.remove_edge("T0", "O0")

    def test_trajectory_records_removals(self):
        engine = DynamicMatching()
        engine.add_edge("T0", "O0")
        engine.add_edge("T1", "O1")
        engine.remove_edge("T0", "O0")
        assert engine.optimal_size_trajectory() == (1, 2, 1)

    def test_trajectory_recording_can_be_disabled(self):
        engine = DynamicMatching(record_trajectory=False)
        engine.add_edge("T0", "O0")
        with pytest.raises(GraphError):
            engine.optimal_size_trajectory()
        assert engine.size == 1

    def test_isolated_endpoints_are_pruned_on_removal(self):
        # Memory on unbounded streams must track the live graph, not the
        # total vertex history: fully expired vertices leave the graph.
        engine = DynamicMatching([("T0", "O0"), ("T0", "O1")])
        engine.remove_edge("T0", "O1")
        assert not engine.graph.has_object("O1")
        assert engine.graph.has_thread("T0")
        engine.remove_edge("T0", "O0")
        assert engine.graph.num_vertices == 0

    def test_memory_stays_bounded_on_fresh_vertex_stream(self):
        # A window of 2 over a stream of always-fresh vertex ids: at most
        # 2 edges (4 vertices) may ever be live at once.
        engine = DynamicMatching(record_trajectory=False)
        from collections import deque

        live = deque()
        for i in range(500):
            if len(live) == 2:
                engine.remove_edge(*live.popleft())
            edge = (f"T{i}", f"O{i}")
            live.append(edge)
            engine.add_edge(*edge)
            assert engine.graph.num_vertices <= 4


# ---------------------------------------------------------------------------
# Chain regression (satellite: iterative-search guard at 10k vertices)
# ---------------------------------------------------------------------------
def test_chain_10k_vertices_survives_deletion_reaugmentation():
    # A perfect-matching chain forces O(V)-hop alternating paths.  After
    # deleting a matched edge near one end, the repair search sweeps the
    # whole chain; a recursive implementation would blow the interpreter
    # stack long before 10k vertices.
    graph = chain_bipartite(10_000)
    edges = list(graph.edges())
    random.Random(7).shuffle(edges)
    engine = DynamicMatching(edges)
    assert engine.size == 5_000
    # Delete a handful of matched edges spread across the chain; each
    # deletion either re-augments over a long path or certifiably shrinks
    # the optimum by one.
    removed = 0
    for thread, obj in list(engine.matching())[:5]:
        engine.remove_edge(thread, obj)
        removed += 1
    reference = hopcroft_karp_matching(engine.graph)
    assert engine.size == len(reference)
    assert is_maximum_matching(engine.graph, engine.matching())


# ---------------------------------------------------------------------------
# Sliding-window trajectory (acceptance criterion property test)
# ---------------------------------------------------------------------------
@SETTINGS
@given(pair_streams, st.integers(min_value=1, max_value=12))
def test_sliding_window_trajectory_matches_from_scratch(events, window):
    trajectory = sliding_window_optimum_trajectory(iter(events), window)
    assert len(trajectory) == len(events)
    for index in range(len(events)):
        live = events[max(0, index - window + 1): index + 1]
        reference = BipartiteGraph(edges=live)
        assert trajectory[index] == len(minimum_vertex_cover(reference))


def test_sliding_window_consumes_stream_lazily():
    def stream():
        yield ("T0", "O0")
        yield ("T1", "O1")
        yield ("T0", "O1")

    # After the third event the window holds {(T1,O1), (T0,O1)}: both
    # edges share O1, so the optimum drops back to 1.
    assert sliding_window_optimum_trajectory(stream(), window=2) == (1, 2, 1)


def test_sliding_window_rejects_bad_window():
    with pytest.raises(GraphError):
        sliding_window_optimum_trajectory([("T0", "O0")], window=0)


def test_sliding_window_optimum_can_shrink():
    # Three disjoint edges through a window of 2: the optimum rises to 2
    # and stays there, but the *components* rotate; with a window of 1 the
    # optimum must drop back to 1 after every event.
    events = [("T0", "O0"), ("T1", "O1"), ("T2", "O2")]
    assert sliding_window_optimum_trajectory(events, window=1) == (1, 1, 1)
    assert sliding_window_optimum_trajectory(events, window=3) == (1, 2, 3)


# ---------------------------------------------------------------------------
# Backward compatibility
# ---------------------------------------------------------------------------
def test_incremental_matching_is_the_append_only_view():
    assert issubclass(IncrementalMatching, DynamicMatching)
    engine = IncrementalMatching([("T0", "O0"), ("T1", "O0")])
    assert engine.optimal_size_trajectory() == (1, 1)
