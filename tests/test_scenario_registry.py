"""Tests for the scenario registry, streaming workloads and ratio sweeps."""

from __future__ import annotations

import itertools

import pytest

from repro.analysis import (
    format_ratio_sweep,
    ratio_sweep,
    summarize,
)
from repro.computation import (
    EXPIRE,
    GRAPH,
    INSERT,
    REGISTRY,
    STREAM,
    TRACE,
    Scenario,
    ScenarioRegistry,
    StreamEvent,
    as_stream_event,
    hot_object_drift_stream,
    insert_events,
    phase_change_stream,
    register_scenario,
    sliding_window,
    thread_churn_stream,
)
from repro.exceptions import ComputationError, ExperimentError, ScenarioError
from repro.graph import DynamicMatching
from repro.online import OFFLINE_LABEL, NaiveMechanism, compare_mechanisms_on_stream


# ---------------------------------------------------------------------------
# Registry mechanics
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_global_registry_has_all_three_kinds(self):
        assert set(REGISTRY.names(TRACE)) == {
            "lock-hierarchy",
            "paper-example",
            "pipeline",
            "producer-consumer",
            "random",
            "work-stealing",
        }
        assert set(REGISTRY.names(GRAPH)) == {
            "clustered",
            "nonuniform",
            "powerlaw",
            "uniform",
        }
        assert set(REGISTRY.names(STREAM)) >= {
            "hot-object-drift",
            "phase-change",
            "thread-churn",
        }
        assert len(REGISTRY.names(STREAM)) >= 3

    def test_duplicate_registration_rejected(self):
        registry = ScenarioRegistry()
        registry.register(Scenario("dup", TRACE, lambda seed: None))
        with pytest.raises(ScenarioError):
            registry.register(Scenario("dup", GRAPH, lambda *a, **k: None))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioRegistry().register(Scenario("x", "movie", lambda: None))

    def test_expires_requires_stream_kind(self):
        with pytest.raises(ScenarioError):
            ScenarioRegistry().register(
                Scenario("x", TRACE, lambda seed: None, expires=True)
            )

    def test_unknown_lookup_lists_valid_names(self):
        with pytest.raises(ScenarioError, match="uniform"):
            REGISTRY.get("bimodal", kind=GRAPH)

    def test_kind_constrained_lookup(self):
        assert REGISTRY.get("uniform", kind=GRAPH).kind == GRAPH
        with pytest.raises(ScenarioError):
            REGISTRY.get("uniform", kind=TRACE)

    def test_decorator_registers_and_returns_factory(self):
        registry = ScenarioRegistry()

        @register_scenario("mine", kind=TRACE, description="d", registry=registry)
        def factory(seed):
            return seed

        assert factory(3) == 3  # unchanged callable
        scenario = registry.get("mine")
        assert scenario.kind == TRACE and scenario.description == "d"
        assert "mine" in registry and len(registry) == 1

    def test_describe_renders_name_and_description(self):
        text = REGISTRY.describe(STREAM)
        assert "thread-churn:" in text
        assert "hot-object-drift:" in text

    def test_churn_scenario_declares_expiry(self):
        assert REGISTRY.get("thread-churn").expires
        assert not REGISTRY.get("hot-object-drift").expires


# ---------------------------------------------------------------------------
# Stream events and generators
# ---------------------------------------------------------------------------
class TestStreams:
    def test_as_stream_event_coerces_pairs(self):
        event = as_stream_event(("T0", "O0"))
        assert event.is_insert and event.pair == ("T0", "O0")
        assert as_stream_event(event) is event

    def test_insert_events_wraps_lazily(self):
        wrapped = insert_events(iter([("T0", "O0")]))
        assert next(wrapped).kind == INSERT

    @pytest.mark.parametrize(
        "generator",
        [thread_churn_stream, hot_object_drift_stream, phase_change_stream],
        ids=["churn", "drift", "phase"],
    )
    def test_generators_are_deterministic_and_sized(self, generator):
        first = list(generator(6, 8, 0.3, 120, seed=11))
        second = list(generator(6, 8, 0.3, 120, seed=11))
        assert first == second
        assert list(generator(6, 8, 0.3, 120, seed=12)) != first
        assert sum(1 for event in first if event.is_insert) == 120

    @pytest.mark.parametrize(
        "generator",
        [thread_churn_stream, hot_object_drift_stream, phase_change_stream],
        ids=["churn", "drift", "phase"],
    )
    def test_generators_are_lazy(self, generator):
        stream = generator(6, 8, 0.3, 10**9, seed=1)
        head = list(itertools.islice(stream, 50))
        assert len(head) == 50

    def test_churn_expiry_is_multiset_consistent(self):
        # Every expire retracts a previously inserted, still-live
        # occurrence - exactly the contract DynamicMatching enforces, so
        # driving the engine over the raw stream must never raise.
        engine = DynamicMatching()
        expires = 0
        for event in thread_churn_stream(10, 10, 0.5, 500, seed=23):
            if event.is_insert:
                engine.add_edge(event.thread, event.obj)
            else:
                engine.remove_edge(event.thread, event.obj)
                expires += 1
        assert expires > 0  # the seed actually exercises departures

    def test_sliding_window_emits_expire_before_overflow_insert(self):
        events = list(sliding_window(insert_events([("T0", "O0"), ("T1", "O1")]), 1))
        kinds = [event.kind for event in events]
        assert kinds == [INSERT, EXPIRE, INSERT]
        assert events[1].pair == ("T0", "O0")

    def test_sliding_window_bounds_live_inserts(self):
        stream = hot_object_drift_stream(5, 8, 0.4, 200, seed=3)
        live = 0
        for event in sliding_window(stream, 17):
            live += 1 if event.is_insert else -1
            assert live <= 17

    def test_sliding_window_rejects_expiring_input(self):
        with pytest.raises(ComputationError):
            list(sliding_window([StreamEvent("T0", "O0", EXPIRE)], 4))

    def test_sliding_window_rejects_bad_window(self):
        with pytest.raises(ComputationError):
            list(sliding_window([("T0", "O0")], 0))


# ---------------------------------------------------------------------------
# Streaming comparison driver
# ---------------------------------------------------------------------------
class TestCompareOnStream:
    def test_single_pass_over_a_one_shot_iterator(self):
        events = iter([("T0", "O0"), ("T1", "O1"), ("T0", "O1")])
        results = compare_mechanisms_on_stream(
            events, {"naive": NaiveMechanism}, include_offline=True
        )
        assert results["naive"].events_revealed == 3
        assert results[OFFLINE_LABEL].size_trajectory == (1, 2, 2)

    def test_windowed_offline_trajectory_can_dip(self):
        # Disjoint edges through a window of 1: the optimum resets to 1 on
        # every event while Naive keeps one component per thread seen.
        pairs = [(f"T{i}", f"O{i}") for i in range(6)]
        results = compare_mechanisms_on_stream(
            pairs, {"naive": NaiveMechanism}, include_offline=True, window=1
        )
        assert results[OFFLINE_LABEL].size_trajectory == (1,) * 6
        assert results["naive"].size_trajectory == (1, 2, 3, 4, 5, 6)

    def test_mechanisms_never_dip_below_windowed_optimum(self):
        stream = phase_change_stream(8, 10, 0.3, 300, seed=5)
        results = compare_mechanisms_on_stream(
            stream, {"naive": NaiveMechanism}, include_offline=True, window=40
        )
        offline = results[OFFLINE_LABEL].size_trajectory
        online = results["naive"].size_trajectory
        assert len(offline) == len(online) == 300
        assert all(o >= f for o, f in zip(online, offline))

    def test_expire_events_skip_mechanisms(self):
        events = [
            StreamEvent("T0", "O0"),
            StreamEvent("T0", "O0", EXPIRE),
            StreamEvent("T1", "O1"),
        ]
        results = compare_mechanisms_on_stream(
            events, {"naive": NaiveMechanism}, include_offline=True
        )
        # Two samples (one per insert); the expire shrank only the optimum.
        assert results["naive"].size_trajectory == (1, 2)
        assert results[OFFLINE_LABEL].size_trajectory == (1, 1)


# ---------------------------------------------------------------------------
# Ratio sweep
# ---------------------------------------------------------------------------
class TestRatioSweep:
    def _small(self, **overrides):
        kwargs = dict(
            densities=[0.2],
            sizes=[8],
            trials=1,
            window=30,
            burn_in=10,
            tail=10,
            num_events=90,
            base_seed=77,
        )
        kwargs.update(overrides)
        return ratio_sweep(**kwargs)

    def test_covers_all_registered_stream_scenarios(self):
        result = self._small()
        assert set(result.scenarios) == set(REGISTRY.names(STREAM))
        assert len(result.cells) == len(result.scenarios)

    def test_cells_carry_burn_in_and_steady_stats(self):
        result = self._small()
        for cell in result.cells:
            for label in result.mechanisms:
                burn, steady = cell.burn_in[label], cell.steady[label]
                assert burn.count == 10 and steady.count == 10
                assert burn.minimum >= 1.0 - 1e-9
                assert steady.minimum >= 1.0 - 1e-9
                # Order statistics are available (satellite: median/percentile).
                assert steady.percentile(90) >= steady.median >= steady.minimum

    def test_grid_iterates_densities_and_sizes(self):
        result = self._small(densities=[0.1, 0.3], sizes=[6, 10])
        cells = result.cells_for("phase-change")
        assert {(cell.density, cell.size) for cell in cells} == {
            (0.1, 6), (0.1, 10), (0.3, 6), (0.3, 10),
        }

    def test_scenario_subset_and_unknown_scenario(self):
        result = self._small(scenarios=["phase-change"])
        assert result.scenarios == ("phase-change",)
        with pytest.raises(ExperimentError, match="thread-churn"):
            self._small(scenarios=["no-such-stream"])

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ExperimentError):
            self._small(trials=0)
        with pytest.raises(ExperimentError):
            self._small(num_events=5)  # < burn_in + tail
        with pytest.raises(ExperimentError):
            self._small(window=0)

    def test_format_renders_one_table_per_scenario(self):
        result = self._small()
        text = format_ratio_sweep(result)
        for name in result.scenarios:
            assert f"ratio-sweep-{name}" in text
        assert ":burn" in text and ":steady" in text
        assert "self-expiring" in text  # thread-churn runs unwindowed


# ---------------------------------------------------------------------------
# SummaryStats order statistics (satellite)
# ---------------------------------------------------------------------------
class TestPercentiles:
    def test_median_odd_and_even(self):
        assert summarize([3, 1, 2]).median == 2.0
        assert summarize([1, 2, 3, 4]).median == 2.5

    def test_percentile_interpolates(self):
        stats = summarize([0, 10])
        assert stats.percentile(0) == 0.0
        assert stats.percentile(25) == 2.5
        assert stats.percentile(100) == 10.0

    def test_percentile_single_value(self):
        assert summarize([7]).percentile(99) == 7.0

    def test_percentile_range_checked(self):
        with pytest.raises(ValueError):
            summarize([1.0]).percentile(101)

    def test_percentile_requires_sample(self):
        from repro.analysis import SummaryStats

        bare = SummaryStats(count=2, mean=1.0, std=0.0, minimum=1.0, maximum=1.0)
        with pytest.raises(ValueError):
            bare.median

    def test_summarize_still_matches_moments(self):
        stats = summarize([2.0, 4.0, 6.0])
        assert stats.mean == 4.0
        assert stats.minimum == 2.0 and stats.maximum == 6.0
        assert stats.sorted_values == (2.0, 4.0, 6.0)
