"""Property-based tests (hypothesis) for matchings and vertex covers."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.graph import (
    BipartiteGraph,
    augmenting_path_matching,
    hopcroft_karp_matching,
    is_maximum_matching,
    is_vertex_cover,
    konig_vertex_cover,
    minimum_vertex_cover,
    validate_matching,
)
from repro.graph.vertex_cover import brute_force_vertex_cover
from repro.online import NaiveMechanism, PopularityMechanism, RandomMechanism
from repro.online.simulator import run_mechanism

SETTINGS = settings(max_examples=50, deadline=None)

edge_lists = st.lists(
    st.tuples(
        st.sampled_from(["T0", "T1", "T2", "T3", "T4", "T5"]),
        st.sampled_from(["O0", "O1", "O2", "O3", "O4", "O5"]),
    ),
    min_size=0,
    max_size=20,
    unique=True,
)

small_edge_lists = st.lists(
    st.tuples(
        st.sampled_from(["T0", "T1", "T2", "T3"]),
        st.sampled_from(["O0", "O1", "O2", "O3"]),
    ),
    min_size=0,
    max_size=8,
    unique=True,
)


@SETTINGS
@given(edge_lists)
def test_hopcroft_karp_is_a_maximum_matching(edges):
    graph = BipartiteGraph(edges=edges)
    matching = hopcroft_karp_matching(graph)
    validate_matching(graph, matching)
    assert is_maximum_matching(graph, matching)


@SETTINGS
@given(edge_lists)
def test_hopcroft_karp_agrees_with_augmenting_path(edges):
    graph = BipartiteGraph(edges=edges)
    assert len(hopcroft_karp_matching(graph)) == len(augmenting_path_matching(graph))


@SETTINGS
@given(edge_lists)
def test_konig_cover_is_a_cover_of_matching_size(edges):
    graph = BipartiteGraph(edges=edges)
    matching = hopcroft_karp_matching(graph)
    cover = konig_vertex_cover(graph, matching)
    assert is_vertex_cover(graph, cover)
    assert len(cover) == len(matching)


@SETTINGS
@given(small_edge_lists)
def test_konig_cover_is_minimum(edges):
    graph = BipartiteGraph(edges=edges)
    cover = minimum_vertex_cover(graph)
    assert len(cover) == len(brute_force_vertex_cover(graph))


@SETTINGS
@given(edge_lists)
def test_cover_never_exceeds_either_side(edges):
    graph = BipartiteGraph(edges=edges)
    if graph.num_edges == 0:
        return
    cover = minimum_vertex_cover(graph)
    assert len(cover) <= graph.num_threads
    assert len(cover) <= graph.num_objects


@SETTINGS
@given(edge_lists, st.integers(min_value=0, max_value=2**16))
def test_online_mechanisms_always_produce_a_cover(edges, seed):
    """Whatever the reveal order, the grown component set covers all edges
    and is never smaller than the offline optimum (weak duality)."""
    graph = BipartiteGraph(edges=edges)
    if graph.num_edges == 0:
        return
    optimum = len(minimum_vertex_cover(graph))
    order = list(edges)
    for mechanism in (NaiveMechanism(), RandomMechanism(seed=seed), PopularityMechanism()):
        result = run_mechanism(mechanism, order)
        components = mechanism.components()
        components.validate_covers_graph(graph)
        assert result.final_size >= optimum
        # Naive-thread can never exceed the thread count; no mechanism can
        # exceed the total number of vertices it has seen.
        assert result.final_size <= graph.num_vertices
    naive = NaiveMechanism()
    run_mechanism(naive, order)
    assert naive.clock_size <= graph.num_threads
