"""Unit tests for the online simulation driver."""

from __future__ import annotations

import pytest

from repro.computation import random_trace
from repro.graph import uniform_bipartite
from repro.offline import optimal_clock_size
from repro.online import (
    NaiveMechanism,
    PopularityMechanism,
    RandomMechanism,
    compare_mechanisms,
    reveal_order,
    run_mechanism,
    run_mechanism_on_computation,
    run_mechanism_on_graph,
)


class TestRevealOrder:
    def test_is_permutation_of_edges(self):
        graph = uniform_bipartite(10, 10, 0.3, seed=1)
        order = reveal_order(graph, seed=2)
        assert sorted(order) == sorted(graph.edges())

    def test_deterministic_given_seed(self):
        graph = uniform_bipartite(10, 10, 0.3, seed=1)
        assert reveal_order(graph, seed=5) == reveal_order(graph, seed=5)
        assert reveal_order(graph, seed=5) != reveal_order(graph, seed=6)


class TestRunMechanism:
    def test_trajectory_is_monotone_and_bounded(self):
        graph = uniform_bipartite(15, 15, 0.2, seed=3)
        result = run_mechanism_on_graph(PopularityMechanism(), graph, seed=4)
        assert result.events_revealed == graph.num_edges
        assert len(result.size_trajectory) == graph.num_edges
        assert list(result.size_trajectory) == sorted(result.size_trajectory)
        assert result.final_size == result.size_trajectory[-1]
        assert result.final_size == result.sizes[-1]
        assert result.thread_components + result.object_components == result.final_size

    def test_run_on_computation_counts_every_event(self):
        trace = random_trace(5, 5, 40, seed=6)
        result = run_mechanism_on_computation(NaiveMechanism(), trace)
        assert result.events_revealed == trace.num_events
        assert result.final_size == len(set(trace.threads))

    def test_final_size_never_below_offline_optimum(self):
        for seed in range(5):
            graph = uniform_bipartite(12, 12, 0.25, seed=seed)
            optimum = optimal_clock_size(graph)
            for mechanism in (NaiveMechanism(), RandomMechanism(seed=seed), PopularityMechanism()):
                result = run_mechanism_on_graph(mechanism, graph, seed=seed)
                assert result.final_size >= optimum


class TestCompareMechanisms:
    def test_all_mechanisms_see_the_same_reveal_order(self):
        graph = uniform_bipartite(10, 10, 0.3, seed=9)
        results = compare_mechanisms(
            graph,
            {
                "naive": lambda: NaiveMechanism(),
                "naive-again": lambda: NaiveMechanism(),
            },
            seed=1,
        )
        assert results["naive"].final_size == results["naive-again"].final_size
        assert results["naive"].size_trajectory == results["naive-again"].size_trajectory

    def test_include_offline_adds_constant_series(self):
        graph = uniform_bipartite(10, 10, 0.2, seed=2)
        results = compare_mechanisms(
            graph, {"popularity": lambda: PopularityMechanism()}, seed=3, include_offline=True
        )
        offline = results["offline"]
        assert offline.final_size == optimal_clock_size(graph)
        assert set(offline.size_trajectory) == {offline.final_size}
        assert results["popularity"].final_size >= offline.final_size
