"""Unit tests for the online simulation driver."""

from __future__ import annotations

import pytest

from repro.computation import random_trace
from repro.graph import uniform_bipartite
from repro.offline import optimal_clock_size
from repro.online import (
    NaiveMechanism,
    PopularityMechanism,
    RandomMechanism,
    compare_mechanisms,
    reveal_order,
    run_mechanism,
    run_mechanism_on_computation,
    run_mechanism_on_graph,
)


class TestRevealOrder:
    def test_is_permutation_of_edges(self):
        graph = uniform_bipartite(10, 10, 0.3, seed=1)
        order = reveal_order(graph, seed=2)
        assert sorted(order) == sorted(graph.edges())

    def test_deterministic_given_seed(self):
        graph = uniform_bipartite(10, 10, 0.3, seed=1)
        assert reveal_order(graph, seed=5) == reveal_order(graph, seed=5)
        assert reveal_order(graph, seed=5) != reveal_order(graph, seed=6)

    def test_mixed_vertex_types_reveal_deterministically(self):
        # Distinct vertices may share a printed form across types (the
        # int 1 and the str "1"); the sort key separates those.  Same-type
        # vertices with identical reprs (Opaque below) cannot be separated
        # by any printed form - they must still shuffle into a valid,
        # in-process-deterministic permutation rather than crash.
        from repro.graph import BipartiteGraph

        class Opaque:
            """A vertex whose instances all print identically."""

            def __repr__(self):
                return "<opaque>"

        a, b = Opaque(), Opaque()
        graph = BipartiteGraph(
            edges=[(1, "x"), ("1", "x"), (1, "y"), (a, "x"), (b, "y")]
        )
        order = reveal_order(graph, seed=4)
        assert len(order) == graph.num_edges
        assert set(order) == set(graph.edges())
        assert reveal_order(graph, seed=4) == order

    def test_edge_sort_key_separates_identical_strings(self):
        from repro.online.simulator import _edge_sort_key

        assert _edge_sort_key((1, "O")) != _edge_sort_key(("1", "O"))

    def test_sort_keys_computed_once_per_vertex(self):
        # The canonicalisation key used to be re-derived per comparison
        # (O(d log E) repr calls per vertex); it is now cached, so one
        # reveal_order call costs exactly one repr per vertex.
        from repro.graph import BipartiteGraph

        class Counting:
            calls = 0

            def __init__(self, label):
                self.label = label

            def __repr__(self):
                type(self).calls += 1
                return f"Counting({self.label})"

        threads = [Counting(i) for i in range(6)]
        graph = BipartiteGraph(
            edges=[(t, f"O{j}") for t in threads for j in range(5)]
        )
        Counting.calls = 0
        first = reveal_order(graph, seed=9)
        assert Counting.calls == len(threads)
        assert len(first) == graph.num_edges

        # Determinism on mixed-type graphs is unchanged by the caching.
        Counting.calls = 0
        assert reveal_order(graph, seed=9) == first


class TestRunMechanism:
    def test_trajectory_is_monotone_and_bounded(self):
        graph = uniform_bipartite(15, 15, 0.2, seed=3)
        result = run_mechanism_on_graph(PopularityMechanism(), graph, seed=4)
        assert result.events_revealed == graph.num_edges
        assert len(result.size_trajectory) == graph.num_edges
        assert list(result.size_trajectory) == sorted(result.size_trajectory)
        assert result.final_size == result.size_trajectory[-1]
        assert result.final_size == result.sizes[-1]
        assert result.thread_components + result.object_components == result.final_size

    def test_run_on_computation_counts_every_event(self):
        trace = random_trace(5, 5, 40, seed=6)
        result = run_mechanism_on_computation(NaiveMechanism(), trace)
        assert result.events_revealed == trace.num_events
        assert result.final_size == len(set(trace.threads))

    def test_final_size_never_below_offline_optimum(self):
        for seed in range(5):
            graph = uniform_bipartite(12, 12, 0.25, seed=seed)
            optimum = optimal_clock_size(graph)
            for mechanism in (NaiveMechanism(), RandomMechanism(seed=seed), PopularityMechanism()):
                result = run_mechanism_on_graph(mechanism, graph, seed=seed)
                assert result.final_size >= optimum


class TestCompareMechanisms:
    def test_all_mechanisms_see_the_same_reveal_order(self):
        graph = uniform_bipartite(10, 10, 0.3, seed=9)
        results = compare_mechanisms(
            graph,
            {
                "naive": lambda: NaiveMechanism(),
                "naive-again": lambda: NaiveMechanism(),
            },
            seed=1,
        )
        assert results["naive"].final_size == results["naive-again"].final_size
        assert results["naive"].size_trajectory == results["naive-again"].size_trajectory

    def test_include_offline_adds_per_event_optimum_trajectory(self):
        graph = uniform_bipartite(10, 10, 0.2, seed=2)
        results = compare_mechanisms(
            graph, {"popularity": lambda: PopularityMechanism()}, seed=3, include_offline=True
        )
        offline = results["offline"]
        assert offline.final_size == optimal_clock_size(graph)
        assert offline.size_trajectory[-1] == offline.final_size
        # A true per-event optimum starts small and grows; it is no longer
        # the constant final-value line the seed plotted.
        assert offline.size_trajectory[0] == 1
        assert len(set(offline.size_trajectory)) > 1
        assert list(offline.size_trajectory) == sorted(offline.size_trajectory)
        assert results["popularity"].final_size >= offline.final_size

    def test_offline_trajectory_agrees_with_optimum_at_every_prefix(self):
        from repro.graph import BipartiteGraph
        from repro.online import reveal_order

        graph = uniform_bipartite(8, 8, 0.3, seed=11)
        order = reveal_order(graph, seed=12)
        results = compare_mechanisms(
            graph, {"naive": lambda: NaiveMechanism()}, seed=12, include_offline=True
        )
        trajectory = results["offline"].size_trajectory
        prefix = BipartiteGraph()
        for position, (thread, obj) in enumerate(order):
            prefix.add_edge(thread, obj)
            assert trajectory[position] == optimal_clock_size(prefix)

    def test_online_mechanisms_never_dip_below_offline_trajectory(self):
        graph = uniform_bipartite(12, 12, 0.25, seed=7)
        results = compare_mechanisms(
            graph,
            {
                "naive": lambda: NaiveMechanism(),
                "popularity": lambda: PopularityMechanism(),
            },
            seed=8,
            include_offline=True,
        )
        offline = results["offline"].size_trajectory
        for label in ("naive", "popularity"):
            online = results[label].size_trajectory
            assert all(o >= f for o, f in zip(online, offline))
