"""Unit tests for the vector clock protocols (thread, object, mixed).

The heavy correctness artillery (Theorem 2 on random computations) lives in
the property tests; here each protocol is exercised on hand-checked
computations, the paper's running example, and the API edge cases.
"""

from __future__ import annotations

import pytest

from repro.computation import Computation, HappenedBefore, paper_example_trace
from repro.core import (
    ClockComponents,
    VectorClockProtocol,
    mixed_clock_components,
    mixed_clock_protocol,
    thread_clock_components,
    timestamp_with_components,
    timestamp_with_mixed_clock,
    timestamp_with_object_clock,
    timestamp_with_thread_clock,
)
from repro.exceptions import ClockError, ComponentError
from repro.graph import paper_example_graph
from tests.conftest import assert_valid_vector_clock


class TestThreadClock:
    def test_size_equals_thread_count(self, small_computation):
        stamped = timestamp_with_thread_clock(small_computation)
        assert stamped.clock_size == small_computation.num_threads

    def test_validity_on_small_computation(self, small_computation):
        stamped = timestamp_with_thread_clock(small_computation)
        assert_valid_vector_clock(small_computation, stamped.timestamp)

    def test_increments_own_thread_entry(self):
        computation = Computation.from_pairs([("A", "x"), ("A", "x"), ("B", "x")])
        stamped = timestamp_with_thread_clock(computation)
        events = computation.events
        assert stamped[events[0]].value_of("A") == 1
        assert stamped[events[1]].value_of("A") == 2
        # B's first event merged A's history through object x.
        assert stamped[events[2]].value_of("A") == 2
        assert stamped[events[2]].value_of("B") == 1


class TestObjectClock:
    def test_size_equals_object_count(self, small_computation):
        stamped = timestamp_with_object_clock(small_computation)
        assert stamped.clock_size == small_computation.num_objects

    def test_validity_on_small_computation(self, small_computation):
        stamped = timestamp_with_object_clock(small_computation)
        assert_valid_vector_clock(small_computation, stamped.timestamp)

    def test_increments_own_object_entry(self):
        computation = Computation.from_pairs([("A", "x"), ("B", "x"), ("B", "y")])
        stamped = timestamp_with_object_clock(computation)
        events = computation.events
        assert stamped[events[0]].value_of("x") == 1
        assert stamped[events[1]].value_of("x") == 2
        assert stamped[events[2]].value_of("y") == 1
        assert stamped[events[2]].value_of("x") == 2


class TestMixedClock:
    def test_paper_example_components_and_validity(self, paper_trace):
        graph = paper_trace.bipartite_graph()
        stamped = timestamp_with_mixed_clock(paper_trace, {"T2", "O2", "O3"}, graph=graph)
        assert stamped.clock_size == 3
        assert_valid_vector_clock(paper_trace, stamped.timestamp)

    def test_paper_figure3_transitive_ordering(self, paper_trace):
        # [T2,O1] -> [T2,O3] -> [T3,O3]  implies  [T2,O1] -> [T3,O3] (Fig. 3).
        stamped = timestamp_with_mixed_clock(paper_trace, {"T2", "O2", "O3"})
        by_pair = {}
        for event in paper_trace:
            by_pair.setdefault((event.thread, event.obj), event)
        t2_o1 = by_pair[("T2", "O1")]
        t2_o3 = by_pair[("T2", "O3")]
        t3_o3 = by_pair[("T3", "O3")]
        assert stamped.happened_before(t2_o1, t2_o3)
        assert stamped.happened_before(t2_o3, t3_o3)
        assert stamped.happened_before(t2_o1, t3_o3)
        assert stamped.relation(t2_o1, t3_o3) == "before"

    def test_non_cover_components_rejected(self, paper_trace):
        graph = paper_trace.bipartite_graph()
        with pytest.raises(ComponentError):
            mixed_clock_components(graph, {"T2"})  # does not cover (T1, O2) etc.

    def test_non_cover_allowed_without_validation(self, paper_trace):
        graph = paper_trace.bipartite_graph()
        components = mixed_clock_components(graph, {"T2"}, validate=False)
        assert components.size == 1

    def test_thread_based_cover_is_special_case(self, small_computation):
        graph = small_computation.bipartite_graph()
        stamped = timestamp_with_mixed_clock(
            small_computation, set(small_computation.threads), graph=graph
        )
        thread_stamped = timestamp_with_thread_clock(small_computation)
        for event in small_computation:
            assert stamped[event].as_dict() == thread_stamped[event].as_dict()

    def test_uncovered_operation_raises_in_strict_mode(self):
        components = ClockComponents(["A"], [])
        protocol = VectorClockProtocol(components)
        protocol.observe("A", "x")
        with pytest.raises(ComponentError):
            protocol.observe("B", "x")

    def test_non_strict_mode_does_not_raise(self):
        components = ClockComponents(["A"], [])
        protocol = VectorClockProtocol(components, strict=False)
        protocol.observe("A", "x")
        stamp = protocol.observe("B", "x")
        # The uncovered event is merged but not incremented.
        assert stamp.value_of("A") == 1


class TestProtocolLifecycle:
    def test_clocks_start_at_zero(self):
        protocol = VectorClockProtocol(ClockComponents(["A"], ["x"]))
        assert protocol.thread_clock("A").sum() == 0
        assert protocol.object_clock("x").sum() == 0
        assert protocol.events_observed == 0
        assert protocol.size == 2

    def test_observe_updates_both_endpoint_clocks(self):
        protocol = VectorClockProtocol(ClockComponents(["A"], ["x"]))
        stamp = protocol.observe("A", "x")
        assert protocol.thread_clock("A") == stamp
        assert protocol.object_clock("x") == stamp
        assert protocol.events_observed == 1

    def test_both_components_incremented_when_both_present(self):
        protocol = VectorClockProtocol(ClockComponents(["A"], ["x"]))
        stamp = protocol.observe("A", "x")
        assert stamp.value_of("A") == 1
        assert stamp.value_of("x") == 1

    def test_timestamp_computation_requires_fresh_protocol(self, small_computation):
        components = ClockComponents.all_threads(small_computation.threads)
        protocol = VectorClockProtocol(components)
        protocol.observe("A", "x")
        with pytest.raises(ClockError):
            protocol.timestamp_computation(small_computation)

    def test_reset(self, small_computation):
        components = ClockComponents.all_threads(small_computation.threads)
        protocol = VectorClockProtocol(components)
        protocol.observe("A", "x")
        protocol.reset()
        assert protocol.events_observed == 0
        stamped = protocol.timestamp_computation(small_computation)
        assert len(stamped) == small_computation.num_events


class TestTimestampedComputation:
    def test_iteration_and_lookup(self, small_computation):
        stamped = timestamp_with_thread_clock(small_computation)
        assert len(stamped) == len(small_computation)
        pairs = list(stamped)
        assert [event for event, _ in pairs] == list(small_computation.events)
        event = small_computation.events[0]
        assert stamped[event] == stamped.timestamp(event)

    def test_unknown_event_rejected(self, small_computation):
        stamped = timestamp_with_thread_clock(small_computation)
        foreign = Computation.from_pairs([("Z", "q")]).events[0]
        with pytest.raises(ClockError):
            stamped.timestamp(foreign)

    def test_concurrent_and_relation_queries_match_oracle(self, small_computation):
        stamped = timestamp_with_thread_clock(small_computation)
        oracle = HappenedBefore(small_computation)
        for a in small_computation:
            for b in small_computation:
                if a == b:
                    assert not stamped.concurrent(a, b)
                    continue
                assert stamped.concurrent(a, b) == oracle.concurrent(a, b)

    def test_storage_cost(self, small_computation):
        stamped = timestamp_with_thread_clock(small_computation)
        assert stamped.storage_cost() == stamped.clock_size * len(small_computation)

    def test_format_table(self, small_computation):
        stamped = timestamp_with_thread_clock(small_computation)
        text = stamped.format_table()
        assert "clock components" in text
        truncated = stamped.format_table(limit=2)
        assert "more events" in truncated

    def test_timestamp_with_components_helper(self, small_computation):
        components = ClockComponents.all_threads(small_computation.threads)
        stamped = timestamp_with_components(small_computation, components)
        assert stamped.clock_size == 2

    def test_missing_timestamps_rejected(self, small_computation):
        from repro.core.timestamping import TimestampedComputation

        with pytest.raises(ClockError):
            TimestampedComputation(
                small_computation, ClockComponents.all_threads(["A", "B"]), {}
            )
