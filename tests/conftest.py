"""Shared fixtures and oracles for the test suite.

The central correctness statement of the paper is Theorem 2: a clock is a
valid vector clock iff for all events ``s != t`` of the computation,
``s → t  ⇔  s.v < t.v``.  :func:`assert_valid_vector_clock` checks exactly
that against the independent happened-before oracle
(:class:`repro.computation.HappenedBefore`) and is reused by the unit,
integration and property tests for every clock flavour the library ships.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

import pytest

from repro.computation import Computation, HappenedBefore, paper_example_trace
from repro.graph import BipartiteGraph, paper_example_graph


# ---------------------------------------------------------------------------
# Oracles
# ---------------------------------------------------------------------------
def assert_valid_vector_clock(
    computation: Computation,
    timestamp_of: Callable[[object], object],
    oracle: HappenedBefore = None,
) -> None:
    """Assert Theorem 2 (``s → t ⇔ s.v < t.v``) for every ordered event pair.

    ``timestamp_of`` maps an event to any object supporting ``<`` with the
    vector clock semantics (both :class:`repro.core.Timestamp` and
    :class:`repro.online.SparseTimestamp` qualify).
    """
    oracle = oracle or HappenedBefore(computation)
    for s in computation:
        for t in computation:
            if s == t:
                continue
            expected = oracle.happened_before(s, t)
            actual = timestamp_of(s) < timestamp_of(t)
            assert actual == expected, (
                f"vector clock condition violated for {s} vs {t}: "
                f"happened-before={expected}, timestamp<{actual}"
            )


def brute_force_cover_size(graph: BipartiteGraph) -> int:
    """Minimum vertex cover size by exhaustive search (tiny graphs only)."""
    from repro.graph import brute_force_vertex_cover

    return len(brute_force_vertex_cover(graph))


def random_pairs(
    num_threads: int, num_objects: int, num_events: int, seed: int
) -> List[Tuple[str, str]]:
    """A reproducible random (thread, object) pair sequence."""
    rng = random.Random(seed)
    return [
        (f"T{rng.randrange(num_threads)}", f"O{rng.randrange(num_objects)}")
        for _ in range(num_events)
    ]


def small_random_graph(seed: int, max_side: int = 6, density: float = 0.4) -> BipartiteGraph:
    """A small random bipartite graph usable with the brute-force oracles."""
    rng = random.Random(seed)
    n = rng.randint(1, max_side)
    m = rng.randint(1, max_side)
    graph = BipartiteGraph(
        threads=[f"T{i}" for i in range(n)], objects=[f"O{j}" for j in range(m)]
    )
    for i in range(n):
        for j in range(m):
            if rng.random() < density:
                graph.add_edge(f"T{i}", f"O{j}")
    return graph


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------
@pytest.fixture
def paper_graph() -> BipartiteGraph:
    """The thread-object bipartite graph of the paper's Fig. 2."""
    return paper_example_graph()


@pytest.fixture
def paper_trace() -> Computation:
    """The computation of the paper's Fig. 1."""
    return paper_example_trace()


@pytest.fixture
def small_computation() -> Computation:
    """A hand-written computation with known causal structure.

    Two threads sharing one object plus one private object each::

        A: (A, x) (A, shared) (A, x)
        B: (B, shared) (B, y)

    interleaved as  (A,x) (B,shared) (A,shared) (A,x) (B,y).
    """
    return Computation.from_pairs(
        [
            ("A", "x"),
            ("B", "shared"),
            ("A", "shared"),
            ("A", "x"),
            ("B", "y"),
        ]
    )


@pytest.fixture
def medium_random_computation() -> Computation:
    """A medium-sized random computation used by several validity tests."""
    return Computation.from_pairs(random_pairs(6, 8, 120, seed=42))
