"""Unit tests for the maximum matching algorithms."""

from __future__ import annotations

import pytest

from repro.exceptions import MatchingError
from repro.graph import (
    BipartiteGraph,
    chain_bipartite,
    Matching,
    augmenting_path_matching,
    brute_force_matching,
    complete_bipartite,
    hopcroft_karp_matching,
    is_maximum_matching,
    maximum_matching,
    paper_example_graph,
    star_bipartite,
    uniform_bipartite,
    validate_matching,
)

ALGORITHMS = ["hopcroft-karp", "augmenting-path"]


class TestMatchingContainer:
    def test_empty_matching(self):
        matching = Matching()
        assert len(matching) == 0
        assert matching.thread_partner("T1") is None
        assert matching.object_partner("O1") is None

    def test_basic_accessors(self):
        matching = Matching([("T1", "O1"), ("T2", "O2")])
        assert len(matching) == 2
        assert matching.thread_partner("T1") == "O1"
        assert matching.object_partner("O2") == "T2"
        assert matching.is_thread_matched("T1")
        assert not matching.is_thread_matched("T3")
        assert ("T1", "O1") in matching
        assert ("T1", "O2") not in matching
        assert "junk" not in matching
        assert matching.edges == {("T1", "O1"), ("T2", "O2")}
        assert matching.as_mapping() == {"T1": "O1", "T2": "O2"}

    def test_duplicate_thread_rejected(self):
        with pytest.raises(MatchingError):
            Matching([("T1", "O1"), ("T1", "O2")])

    def test_duplicate_object_rejected(self):
        with pytest.raises(MatchingError):
            Matching([("T1", "O1"), ("T2", "O1")])

    def test_unmatched_sets(self):
        graph = BipartiteGraph(
            threads=["T1", "T2", "T3"], objects=["O1", "O2"], edges=[("T1", "O1")]
        )
        matching = Matching([("T1", "O1")])
        assert matching.unmatched_threads(graph) == {"T2", "T3"}
        assert matching.unmatched_objects(graph) == {"O2"}

    def test_equality(self):
        assert Matching([("T1", "O1")]) == Matching([("T1", "O1")])
        assert Matching([("T1", "O1")]) != Matching([("T1", "O2")])
        assert Matching() != "something else"

    def test_validate_matching_rejects_non_edges(self):
        graph = BipartiteGraph(edges=[("T1", "O1")])
        with pytest.raises(MatchingError):
            validate_matching(graph, Matching([("T1", "O2")]))


@pytest.mark.parametrize("algorithm", ALGORITHMS)
class TestMaximumMatchingAlgorithms:
    def test_empty_graph(self, algorithm):
        assert len(maximum_matching(BipartiteGraph(), algorithm=algorithm)) == 0

    def test_single_edge(self, algorithm):
        graph = BipartiteGraph(edges=[("T1", "O1")])
        matching = maximum_matching(graph, algorithm=algorithm)
        assert len(matching) == 1
        assert ("T1", "O1") in matching

    def test_star_graph(self, algorithm):
        # A star can match only its centre once.
        graph = star_bipartite(1, 8)
        assert len(maximum_matching(graph, algorithm=algorithm)) == 1
        graph = star_bipartite(8, 1, center_is_thread=False)
        assert len(maximum_matching(graph, algorithm=algorithm)) == 1

    def test_complete_graph(self, algorithm):
        graph = complete_bipartite(4, 7)
        matching = maximum_matching(graph, algorithm=algorithm)
        assert len(matching) == 4
        validate_matching(graph, matching)

    def test_perfect_matching_on_disjoint_edges(self, algorithm):
        edges = [(f"T{i}", f"O{i}") for i in range(10)]
        graph = BipartiteGraph(edges=edges)
        matching = maximum_matching(graph, algorithm=algorithm)
        assert len(matching) == 10
        assert matching.edges == set(edges)

    def test_requires_augmenting_path_flip(self, algorithm):
        # Greedy matching that takes (T1,O1) first must be augmented:
        # T1-O1, T1-O2, T2-O1 has a maximum matching of size 2.
        graph = BipartiteGraph(edges=[("T1", "O1"), ("T1", "O2"), ("T2", "O1")])
        matching = maximum_matching(graph, algorithm=algorithm)
        assert len(matching) == 2
        assert is_maximum_matching(graph, matching)

    def test_paper_example_matching_size(self, algorithm):
        matching = maximum_matching(paper_example_graph(), algorithm=algorithm)
        assert len(matching) == 3  # equals the minimum vertex cover size
        assert is_maximum_matching(paper_example_graph(), matching)

    def test_matching_is_valid_and_maximum_on_random_graphs(self, algorithm):
        for seed in range(8):
            graph = uniform_bipartite(12, 15, 0.2, seed=seed)
            matching = maximum_matching(graph, algorithm=algorithm)
            validate_matching(graph, matching)
            assert is_maximum_matching(graph, matching)

    def test_isolated_vertices_ignored(self, algorithm):
        graph = BipartiteGraph(
            threads=["T1", "T2"], objects=["O1", "O2"], edges=[("T1", "O1")]
        )
        assert len(maximum_matching(graph, algorithm=algorithm)) == 1


class TestCrossValidation:
    def test_hopcroft_karp_matches_simple_matcher_size(self):
        for seed in range(15):
            graph = uniform_bipartite(20, 18, 0.15, seed=seed)
            hk = hopcroft_karp_matching(graph)
            simple = augmenting_path_matching(graph)
            assert len(hk) == len(simple)

    def test_against_brute_force_on_tiny_graphs(self):
        from tests.conftest import small_random_graph

        for seed in range(20):
            graph = small_random_graph(seed, max_side=4, density=0.5)
            if graph.num_edges > 12:
                continue
            expected = len(brute_force_matching(graph))
            assert len(hopcroft_karp_matching(graph)) == expected
            assert len(augmenting_path_matching(graph)) == expected

    def test_against_networkx(self):
        networkx = pytest.importorskip("networkx")
        for seed in range(10):
            graph = uniform_bipartite(15, 15, 0.2, seed=seed)
            nx_graph = networkx.Graph()
            nx_graph.add_nodes_from(graph.threads, bipartite=0)
            nx_graph.add_nodes_from(graph.objects, bipartite=1)
            nx_graph.add_edges_from(graph.edges())
            expected = len(
                networkx.bipartite.maximum_matching(nx_graph, top_nodes=graph.threads)
            ) // 2
            assert len(hopcroft_karp_matching(graph)) == expected


class TestBruteForce:
    def test_brute_force_guard(self):
        graph = complete_bipartite(5, 5)  # 25 edges > default guard of 20
        with pytest.raises(MatchingError):
            brute_force_matching(graph)

    def test_brute_force_empty(self):
        assert len(brute_force_matching(BipartiteGraph())) == 0

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            maximum_matching(BipartiteGraph(), algorithm="quantum")


class TestDeepAugmentingPaths:
    """Regression tests: the matchers must not recurse once per path hop.

    A chain graph's augmenting paths are ``O(V)`` hops long, so the old
    recursive matchers blew Python's recursion limit on chains of around a
    thousand threads.  The iterative (explicit-stack) forms must match a
    5000-thread chain comfortably under the default limit.
    """

    @pytest.mark.parametrize("matcher", [augmenting_path_matching, hopcroft_karp_matching])
    def test_5000_thread_chain_does_not_overflow_the_stack(self, matcher):
        graph = chain_bipartite(10_000)  # 5000 threads + 5000 objects
        assert graph.num_threads == 5000
        matching = matcher(graph)
        # The perfect matching T_i - O_i is the unique maximum one.
        assert len(matching) == 5000

    @pytest.mark.parametrize("matcher", [augmenting_path_matching, hopcroft_karp_matching])
    def test_chain_matchings_are_maximum(self, matcher):
        for vertices in (2, 3, 7, 40, 41):
            graph = chain_bipartite(vertices)
            matching = matcher(graph)
            assert len(matching) == vertices // 2
            assert is_maximum_matching(graph, matching)
