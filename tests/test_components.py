"""Unit tests for :class:`repro.core.ClockComponents`."""

from __future__ import annotations

import pytest

from repro.core import ClockComponents
from repro.exceptions import ComponentError
from repro.graph import BipartiteGraph, minimum_vertex_cover, paper_example_graph


class TestConstruction:
    def test_thread_and_object_components(self):
        components = ClockComponents(["T1", "T2"], ["O1"])
        assert components.size == 3
        assert components.thread_components == {"T1", "T2"}
        assert components.object_components == {"O1"}
        assert list(components) == ["T1", "T2", "O1"]
        assert len(components) == 3

    def test_duplicates_within_a_side_are_collapsed(self):
        components = ClockComponents(["T1", "T1"], ["O1", "O1"])
        assert components.size == 2

    def test_overlap_between_sides_rejected(self):
        with pytest.raises(ComponentError):
            ClockComponents(["X"], ["X"])

    def test_all_threads_and_all_objects(self):
        threads = ClockComponents.all_threads(["T1", "T2", "T3"])
        assert threads.size == 3
        assert threads.object_components == frozenset()
        objects = ClockComponents.all_objects(["O1", "O2"])
        assert objects.thread_components == frozenset()
        assert objects.size == 2

    def test_from_cover_classifies_sides(self):
        graph = paper_example_graph()
        cover = minimum_vertex_cover(graph)
        components = ClockComponents.from_cover(graph, cover)
        assert components.thread_components == {"T2"}
        assert components.object_components == {"O2", "O3"}

    def test_from_cover_rejects_unknown_vertex(self):
        graph = BipartiteGraph(edges=[("T1", "O1")])
        with pytest.raises(ComponentError):
            ClockComponents.from_cover(graph, {"T1", "mystery"})


class TestQueries:
    def test_membership_and_index(self):
        components = ClockComponents(["T1"], ["O1", "O2"])
        assert "T1" in components
        assert "O2" in components
        assert "T9" not in components
        assert components.index_of("T1") == 0
        assert components.index_of("O2") == 2
        with pytest.raises(ComponentError):
            components.index_of("T9")

    def test_side_predicates(self):
        components = ClockComponents(["T1"], ["O1"])
        assert components.is_thread_component("T1")
        assert not components.is_thread_component("O1")
        assert components.is_object_component("O1")
        assert not components.is_object_component("T1")

    def test_equality_and_hash_ignore_order(self):
        a = ClockComponents(["T1", "T2"], ["O1"])
        b = ClockComponents(["T2", "T1"], ["O1"])
        assert a == b
        assert hash(a) == hash(b)
        assert a != ClockComponents(["T1"], ["O1"])
        assert a != "something"

    def test_summary(self):
        components = ClockComponents(["T1"], ["O1", "O2"])
        assert components.summary() == {
            "size": 3,
            "thread_components": 1,
            "object_components": 2,
        }


class TestCoverage:
    def test_covers_pair(self):
        components = ClockComponents(["T1"], ["O1"])
        assert components.covers_pair("T1", "O9")
        assert components.covers_pair("T9", "O1")
        assert not components.covers_pair("T9", "O9")

    def test_covers_graph(self):
        graph = BipartiteGraph(edges=[("T1", "O1"), ("T2", "O1")])
        assert ClockComponents([], ["O1"]).covers_graph(graph)
        assert not ClockComponents(["T1"], []).covers_graph(graph)

    def test_validate_covers_graph(self):
        graph = BipartiteGraph(edges=[("T1", "O1"), ("T2", "O2")])
        ClockComponents(["T1", "T2"], []).validate_covers_graph(graph)
        with pytest.raises(ComponentError):
            ClockComponents(["T1"], []).validate_covers_graph(graph)


class TestExtension:
    def test_extended_appends_new_components(self):
        components = ClockComponents(["T1"], ["O1"])
        extended = components.extended(thread_components=["T2"], object_components=["O2"])
        assert extended.size == 4
        assert components.size == 2  # original untouched
        assert "T2" in extended and "O2" in extended

    def test_extended_ignores_existing(self):
        components = ClockComponents(["T1"], ["O1"])
        extended = components.extended(thread_components=["T1"], object_components=["O1"])
        assert extended == components
