"""Integration tests: whole pipelines across modules, mirroring real usage."""

from __future__ import annotations

import pytest

from repro import (
    optimal_components_for_computation,
    paper_example_trace,
    timestamp_offline,
)
from repro.analysis import density_sweep, node_sweep, scenario_comparison
from repro.baselines import chain_clock_size
from repro.computation import (
    HappenedBefore,
    lock_hierarchy_trace,
    producer_consumer_trace,
    trace_from_graph,
    work_stealing_trace,
)
from repro.core import (
    timestamp_with_object_clock,
    timestamp_with_thread_clock,
)
from repro.graph import nonuniform_bipartite, uniform_bipartite
from repro.offline import optimal_clock_size
from repro.online import (
    NaiveMechanism,
    OnlineClockProtocol,
    PopularityMechanism,
    RandomMechanism,
    compare_mechanisms,
)
from repro.runtime import ConcurrentSystem, acquire, detect_races, increment, release
from tests.conftest import assert_valid_vector_clock


class TestPaperRunningExample:
    """Sections I and III walk one computation end to end; so do we."""

    def test_full_offline_pipeline_matches_paper(self):
        trace = paper_example_trace()
        result = optimal_components_for_computation(trace)
        # The paper's Fig. 2 cover: {T2, O2, O3}, size 3 < min(4, 4).
        assert result.cover == {"T2", "O2", "O3"}
        assert result.clock_size == 3
        assert result.clock_size < min(trace.num_threads, 4)
        stamped = result.protocol().timestamp_computation(trace)
        assert_valid_vector_clock(trace, stamped.timestamp)

    def test_all_three_clock_flavours_are_consistent(self):
        trace = paper_example_trace()
        oracle = HappenedBefore(trace)
        mixed = timestamp_offline(trace)
        threads = timestamp_with_thread_clock(trace)
        objects = timestamp_with_object_clock(trace)
        for a in trace:
            for b in trace:
                if a == b:
                    continue
                expected = oracle.happened_before(a, b)
                assert mixed.happened_before(a, b) == expected
                assert threads.happened_before(a, b) == expected
                assert objects.happened_before(a, b) == expected
        assert mixed.clock_size <= threads.clock_size
        assert mixed.clock_size <= objects.clock_size


class TestStructuredWorkloads:
    """The workloads the introduction motivates, end to end."""

    @pytest.mark.parametrize(
        "trace_factory",
        [
            lambda: producer_consumer_trace(seed=3),
            lambda: work_stealing_trace(seed=3),
            lambda: lock_hierarchy_trace(seed=3),
        ],
        ids=["producer-consumer", "work-stealing", "lock-hierarchy"],
    )
    def test_offline_clock_valid_and_no_larger_than_baselines(self, trace_factory):
        trace = trace_factory()
        stamped = timestamp_offline(trace)
        assert stamped.clock_size <= min(trace.num_threads, trace.num_objects)
        # Validity on a sample of event pairs (full O(n^2) check is done on
        # smaller traces in the property tests).
        oracle = HappenedBefore(trace)
        events = trace.events[:: max(1, len(trace) // 20)]
        for a in events:
            for b in events:
                if a != b:
                    assert stamped.happened_before(a, b) == oracle.happened_before(a, b)

    def test_mixed_clock_wins_on_lock_heavy_workload(self):
        # A few locks dominate the cover: the mixed clock should be far
        # smaller than the thread-based clock.
        trace = lock_hierarchy_trace(num_threads=10, num_locks=2, num_accounts=40,
                                     transfers_per_thread=10, seed=5)
        optimum = optimal_clock_size(trace.bipartite_graph())
        assert optimum <= trace.num_threads
        assert optimum < trace.num_objects

    def test_online_and_offline_agree_on_causality(self):
        trace = producer_consumer_trace(num_producers=2, num_consumers=2,
                                        items_per_producer=8, seed=7)
        online = OnlineClockProtocol(PopularityMechanism())
        online.timestamp_computation(trace)
        offline = timestamp_offline(trace)
        events = trace.events[:: max(1, len(trace) // 25)]
        for a in events:
            for b in events:
                if a != b:
                    assert online.happened_before(a, b) == offline.happened_before(a, b)
        assert online.clock_size >= offline.clock_size

    def test_chain_clock_comparison(self):
        trace = work_stealing_trace(num_workers=6, tasks_per_worker=15, seed=11)
        chains = chain_clock_size(trace)
        optimum = optimal_clock_size(trace.bipartite_graph())
        assert optimum <= min(trace.num_threads, trace.num_objects)
        assert chains >= 1


class TestRuntimeToDetectorPipeline:
    def test_trace_record_then_analyse(self):
        system = ConcurrentSystem()
        system.add_object("balance", 100)
        system.add_object("audit-log", 0)
        for name in ("teller-0", "teller-1", "teller-2"):
            steps = []
            for _ in range(4):
                steps.extend(
                    [acquire("bank-lock"), increment("balance", 10), release("bank-lock"),
                     increment("audit-log")]
                )
            system.add_thread(name, steps)
        result = system.run(seed=13)
        assert result.final_values["balance"] == 100 + 3 * 4 * 10

        report = detect_races(result.computation, sync_objects=result.sync_objects)
        assert "balance" not in report.racy_objects
        assert "audit-log" in report.racy_objects
        # The sync skeleton needs a single mixed component (the lock).
        assert report.mixed_clock_size == 1
        assert report.thread_clock_size == 3

    def test_timestamps_explain_race_verdicts(self):
        system = ConcurrentSystem()
        system.add_object("shared", 0)
        system.add_thread("A", [increment("shared")])
        system.add_thread("B", [increment("shared")])
        result = system.run(seed=1)
        report = detect_races(result.computation, sync_objects=[])
        assert report.race_count == 1
        # Thread-clock timestamps of the two racing events must be concurrent
        # ... under the sync-only relation, which here has no sync at all, so
        # we check against a computation stripped of the shared-object edges:
        race = report.races[0]
        assert race.first.thread != race.second.thread


class TestEvaluationPipelines:
    def test_small_density_sweep_runs_and_orders_series(self):
        result = density_sweep([0.05, 0.3], num_threads=20, num_objects=20,
                               trials=2, include_offline=True)
        for point in result.points:
            assert point.offline.mean <= point.sizes["popularity"].mean + 1e-9
            assert point.offline.mean <= point.sizes["naive"].mean + 1e-9

    def test_small_node_sweep_runs(self):
        result = node_sweep([10, 25], density=0.1, trials=2, include_offline=True)
        assert result.series("thread_clock") == (10.0, 25.0)
        assert len(result.series("offline")) == 2

    def test_compare_mechanisms_on_both_scenarios(self):
        for graph in (
            uniform_bipartite(25, 25, 0.08, seed=3),
            nonuniform_bipartite(25, 25, 0.08, seed=3),
        ):
            results = compare_mechanisms(
                graph,
                {
                    "naive": lambda: NaiveMechanism(),
                    "random": lambda: RandomMechanism(seed=4),
                    "popularity": lambda: PopularityMechanism(),
                },
                seed=5,
                include_offline=True,
            )
            assert results["offline"].final_size <= min(
                results[label].final_size for label in ("naive", "random", "popularity")
            )

    def test_scenario_comparison_includes_all_columns(self):
        graph = uniform_bipartite(15, 15, 0.1, seed=2)
        table = scenario_comparison({"uniform-graph": trace_from_graph(graph, seed=2)})
        row = table["uniform-graph"]
        for column in ("thread_clock", "object_clock", "offline", "naive", "random", "popularity"):
            assert column in row
