"""Unit tests for the König-Egerváry minimum vertex cover (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.exceptions import VertexCoverError
from repro.graph import (
    BipartiteGraph,
    Matching,
    alternating_reachable,
    brute_force_vertex_cover,
    complete_bipartite,
    hopcroft_karp_matching,
    is_vertex_cover,
    konig_vertex_cover,
    maximum_matching,
    minimum_vertex_cover,
    paper_example_graph,
    star_bipartite,
    uniform_bipartite,
    validate_vertex_cover,
)
from tests.conftest import small_random_graph


class TestCoverPredicates:
    def test_is_vertex_cover(self):
        graph = BipartiteGraph(edges=[("T1", "O1"), ("T2", "O1"), ("T2", "O2")])
        assert is_vertex_cover(graph, {"T2", "O1"})
        assert is_vertex_cover(graph, {"T1", "T2"})
        assert not is_vertex_cover(graph, {"T1", "O2"})
        assert is_vertex_cover(BipartiteGraph(), set())

    def test_validate_vertex_cover_raises_on_uncovered_edge(self):
        graph = BipartiteGraph(edges=[("T1", "O1"), ("T2", "O2")])
        with pytest.raises(VertexCoverError):
            validate_vertex_cover(graph, {"T1"})

    def test_validate_vertex_cover_rejects_unknown_vertices(self):
        graph = BipartiteGraph(edges=[("T1", "O1")])
        with pytest.raises(VertexCoverError):
            validate_vertex_cover(graph, {"T1", "mystery"})


class TestKonigConstruction:
    def test_empty_graph(self):
        assert konig_vertex_cover(BipartiteGraph()) == frozenset()

    def test_single_edge(self):
        graph = BipartiteGraph(edges=[("T1", "O1")])
        cover = minimum_vertex_cover(graph)
        assert len(cover) == 1
        assert is_vertex_cover(graph, cover)

    def test_star_graph_covers_with_single_center(self):
        graph = star_bipartite(1, 10)
        cover = minimum_vertex_cover(graph)
        assert cover == {"T0"}
        graph = star_bipartite(10, 1, center_is_thread=False)
        cover = minimum_vertex_cover(graph)
        assert cover == {"O0"}

    def test_complete_graph_cover_is_smaller_side(self):
        graph = complete_bipartite(3, 6)
        cover = minimum_vertex_cover(graph)
        assert len(cover) == 3
        assert cover == graph.threads

    def test_paper_example_cover(self):
        # Fig. 2: the minimum vertex cover is {T2, O2, O3}.
        cover = minimum_vertex_cover(paper_example_graph())
        assert cover == {"T2", "O2", "O3"}

    def test_cover_size_equals_matching_size(self):
        for seed in range(10):
            graph = uniform_bipartite(15, 12, 0.2, seed=seed)
            matching = hopcroft_karp_matching(graph)
            cover = konig_vertex_cover(graph, matching)
            validate_vertex_cover(graph, cover)
            assert len(cover) == len(matching)

    def test_alternating_reachable_contains_unmatched_threads(self):
        graph = BipartiteGraph(
            edges=[("T1", "O1"), ("T2", "O1"), ("T3", "O2")]
        )
        matching = maximum_matching(graph)
        reachable = alternating_reachable(graph, matching)
        for thread in matching.unmatched_threads(graph):
            assert thread in reachable

    def test_konig_with_explicit_matching_validates_it(self):
        graph = BipartiteGraph(edges=[("T1", "O1")])
        from repro.exceptions import MatchingError

        with pytest.raises(MatchingError):
            konig_vertex_cover(graph, Matching([("T1", "O2")]))

    def test_cover_never_larger_than_either_side(self):
        for seed in range(10):
            graph = uniform_bipartite(10, 14, 0.3, seed=seed)
            cover = minimum_vertex_cover(graph)
            assert len(cover) <= min(graph.num_threads, graph.num_objects)

    def test_cover_with_both_matcher_backends_agrees(self):
        for seed in range(6):
            graph = uniform_bipartite(12, 12, 0.25, seed=seed)
            a = minimum_vertex_cover(graph, algorithm="hopcroft-karp")
            b = minimum_vertex_cover(graph, algorithm="augmenting-path")
            assert len(a) == len(b)


class TestAgainstBruteForce:
    def test_minimum_size_matches_brute_force(self):
        for seed in range(25):
            graph = small_random_graph(seed, max_side=5, density=0.45)
            if graph.num_vertices > 10:
                continue
            expected = len(brute_force_vertex_cover(graph))
            assert len(minimum_vertex_cover(graph)) == expected

    def test_brute_force_guard(self):
        graph = complete_bipartite(10, 10)
        with pytest.raises(VertexCoverError):
            brute_force_vertex_cover(graph)

    def test_brute_force_simple(self):
        graph = BipartiteGraph(edges=[("T1", "O1"), ("T2", "O1")])
        assert brute_force_vertex_cover(graph) == {"O1"}
