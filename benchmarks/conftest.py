"""Pytest fixtures for the benchmark harness.

Each benchmark module regenerates one table/figure of the paper's
evaluation (or one extra ablation).  Conventions:

* the expensive sweep is executed exactly once per benchmark via
  ``benchmark.pedantic(..., rounds=1, iterations=1)`` so that
  ``pytest benchmarks/ --benchmark-only`` reports the wall-clock cost of
  regenerating the figure;
* the resulting series/tables are printed and also written to
  ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote them.

Shared constants (sweep ranges, trial counts) live in ``_common.py``.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from _common import write_json_result, write_result  # noqa: E402


def pytest_addoption(parser):
    """Register ``--smoke``: shrink every sweep for a fast CI smoke pass.

    The flag itself is read by ``_common.py`` at import time (the sweep
    constants parametrise tests during collection); registering it here
    just keeps pytest from rejecting the unknown option.
    """
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="run shrunken benchmark sweeps (harness smoke test)",
    )
    parser.addoption(
        "--json",
        default=None,
        metavar="PATH",
        help="directory for machine-readable BENCH_<name>.json results "
        "(default: benchmarks/results; read by _common.py at import time)",
    )


@pytest.fixture
def record_table():
    """Fixture handing benchmarks the :func:`_common.write_result` helper."""
    return write_result


@pytest.fixture
def record_json():
    """Fixture handing benchmarks the :func:`_common.write_json_result` helper."""
    return write_json_result
