"""Extra experiment E5: maximum-matching and offline-pipeline scaling.

The paper relies on Hopcroft-Karp's ``O(E * sqrt(V))`` bound for the offline
algorithm.  This benchmark measures the two matcher implementations and the
full offline pipeline (matching + König cover) on growing random graphs so
the cost of "computing the optimal clock" is documented alongside the size
results.  pytest-benchmark timings are the primary output; a summary table
of matching sizes is also written for EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.graph import (
    augmenting_path_matching,
    hopcroft_karp_matching,
    uniform_bipartite,
)
from repro.offline import optimal_components_for_graph

from _common import write_result

SIZES = [50, 100, 200, 400]
#: Average degree kept constant across sizes so the graphs stay in the
#: sparse regime the paper targets (the interesting one for mixed clocks);
#: the per-pair edge probability is AVERAGE_DEGREE / size.
AVERAGE_DEGREE = 3.0


@pytest.fixture(scope="module")
def graphs():
    return {
        size: uniform_bipartite(size, size, AVERAGE_DEGREE / size, seed=size)
        for size in SIZES
    }


@pytest.mark.benchmark(group="matching-scaling")
@pytest.mark.parametrize("size", SIZES)
def test_hopcroft_karp_scaling(benchmark, graphs, size):
    graph = graphs[size]
    matching = benchmark(hopcroft_karp_matching, graph)
    assert len(matching) <= size


@pytest.mark.benchmark(group="matching-scaling")
@pytest.mark.parametrize("size", SIZES)
def test_augmenting_path_scaling(benchmark, graphs, size):
    graph = graphs[size]
    matching = benchmark(augmenting_path_matching, graph)
    assert len(matching) == len(hopcroft_karp_matching(graph))


@pytest.mark.benchmark(group="offline-pipeline")
@pytest.mark.parametrize("size", SIZES)
def test_full_offline_pipeline_scaling(benchmark, graphs, size):
    graph = graphs[size]
    result = benchmark(optimal_components_for_graph, graph)
    assert result.clock_size == len(result.matching)


@pytest.mark.benchmark(group="matching-scaling")
def test_record_matching_summary(benchmark, graphs, record_table):
    def build_rows():
        rows = []
        for size, graph in graphs.items():
            result = optimal_components_for_graph(graph)
            rows.append(
                {
                    "nodes_per_side": size,
                    "edges": graph.num_edges,
                    "optimal_clock": result.clock_size,
                    "thread_components": result.thread_component_count,
                    "object_components": result.object_component_count,
                    "naive": min(graph.num_threads, graph.num_objects),
                }
            )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    record_table("matching_scaling_summary", format_table(rows))
