"""Extra experiment E5: maximum-matching and offline-pipeline scaling.

The paper relies on Hopcroft-Karp's ``O(E * sqrt(V))`` bound for the offline
algorithm.  This benchmark measures the two matcher implementations and the
full offline pipeline (matching + König cover) on growing random graphs so
the cost of "computing the optimal clock" is documented alongside the size
results.  pytest-benchmark timings are the primary output; a summary table
of matching sizes is also written for EXPERIMENTS.md.

Two scaling variants ride along:

* a chain graph of ``CHAIN_VERTICES`` total vertices (10k by default) -
  the worst case for augmenting-path *length*, which the old recursive
  matchers could not finish at all (``RecursionError`` at ~1k threads);
* the incremental engine replaying a full reveal order, measuring the
  cost of the per-event offline-optimum trajectory against one
  from-scratch Hopcroft-Karp per prefix.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import format_table
from repro.graph import (
    IncrementalMatching,
    augmenting_path_matching,
    chain_bipartite,
    hopcroft_karp_matching,
    incremental_optimum_trajectory,
    uniform_bipartite,
)
from repro.offline import optimal_components_for_graph

from _common import CHAIN_VERTICES, MATCHING_SIZES, write_result

SIZES = MATCHING_SIZES
#: Average degree kept constant across sizes so the graphs stay in the
#: sparse regime the paper targets (the interesting one for mixed clocks);
#: the per-pair edge probability is AVERAGE_DEGREE / size.
AVERAGE_DEGREE = 3.0


@pytest.fixture(scope="module")
def graphs():
    return {
        size: uniform_bipartite(size, size, AVERAGE_DEGREE / size, seed=size)
        for size in SIZES
    }


@pytest.fixture(scope="module")
def chain_graph():
    return chain_bipartite(CHAIN_VERTICES)


@pytest.mark.benchmark(group="matching-scaling")
@pytest.mark.parametrize("size", SIZES)
def test_hopcroft_karp_scaling(benchmark, graphs, size):
    graph = graphs[size]
    matching = benchmark(hopcroft_karp_matching, graph)
    assert len(matching) <= size


@pytest.mark.benchmark(group="matching-scaling")
@pytest.mark.parametrize("size", SIZES)
def test_augmenting_path_scaling(benchmark, graphs, size):
    graph = graphs[size]
    matching = benchmark(augmenting_path_matching, graph)
    assert len(matching) == len(hopcroft_karp_matching(graph))


@pytest.mark.benchmark(group="matching-scaling-chain")
@pytest.mark.parametrize(
    "matcher", [hopcroft_karp_matching, augmenting_path_matching], ids=lambda f: f.__name__
)
def test_chain_graph_scaling(benchmark, chain_graph, matcher):
    # Augmenting paths here are O(V) hops long; completing at all is the
    # regression being guarded (the recursive matchers blew the stack).
    matching = benchmark.pedantic(matcher, args=(chain_graph,), rounds=1, iterations=1)
    assert len(matching) == CHAIN_VERTICES // 2


@pytest.mark.benchmark(group="matching-scaling-chain")
def test_incremental_trajectory_on_chain(benchmark, chain_graph):
    edges = list(chain_graph.edges())
    random.Random(97).shuffle(edges)

    def replay():
        return incremental_optimum_trajectory(edges)

    trajectory = benchmark.pedantic(replay, rounds=1, iterations=1)
    assert len(trajectory) == chain_graph.num_edges
    assert trajectory[-1] == CHAIN_VERTICES // 2


@pytest.mark.benchmark(group="matching-scaling-incremental")
@pytest.mark.parametrize("size", SIZES)
def test_incremental_trajectory_scaling(benchmark, graphs, size):
    graph = graphs[size]
    edges = sorted(graph.edges(), key=str)
    random.Random(size).shuffle(edges)

    def replay():
        return IncrementalMatching(edges)

    engine = benchmark(replay)
    assert engine.size == len(hopcroft_karp_matching(graph))


@pytest.mark.benchmark(group="offline-pipeline")
@pytest.mark.parametrize("size", SIZES)
def test_full_offline_pipeline_scaling(benchmark, graphs, size):
    graph = graphs[size]
    result = benchmark(optimal_components_for_graph, graph)
    assert result.clock_size == len(result.matching)


@pytest.mark.benchmark(group="matching-scaling")
def test_record_matching_summary(benchmark, graphs, record_table):
    def build_rows():
        rows = []
        for size, graph in graphs.items():
            result = optimal_components_for_graph(graph)
            rows.append(
                {
                    "nodes_per_side": size,
                    "edges": graph.num_edges,
                    "optimal_clock": result.clock_size,
                    "thread_components": result.thread_component_count,
                    "object_components": result.object_component_count,
                    "naive": min(graph.num_threads, graph.num_objects),
                }
            )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    record_table("matching_scaling_summary", format_table(rows))
