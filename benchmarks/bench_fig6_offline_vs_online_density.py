"""Figure 6: offline optimum vs online Popularity vs Naive, sweeping density.

Paper setup: 50 nodes per side, density swept; the offline algorithm
(minimum vertex cover) is compared with the online Popularity mechanism and
the Naive baseline.

Expected shape (Section V, third evaluation):

* the offline optimum is the smallest series everywhere;
* the Naive clock is a flat line at n = 50 and the offline algorithm is
  clearly below it at low density;
* Popularity sits between the optimum and Naive, and the gap to the optimum
  widens as density grows (Popularity is "not suitable for relatively dense
  graphs").
"""

from __future__ import annotations

import pytest

from repro.analysis import density_sweep, format_sweep
from repro.computation import GRAPH, REGISTRY

from _common import FIG4_DENSITIES, FIG4_NODES, TRIALS


def _run(scenario: str):
    return density_sweep(
        FIG4_DENSITIES,
        num_threads=FIG4_NODES,
        num_objects=FIG4_NODES,
        scenario=scenario,
        trials=TRIALS,
        base_seed=6_000,
        include_offline=True,
    )


#: Families with paper-derived shape assertions; other registered families
#: still run the sweep but are only held to the weak-duality invariants.
PAPER_SCENARIOS = ("uniform", "nonuniform")


@pytest.mark.benchmark(group="fig6-offline-vs-online-density")
@pytest.mark.parametrize("scenario", REGISTRY.names(GRAPH))
def test_fig6_offline_vs_online_vs_density(benchmark, record_table, scenario):
    # Registry-driven: weak duality (offline optimum below every online
    # mechanism) is family-independent, so every registered family runs
    # the full sweep and the duality checks.
    result = benchmark.pedantic(_run, args=(scenario,), rounds=1, iterations=1)
    record_table(f"fig6_offline_vs_online_density_{scenario}", format_sweep(result))

    n = FIG4_NODES
    gaps = []
    for point in result.points:
        offline = point.offline.mean
        popularity = point.sizes["popularity"].mean
        # Offline optimum is a lower bound for every mechanism and for min(n, m).
        assert offline <= popularity + 1e-9
        assert offline <= point.sizes["naive"].mean + 1e-9
        assert offline <= n
        gaps.append(popularity - offline)
    if scenario in PAPER_SCENARIOS:
        # Empirical shapes from the paper's figures (not invariants - a
        # newly registered family is free to violate them).
        # The offline algorithm beats the flat Naive line at low density ...
        assert result.points[0].offline.mean < n
        # ... and the Popularity-vs-optimal gap grows with density (compare
        # the sparse and dense ends of the sweep).
        assert gaps[-1] > gaps[0]
