"""Extra experiment E10: chunked hot-path pipeline vs per-event dispatch.

The ROADMAP's two hot-loop items ("push the fast kernel further",
"scale the hot loop further") meet here: one thread-churn monitoring
configuration - mechanisms growing their clocks *and* a timestamping
stage actually minting a stamp per event per mechanism - is executed
three ways over the same stream:

* ``per-event`` - the classic loop: one Python call per event per layer;
* ``batched`` + ``python`` backend - runs of consecutive inserts flow
  through ``observe_batch`` / ``advance_batch`` with the slot-delta
  pure-Python kernel loop;
* ``batched`` + ``numpy`` backend (skipped when numpy is absent) - the
  same pipeline with the kernel's working vectors array-resident.

Assertions, in CI via ``--smoke``:

* every variant produces the *identical* fingerprint - including the
  per-label stamp digests, so the backends provably mint the same
  timestamps;
* the chunked pipeline is never slower than per-event dispatch;
* with the numpy backend available, the chunked pipeline clears the
  acceptance bar: **>= 5x events/sec over the per-event path** at full
  scale (>= 3x under ``--smoke``, where the 100k-event stream leaves
  the resident-array cache less warm-up to amortise).  The pure-Python
  chunked pipeline alone does not reach that on this merge-heavy
  stream (random thread/object pairing defeats the slot-delta fast
  paths; an O(k) element-wise max per event remains), which is exactly
  why the numpy backend exists and why it is gated rather than
  required.

A second test crosses ``{per-event, batched} x {python, numpy} x
--jobs {1, N}`` on a small engine run (offline optimum and sliding
window included) and asserts one fingerprint for all combinations.
"""

from __future__ import annotations

import time

import pytest

from repro.core.kernel import numpy_available
from repro.engine import EngineConfig, run_engine
from repro.engine.results import EngineResult
from repro.engine.runner import run_shard
from repro.obs import MetricsRegistry, install
from repro.obs.exporters import metrics_document

from _common import (
    PIPELINE_CHUNK,
    PIPELINE_EVENTS,
    PIPELINE_MATRIX_EVENTS,
    PIPELINE_MATRIX_JOBS,
    PIPELINE_NODES,
    SMOKE,
)

#: The mechanism labels of the head-to-head: the paper's deterministic
#: baseline, its popularity policy and the hybrid recipe - three clocks
#: to grow and three timestamping streams to mint per event.
MECHANISMS = ("naive", "popularity", "hybrid")

#: The acceptance bar (chunked vs per-event, best available backend).
#: Full scale is the resident-array target; the smoke stream is 12x
#: shorter, so the cross-batch cache amortises less warm-up and the bar
#: is correspondingly lower (measured ~5x smoke / ~6x full on an
#: unloaded core; the slack absorbs shared-CI scheduling noise).
SPEEDUP_BAR = 3.0 if SMOKE else 5.0

BASE = dict(
    scenario="thread-churn",
    num_threads=PIPELINE_NODES,
    num_objects=PIPELINE_NODES,
    density=0.1,
    num_events=PIPELINE_EVENTS,
    seed=10_500,
    num_shards=1,
    chunk_size=PIPELINE_CHUNK,
    mechanisms=MECHANISMS,
    include_offline=False,
    timestamps=True,
)

VARIANTS = [("per-event", "python"), ("batched", "python")] + (
    [("batched", "numpy")] if numpy_available() else []
)


def _single_shard_result(config: EngineConfig):
    """Run the one-shard config and wrap the partial for fingerprinting."""
    partial = run_shard(config, 0)
    return EngineResult(
        scenario=config.scenario,
        num_shards=config.num_shards,
        strategy=config.strategy,
        seed=config.seed,
        window=config.window,
        chunk_size=config.chunk_size,
        mechanisms=config.mechanisms,
        partial=partial,
    )


@pytest.mark.benchmark(group="batched-pipeline")
def test_batched_pipeline_speedup(benchmark, record_table, record_json):
    def run_all():
        runs = []
        for pipeline, backend in VARIANTS:
            config = EngineConfig(pipeline=pipeline, backend=backend, **BASE)
            start = time.perf_counter()
            result = _single_shard_result(config)
            runs.append((pipeline, backend, time.perf_counter() - start, result))
        return runs

    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)

    fingerprints = {result.fingerprint() for _, _, _, result in runs}
    assert len(fingerprints) == 1, (
        "pipeline/backend changed the merged metrics or stamp digests"
    )
    reference = runs[0][3]
    assert reference.inserts == PIPELINE_EVENTS
    for label in MECHANISMS:
        for (_, lbl), fragment in reference.partial.series.items():
            if lbl == label:
                assert fragment.stamp_digest, "timestamping stage did not run"

    total_events = reference.inserts + reference.expires
    rates = {
        (pipeline, backend): total_events / elapsed
        for pipeline, backend, elapsed, _ in runs
    }
    per_event_rate = rates[("per-event", "python")]
    chunked_rates = {
        backend: rate
        for (pipeline, backend), rate in rates.items()
        if pipeline == "batched"
    }
    best_backend, best_rate = max(chunked_rates.items(), key=lambda kv: kv[1])

    # The chunked pipeline must at least match per-event dispatch (0.95
    # allows scheduler noise on shared CI cores; measured ~1.4x with the
    # run-chunked sharder), and with the numpy backend available it must
    # clear the acceptance bar.
    assert chunked_rates["python"] >= per_event_rate * 0.95, (
        f"chunked python pipeline slower than per-event: "
        f"{chunked_rates['python']:,.0f} vs {per_event_rate:,.0f} events/s"
    )
    if numpy_available():
        assert best_rate >= SPEEDUP_BAR * per_event_rate, (
            f"chunked pipeline ({best_backend}) reached only "
            f"{best_rate / per_event_rate:.2f}x of the per-event path "
            f"({best_rate:,.0f} vs {per_event_rate:,.0f} events/s); "
            f"acceptance requires >= {SPEEDUP_BAR}x"
        )

    lines = [
        f"scenario: thread-churn  inserts: {PIPELINE_EVENTS:,}  "
        f"nodes: {PIPELINE_NODES}+{PIPELINE_NODES}  "
        f"mechanisms: {','.join(MECHANISMS)}  timestamps: on",
        f"fingerprint (identical for every variant): "
        f"{reference.fingerprint()[:16]}...",
        "",
        f"{'pipeline':>10}  {'backend':>7}  {'seconds':>8}  "
        f"{'events/s':>10}  {'speedup':>7}",
    ]
    for pipeline, backend, elapsed, _ in runs:
        rate = rates[(pipeline, backend)]
        lines.append(
            f"{pipeline:>10}  {backend:>7}  {elapsed:>8.2f}  "
            f"{rate:>10,.0f}  {rate / per_event_rate:>6.2f}x"
        )
    if not numpy_available():
        lines.append(
            "\n(numpy not installed: the gated backend is unavailable and "
            f"the >={SPEEDUP_BAR}x acceptance assertion is deferred to the "
            "numpy CI job)"
        )
    record_table("batched_pipeline", "\n".join(lines))

    # Untimed fourth pass: the best chunked variant again, this time with
    # the telemetry registry installed.  The timed legs above stay
    # telemetry-free (the published rates are the product); this pass
    # proves at benchmark scale that instrumentation does not move the
    # fingerprint, and harvests the kernel/engine counters (cache
    # hit-rate, array-path share, batch-size distribution) into the
    # schema-v3 envelope's ``metrics`` block.
    registry = MetricsRegistry(origin="bench")
    previous = install(registry)
    try:
        instrumented = _single_shard_result(
            EngineConfig(pipeline="batched", backend=best_backend, **BASE)
        )
    finally:
        install(previous)
    assert instrumented.fingerprint() == reference.fingerprint(), (
        "telemetry-instrumented run changed the fingerprint"
    )

    record_json(
        "batched_pipeline",
        {
            "scenario": "thread-churn",
            "inserts": PIPELINE_EVENTS,
            "total_events": total_events,
            "nodes": PIPELINE_NODES,
            "mechanisms": list(MECHANISMS),
            "numpy_available": numpy_available(),
            "events_per_second": {
                f"{pipeline}-{backend}": rates[(pipeline, backend)]
                for pipeline, backend, _, _ in runs
            },
            "speedup_vs_per_event": {
                f"{pipeline}-{backend}": rates[(pipeline, backend)] / per_event_rate
                for pipeline, backend, _, _ in runs
            },
            "best_chunked_backend": best_backend,
            "best_chunked_speedup": best_rate / per_event_rate,
            "fingerprint": reference.fingerprint(),
        },
        metrics=metrics_document(registry),
    )


@pytest.mark.benchmark(group="batched-pipeline")
def test_pipeline_fingerprint_matrix(record_json):
    """{per-event, batched} x {python, numpy} x --jobs: one fingerprint."""
    backends = ["python"] + (["numpy"] if numpy_available() else [])
    matrix = {}
    for pipeline in ("per-event", "batched"):
        for backend in backends:
            for jobs in PIPELINE_MATRIX_JOBS:
                config = EngineConfig(
                    scenario="thread-churn",
                    num_threads=40,
                    num_objects=40,
                    density=0.15,
                    num_events=PIPELINE_MATRIX_EVENTS,
                    seed=10_501,
                    num_shards=4,
                    chunk_size=max(1, PIPELINE_MATRIX_EVENTS // 8),
                    mechanisms=("naive", "popularity"),
                    include_offline=True,
                    timestamps=True,
                    pipeline=pipeline,
                    backend=backend,
                )
                result = run_engine(config, jobs=jobs)
                matrix[(pipeline, backend, jobs)] = result.fingerprint()
    assert len(set(matrix.values())) == 1, matrix
    record_json(
        "pipeline_fingerprint_matrix",
        {
            "events": PIPELINE_MATRIX_EVENTS,
            "combinations": [
                {"pipeline": p, "backend": b, "jobs": j, "fingerprint": fp}
                for (p, b, j), fp in sorted(matrix.items())
            ],
            "identical": True,
        },
    )
