"""Extra experiment E9: sharded engine throughput vs worker-pool size.

The ROADMAP's scaling item asks for a benchmark that pushes the dynamic
streaming machinery to millions of events; this is it.  One thread-churn
configuration (1.2M inserts in the full run, shrunken under ``--smoke``)
is executed serially (the legacy one-task-per-shard ``jobs=1`` mode,
which regenerates the stream once per *shard*) and then at increasing
``workers`` pool sizes (one shard group and one stream pass per
*worker*); the table reports events/sec per leg plus the speedup over
serial.  One old-style ``jobs=2`` leg rides along so the cross-mode
fingerprint identity stays measured, not assumed.

Two properties are asserted while the numbers are collected:

* every leg - serial, every ``workers`` value, old-style ``jobs`` -
  produces a bit-identical merged result (the engine's central
  determinism contract; the fingerprint is the proof);
* above :data:`SPEEDUP_ASSERT_FLOOR` inserts per shard, the best
  ``workers`` leg must clear :data:`MIN_WORKER_SPEEDUP` (2x serial) -
  and :data:`MIN_WORKER_SPEEDUP_MULTICORE` (3x) when the machine has
  four or more cores.  This is the real scaling assertion that replaced
  the old ``spawn_dominated`` skip: the spawn-per-task backend could
  only ever *lose* to serial on small runs, so the best this benchmark
  could do was refuse to assert; the pooled engine is expected to win.

Where the speedup comes from
----------------------------
Serial pays the fixed per-pass cost (stream generation + routing) once
per shard - eight passes for the standard eight-shard run.  A ``workers``
leg pays it once per worker: ``workers=1`` runs all eight shards down
ONE pass in-process (no spawn at all), and larger pools trade extra
passes for actual CPU parallelism.  On a single-core machine the whole
win is pass elimination, so ``workers=1`` is typically the best leg; on
multi-core machines the pool legs stack parallel speedup on top, which
is what the 3x multicore bar checks.

Below :data:`SPEEDUP_ASSERT_FLOOR` inserts per shard (the smoke run),
fixed costs dominate whatever mode runs, so the leg records
``spawn_dominated: true`` in its JSON (the perf-trajectory collector
drops such runs from speedup plots) and only the fingerprint assertion
runs - which is all a smoke pass is for.

The ``metrics`` block of ``BENCH_engine_scaling.json`` comes from one
extra instrumented pass at the best pool size: per-worker stream
generation time (``engine.stream_gen_s``), task queue wait
(``pool.task_wait_s``), spawn latency (``pool.worker_spawn_s``) and the
final task distribution (``pool.tasks_per_worker``), so the spawn
amortisation that motivated the pool is visible in the artifact, not
just in this docstring.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace

import pytest

from repro.engine import EngineConfig, run_engine
from repro.obs.exporters import metrics_document
from repro.obs.registry import MetricsRegistry, install as obs_install

from _common import (
    ENGINE_CHUNK,
    ENGINE_EVENTS,
    ENGINE_NODES,
    ENGINE_SHARDS,
    ENGINE_WORKERS,
)

#: Minimum inserts per shard for speedup numbers to mean anything: below
#: this, worker spawn + the per-pass fixed cost exceed the clock work
#: itself, so the ratio measures overhead, not scaling.  The floor is
#: deliberately far above the smoke scale (2k/4 shards = 500) and far
#: below the full scale (1.2M/8 = 150k).
SPEEDUP_ASSERT_FLOOR = 10_000

#: The scaling bar asserted on the best ``workers`` leg of a
#: full-scale run: one stream pass per worker must beat the legacy
#: one-pass-per-shard serial mode by at least this much.
MIN_WORKER_SPEEDUP = 2.0

#: The stricter bar when real parallelism is available (>= 4 cores):
#: pass elimination plus concurrent shard groups.
MIN_WORKER_SPEEDUP_MULTICORE = 3.0

CONFIG = EngineConfig(
    scenario="thread-churn",
    num_threads=ENGINE_NODES,
    num_objects=2 * ENGINE_NODES,
    density=0.1,
    num_events=ENGINE_EVENTS,
    seed=9_200,
    num_shards=ENGINE_SHARDS,
    chunk_size=ENGINE_CHUNK,
)


def _timed_leg(label, config, jobs=1):
    start = time.perf_counter()
    result = run_engine(config, jobs=jobs)
    return label, time.perf_counter() - start, result


def _instrumented_metrics(workers: int) -> dict:
    """One extra pass with telemetry installed; its metrics document.

    Separate from the timed legs on purpose: the published rates stay
    telemetry-free, and the instrumented pass exists only to capture the
    pool/stream observations (spawn latency, queue wait, per-worker
    stream-generation time) into the JSON artifact.
    """
    registry = MetricsRegistry(origin="bench-engine-scaling")
    previous = obs_install(registry)
    try:
        run_engine(replace(CONFIG, workers=workers))
    finally:
        obs_install(previous)
    return metrics_document(registry)


@pytest.mark.benchmark(group="engine-scaling")
def test_engine_scaling_events_per_second(benchmark, record_table, record_json):
    def run_all():
        runs = [_timed_leg("serial", CONFIG, jobs=1)]
        for workers in ENGINE_WORKERS:
            runs.append(
                _timed_leg(f"workers={workers}", replace(CONFIG, workers=workers))
            )
        runs.append(_timed_leg("jobs=2", CONFIG, jobs=2))
        return runs

    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)

    fingerprints = {result.fingerprint() for _, _, result in runs}
    assert len(fingerprints) == 1, "scheduling mode changed the merged metrics"

    reference = runs[0][2]
    assert reference.inserts == ENGINE_EVENTS
    for label in CONFIG.mechanisms:
        pooled = reference.pooled_ratios(label)
        assert pooled.count == sum(
            fragment.ratios.count
            for (_, lbl), fragment in reference.partial.series.items()
            if lbl == label
        )
        assert pooled.minimum >= 1.0 - 1e-9  # online never beats the optimum
        for shard in reference.partial.shard_ids():
            assert reference.partial.fragment(shard, label).samples

    serial_elapsed = runs[0][1]
    per_shard_inserts = ENGINE_EVENTS // ENGINE_SHARDS
    spawn_dominated = per_shard_inserts < SPEEDUP_ASSERT_FLOOR
    cpu_count = os.cpu_count() or 1
    lines = [
        f"scenario: thread-churn  inserts: {ENGINE_EVENTS:,}  "
        f"shards: {ENGINE_SHARDS}  chunk: {ENGINE_CHUNK:,}  "
        f"nodes: {ENGINE_NODES}+{2 * ENGINE_NODES}  cpus: {cpu_count}"
        + ("  [spawn-dominated: speedups are overhead]" if spawn_dominated else ""),
        f"fingerprint (identical for every leg): "
        f"{reference.fingerprint()[:16]}...",
        "",
        f"{'leg':>10}  {'seconds':>8}  {'events/s':>10}  {'speedup':>7}",
    ]
    total_events = reference.inserts + reference.expires
    for label, elapsed, _ in runs:
        rate = total_events / elapsed if elapsed else float("inf")
        lines.append(
            f"{label:>10}  {elapsed:>8.2f}  {rate:>10,.0f}  "
            f"{serial_elapsed / elapsed if elapsed else float('inf'):>6.2f}x"
        )
    record_table("engine_scaling", "\n".join(lines))
    speedups = {
        label: (serial_elapsed / elapsed if elapsed else None)
        for label, elapsed, _ in runs
    }
    worker_speedups = {
        workers: speedups[f"workers={workers}"] for workers in ENGINE_WORKERS
    }
    best_workers = max(worker_speedups, key=lambda w: worker_speedups[w])
    # Instrument the best *pooled* leg (workers > 1) even when workers=1
    # won the race: the metrics block exists to expose the pool's spawn
    # amortisation, and an in-process pass has no pool to observe.
    pooled = [workers for workers in ENGINE_WORKERS if workers > 1]
    metrics_workers = (
        max(pooled, key=lambda w: worker_speedups[w]) if pooled else best_workers
    )
    metrics = _instrumented_metrics(metrics_workers)
    record_json(
        "engine_scaling",
        {
            "scenario": "thread-churn",
            "inserts": ENGINE_EVENTS,
            "total_events": total_events,
            "shards": ENGINE_SHARDS,
            "per_shard_inserts": per_shard_inserts,
            "spawn_dominated": spawn_dominated,
            "workers_swept": list(ENGINE_WORKERS),
            "best_workers": best_workers,
            "metrics_workers": metrics_workers,
            "events_per_second": {
                label: (total_events / elapsed if elapsed else None)
                for label, elapsed, _ in runs
            },
            "speedup_vs_serial": speedups,
            "fingerprint": reference.fingerprint(),
        },
        metrics=metrics,
    )
    if not spawn_dominated:
        best = worker_speedups[best_workers]
        floor = (
            MIN_WORKER_SPEEDUP_MULTICORE
            if cpu_count >= 4
            else MIN_WORKER_SPEEDUP
        )
        assert best >= floor, (
            f"best workers leg (workers={best_workers}) reached only "
            f"{best:.2f}x serial on a run large enough "
            f"({per_shard_inserts:,} inserts/shard) for speedups to be "
            f"real; the pooled one-pass-per-worker engine must clear "
            f"{floor}x on a {cpu_count}-core machine"
        )
