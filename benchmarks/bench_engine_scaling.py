"""Extra experiment E9: sharded engine throughput vs worker count.

The ROADMAP's scaling item asks for a benchmark that pushes the dynamic
streaming machinery to millions of events; this is it.  One thread-churn
configuration (1.2M inserts in the full run, shrunken under ``--smoke``)
is executed by the sharded engine at increasing ``jobs`` counts, and the
table reports events/sec per worker count plus the speedup over the
serial backend.

Two properties are asserted while the numbers are collected:

* every worker count produces a bit-identical merged result (the
  engine's central determinism contract - the fingerprint is the proof);
* the stride-sampled trajectories and pooled ratio statistics are
  populated for every mechanism, i.e. the merged partials actually carry
  the metrics the analysis layer consumes.

Scaling expectation, for reading the table rather than asserting on it
(CI machines share cores): near-linear until ``jobs`` approaches the
shard count or the physical core count, then flat - the residual serial
cost is stream regeneration, which every worker pays per shard.

Spawn-dominated runs
--------------------
Below :data:`SPAWN_DOMINATED_FLOOR` inserts per shard, the measured
"speedup" is process spawn plus per-worker stream regeneration divided
by almost no work - the smoke artifact used to report 0.09x at 2k
inserts, which reads as a scaling regression but is pure fixed cost.
Such runs record ``spawn_dominated: true`` in their JSON (so the
perf-trajectory collector can drop them from speedup plots) and skip
the speedup sanity assertion; the fingerprint identity assertion still
runs, which is all a smoke pass is for.
"""

from __future__ import annotations

import time

import pytest

from repro.engine import EngineConfig, run_engine

from _common import (
    ENGINE_CHUNK,
    ENGINE_EVENTS,
    ENGINE_JOBS,
    ENGINE_NODES,
    ENGINE_SHARDS,
)

#: Minimum inserts per shard for speedup numbers to mean anything: below
#: this, worker spawn + stream regeneration (a fixed ~100ms-per-worker
#: cost) exceeds the clock work itself, so the ratio measures overhead,
#: not scaling.  The floor is deliberately far above the smoke scale
#: (2k/4 shards = 500) and far below the full scale (1.2M/8 = 150k).
SPAWN_DOMINATED_FLOOR = 10_000

#: The lenient sanity bar asserted on the best multi-worker speedup of a
#: non-spawn-dominated run: parallel execution must not be catastrophically
#: slower than serial.  Kept well under 1.0 because CI cores are shared
#: and oversubscribed workers legitimately pay coordination cost.
MIN_PARALLEL_SPEEDUP = 0.5

CONFIG = EngineConfig(
    scenario="thread-churn",
    num_threads=ENGINE_NODES,
    num_objects=2 * ENGINE_NODES,
    density=0.1,
    num_events=ENGINE_EVENTS,
    seed=9_200,
    num_shards=ENGINE_SHARDS,
    chunk_size=ENGINE_CHUNK,
)


@pytest.mark.benchmark(group="engine-scaling")
def test_engine_scaling_events_per_second(benchmark, record_table, record_json):
    def run_all():
        runs = []
        for jobs in ENGINE_JOBS:
            start = time.perf_counter()
            result = run_engine(CONFIG, jobs=jobs)
            runs.append((jobs, time.perf_counter() - start, result))
        return runs

    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)

    fingerprints = {result.fingerprint() for _, _, result in runs}
    assert len(fingerprints) == 1, "worker count changed the merged metrics"

    reference = runs[0][2]
    assert reference.inserts == ENGINE_EVENTS
    for label in CONFIG.mechanisms:
        pooled = reference.pooled_ratios(label)
        assert pooled.count == sum(
            fragment.ratios.count
            for (_, lbl), fragment in reference.partial.series.items()
            if lbl == label
        )
        assert pooled.minimum >= 1.0 - 1e-9  # online never beats the optimum
        for shard in reference.partial.shard_ids():
            assert reference.partial.fragment(shard, label).samples

    serial_elapsed = runs[0][1]
    per_shard_inserts = ENGINE_EVENTS // ENGINE_SHARDS
    spawn_dominated = per_shard_inserts < SPAWN_DOMINATED_FLOOR
    lines = [
        f"scenario: thread-churn  inserts: {ENGINE_EVENTS:,}  "
        f"shards: {ENGINE_SHARDS}  chunk: {ENGINE_CHUNK:,}  "
        f"nodes: {ENGINE_NODES}+{2 * ENGINE_NODES}"
        + ("  [spawn-dominated: speedups are overhead]" if spawn_dominated else ""),
        f"fingerprint (identical for every jobs value): "
        f"{reference.fingerprint()[:16]}...",
        "",
        f"{'jobs':>4}  {'seconds':>8}  {'events/s':>10}  {'speedup':>7}",
    ]
    total_events = reference.inserts + reference.expires
    for jobs, elapsed, _ in runs:
        rate = total_events / elapsed if elapsed else float("inf")
        lines.append(
            f"{jobs:>4}  {elapsed:>8.2f}  {rate:>10,.0f}  "
            f"{serial_elapsed / elapsed if elapsed else float('inf'):>6.2f}x"
        )
    record_table("engine_scaling", "\n".join(lines))
    speedups = {
        str(jobs): (serial_elapsed / elapsed if elapsed else None)
        for jobs, elapsed, _ in runs
    }
    record_json(
        "engine_scaling",
        {
            "scenario": "thread-churn",
            "inserts": ENGINE_EVENTS,
            "total_events": total_events,
            "shards": ENGINE_SHARDS,
            "per_shard_inserts": per_shard_inserts,
            "spawn_dominated": spawn_dominated,
            "events_per_second": {
                str(jobs): (total_events / elapsed if elapsed else None)
                for jobs, elapsed, _ in runs
            },
            "speedup_vs_serial": speedups,
            "fingerprint": reference.fingerprint(),
        },
    )
    if not spawn_dominated and len(runs) > 1:
        best = max(value for key, value in speedups.items() if key != "1")
        assert best >= MIN_PARALLEL_SPEEDUP, (
            f"best multi-worker speedup {best:.2f}x fell below the "
            f"{MIN_PARALLEL_SPEEDUP}x sanity bar on a run large enough "
            f"({per_shard_inserts:,} inserts/shard) for speedups to be real"
        )
