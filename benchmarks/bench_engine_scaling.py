"""Extra experiment E9: sharded engine throughput vs worker count.

The ROADMAP's scaling item asks for a benchmark that pushes the dynamic
streaming machinery to millions of events; this is it.  One thread-churn
configuration (1.2M inserts in the full run, shrunken under ``--smoke``)
is executed by the sharded engine at increasing ``jobs`` counts, and the
table reports events/sec per worker count plus the speedup over the
serial backend.

Two properties are asserted while the numbers are collected:

* every worker count produces a bit-identical merged result (the
  engine's central determinism contract - the fingerprint is the proof);
* the stride-sampled trajectories and pooled ratio statistics are
  populated for every mechanism, i.e. the merged partials actually carry
  the metrics the analysis layer consumes.

Scaling expectation, for reading the table rather than asserting on it
(CI machines share cores): near-linear until ``jobs`` approaches the
shard count or the physical core count, then flat - the residual serial
cost is stream regeneration, which every worker pays per shard.
"""

from __future__ import annotations

import time

import pytest

from repro.engine import EngineConfig, run_engine

from _common import (
    ENGINE_CHUNK,
    ENGINE_EVENTS,
    ENGINE_JOBS,
    ENGINE_NODES,
    ENGINE_SHARDS,
)

CONFIG = EngineConfig(
    scenario="thread-churn",
    num_threads=ENGINE_NODES,
    num_objects=2 * ENGINE_NODES,
    density=0.1,
    num_events=ENGINE_EVENTS,
    seed=9_200,
    num_shards=ENGINE_SHARDS,
    chunk_size=ENGINE_CHUNK,
)


@pytest.mark.benchmark(group="engine-scaling")
def test_engine_scaling_events_per_second(benchmark, record_table, record_json):
    def run_all():
        runs = []
        for jobs in ENGINE_JOBS:
            start = time.perf_counter()
            result = run_engine(CONFIG, jobs=jobs)
            runs.append((jobs, time.perf_counter() - start, result))
        return runs

    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)

    fingerprints = {result.fingerprint() for _, _, result in runs}
    assert len(fingerprints) == 1, "worker count changed the merged metrics"

    reference = runs[0][2]
    assert reference.inserts == ENGINE_EVENTS
    for label in CONFIG.mechanisms:
        pooled = reference.pooled_ratios(label)
        assert pooled.count == sum(
            fragment.ratios.count
            for (_, lbl), fragment in reference.partial.series.items()
            if lbl == label
        )
        assert pooled.minimum >= 1.0 - 1e-9  # online never beats the optimum
        for shard in reference.partial.shard_ids():
            assert reference.partial.fragment(shard, label).samples

    serial_elapsed = runs[0][1]
    lines = [
        f"scenario: thread-churn  inserts: {ENGINE_EVENTS:,}  "
        f"shards: {ENGINE_SHARDS}  chunk: {ENGINE_CHUNK:,}  "
        f"nodes: {ENGINE_NODES}+{2 * ENGINE_NODES}",
        f"fingerprint (identical for every jobs value): "
        f"{reference.fingerprint()[:16]}...",
        "",
        f"{'jobs':>4}  {'seconds':>8}  {'events/s':>10}  {'speedup':>7}",
    ]
    total_events = reference.inserts + reference.expires
    for jobs, elapsed, _ in runs:
        rate = total_events / elapsed if elapsed else float("inf")
        lines.append(
            f"{jobs:>4}  {elapsed:>8.2f}  {rate:>10,.0f}  "
            f"{serial_elapsed / elapsed if elapsed else float('inf'):>6.2f}x"
        )
    record_table("engine_scaling", "\n".join(lines))
    record_json(
        "engine_scaling",
        {
            "scenario": "thread-churn",
            "inserts": ENGINE_EVENTS,
            "total_events": total_events,
            "shards": ENGINE_SHARDS,
            "events_per_second": {
                str(jobs): (total_events / elapsed if elapsed else None)
                for jobs, elapsed, _ in runs
            },
            "speedup_vs_serial": {
                str(jobs): (serial_elapsed / elapsed if elapsed else None)
                for jobs, elapsed, _ in runs
            },
            "fingerprint": reference.fingerprint(),
        },
    )
