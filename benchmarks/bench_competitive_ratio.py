"""Extra experiment E7: competitive ratio over time (Figs. 6-7 extension).

The paper compares online mechanisms with the offline optimum only at the
*end* of a run.  With the incremental matching engine the offline optimum
is available after every revealed event, so the comparison becomes a
trajectory: ``online_size[i] / optimum[i]`` shows *when* during a run each
mechanism commits to components the optimum avoids, not just the final
gap.  This benchmark records those trajectories on a Fig.-6-style graph
(50 per side) for the uniform and nonuniform scenarios.
"""

from __future__ import annotations

import pytest

from repro.analysis import competitive_ratio_over_time, format_series
from repro.computation import GRAPH, REGISTRY

from _common import FIG4_NODES, FIG5_DENSITY, write_result


@pytest.mark.benchmark(group="competitive-ratio")
@pytest.mark.parametrize("scenario", REGISTRY.names(GRAPH))
def test_competitive_ratio_over_time(benchmark, record_table, scenario):
    # Registry-driven: a newly registered graph family automatically gets
    # its ratio-over-time table, with no benchmark edit.
    graph = REGISTRY.get(scenario, kind=GRAPH).build(
        FIG4_NODES, FIG4_NODES, FIG5_DENSITY, seed=8_000
    )

    def run():
        return competitive_ratio_over_time(graph, seed=8_001)

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = []
    for label, series in sorted(ratios.items()):
        # Every mechanism is at least as large as the optimum at every
        # event, so the ratio trajectory never dips below 1.
        assert all(value >= 1.0 - 1e-9 for value in series)
        assert len(series) == graph.num_edges
        step = max(1, len(series) // 16)
        events = list(range(1, len(series) + 1))[::step]
        lines.append(format_series(label, events, series[::step]))
        lines.append(f"{'':12s} final ratio: {series[-1]:.3f}")
    record_table(f"competitive_ratio_over_time_{scenario}", "\n".join(lines))
