"""Figure 4: online vector clock size as graph density increases.

Paper setup: 50 threads and 50 objects per side; the three online
mechanisms (Naive, Random, Popularity) run over randomly revealed edges of
Uniform and Nonuniform random bipartite graphs of increasing density.

Expected shape (Section V, first evaluation):

* at low density Random and Popularity produce clocks much smaller than the
  Naive thread clock (a flat line at 50);
* beyond a density threshold they become *worse* than Naive;
* both do markedly better on the Nonuniform scenario;
* Popularity is slightly better than Random on average.
"""

from __future__ import annotations

import pytest

from repro.analysis import density_sweep, format_sweep, sweep_crossovers
from repro.computation import GRAPH, REGISTRY

from _common import FIG4_DENSITIES, FIG4_NODES, TRIALS

#: The families with paper-derived shape assertions; every *other*
#: registered family still runs (registry-driven parametrisation) and is
#: checked against the mechanism-independent invariants only.
PAPER_SCENARIOS = ("uniform", "nonuniform")


def _run(scenario: str):
    return density_sweep(
        FIG4_DENSITIES,
        num_threads=FIG4_NODES,
        num_objects=FIG4_NODES,
        scenario=scenario,
        trials=TRIALS,
        base_seed=4_000,
    )


@pytest.mark.benchmark(group="fig4-density")
@pytest.mark.parametrize("scenario", REGISTRY.names(GRAPH))
def test_fig4_vector_size_vs_density(benchmark, record_table, scenario):
    result = benchmark.pedantic(_run, args=(scenario,), rounds=1, iterations=1)

    crossings = sweep_crossovers(result, baseline="thread_clock")
    text = format_sweep(result) + "\n\ncrossover vs flat Naive (=n) line: " + repr(crossings)
    record_table(f"fig4_density_{scenario}", text)

    n = FIG4_NODES
    # Mechanism-independent invariant for every family: a mixed clock has
    # at most one component per thread or object, never more than n + m.
    for point in result.points:
        for label in ("naive", "random", "popularity"):
            assert 0 < point.sizes[label].mean <= 2 * n
    if scenario in PAPER_SCENARIOS:
        # Shape assertions from the paper.
        lowest = result.points[0]
        highest = result.points[-1]
        # At the lowest density both adaptive mechanisms beat the flat Naive line.
        assert lowest.sizes["random"].mean < n
        assert lowest.sizes["popularity"].mean < n
        # At the highest density they are worse than Naive.
        assert highest.sizes["random"].mean > n
        assert highest.sizes["popularity"].mean > n
    if scenario == "nonuniform":
        # Nonuniform: adaptive mechanisms stay well below Naive at density 0.05.
        at_005 = result.points[FIG4_DENSITIES.index(0.05)]
        assert at_005.sizes["popularity"].mean < 0.6 * n
        # Popularity <= Random (the paper: "Popularity is slightly better").
        assert at_005.sizes["popularity"].mean <= at_005.sizes["random"].mean + 1.0
