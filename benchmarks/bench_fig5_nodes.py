"""Figure 5: online vector clock size as the number of nodes increases.

Paper setup: density fixed at 0.05, both sides of the bipartite graph grown
from 10 to 150 nodes; the three online mechanisms compared.

Expected shape (Section V, second evaluation):

* clock sizes grow with the node count for every mechanism;
* below a node-count threshold (the paper reads ~70 per side off its plot)
  Random and Popularity beat the flat Naive line (= n);
* above the threshold Naive wins.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_sweep, node_sweep, sweep_crossovers
from repro.computation import GRAPH, REGISTRY

from _common import FIG5_DENSITY, FIG5_NODE_COUNTS, TRIALS


def _run(scenario: str):
    return node_sweep(
        FIG5_NODE_COUNTS,
        density=FIG5_DENSITY,
        scenario=scenario,
        trials=TRIALS,
        base_seed=5_000,
    )


#: Families with paper-derived shape assertions; other registered families
#: still run the sweep but are only held to size-bound sanity checks.
PAPER_SCENARIOS = ("uniform", "nonuniform")


@pytest.mark.benchmark(group="fig5-nodes")
@pytest.mark.parametrize("scenario", REGISTRY.names(GRAPH))
def test_fig5_vector_size_vs_node_count(benchmark, record_table, scenario):
    # Registry-driven: every registered graph family gets the node sweep;
    # the paper's empirical shapes stay gated to uniform/nonuniform (a new
    # family is free to violate them).
    result = benchmark.pedantic(_run, args=(scenario,), rounds=1, iterations=1)

    crossings = sweep_crossovers(result, baseline="thread_clock")
    text = format_sweep(result) + "\n\ncrossover vs flat Naive (=n) line: " + repr(crossings)
    record_table(f"fig5_nodes_{scenario}", text)

    # Family-independent sanity: a mixed clock never exceeds n + m.
    for point, nodes in zip(result.points, FIG5_NODE_COUNTS):
        for mechanism in ("naive", "random", "popularity"):
            assert 0 < point.sizes[mechanism].mean <= 2 * nodes

    if scenario not in PAPER_SCENARIOS:
        return
    # Clock sizes grow with the number of nodes (compare first and last point).
    for mechanism in ("naive", "random", "popularity"):
        assert result.series(mechanism)[-1] > result.series(mechanism)[0]

    smallest = result.points[0]
    largest = result.points[-1]
    # At the smallest size the adaptive mechanisms do not exceed the Naive line...
    assert smallest.sizes["popularity"].mean <= smallest.sizes["thread_clock"].mean
    if scenario == "uniform":
        # ... and at the largest size (density 0.05, 150 nodes/side) they are
        # worse than Naive, reproducing the crossover of Fig. 5.
        assert largest.sizes["popularity"].mean > largest.sizes["thread_clock"].mean
        assert largest.sizes["random"].mean > largest.sizes["thread_clock"].mean
