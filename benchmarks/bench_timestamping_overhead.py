"""Extra experiment E6: per-event timestamping cost and storage overhead.

The motivation for a smaller vector clock is lower per-event and per-message
overhead.  This benchmark timestamps the same structured runtime traces with
the thread-based clock, the object-based clock and the optimal mixed clock,
measuring (a) wall-clock cost per full-trace timestamping pass and (b) the
storage cost (integers kept across all event timestamps), which scales
linearly with the clock dimension the paper minimises.
The batched entry point (``ClockKernel.timestamp_batch``) is measured
against the per-event loop on the same trace for every available kernel
backend, asserting stamp bit-identity while the rates are collected.
"""

from __future__ import annotations

import gc
import time

import pytest

from repro.analysis import format_table
from repro.computation import (
    lock_hierarchy_trace,
    producer_consumer_trace,
    work_stealing_trace,
)
from repro.core import timestamp_with_object_clock, timestamp_with_thread_clock
from repro.core.components import ClockComponents
from repro.core.kernel import ClockKernel, available_backends
from repro.offline import optimal_components_for_computation, timestamp_offline

from _common import write_result

TRACES = {
    "producer-consumer": producer_consumer_trace(
        num_producers=8, num_consumers=8, num_queues=3, items_per_producer=40, seed=61
    ),
    "work-stealing": work_stealing_trace(num_workers=16, tasks_per_worker=60, seed=61),
    "lock-hierarchy": lock_hierarchy_trace(
        num_threads=12, num_locks=3, num_accounts=60, transfers_per_thread=30, seed=61
    ),
}


@pytest.mark.benchmark(group="timestamping-overhead")
@pytest.mark.parametrize("trace_name", sorted(TRACES))
@pytest.mark.parametrize("clock", ["thread", "object", "mixed-optimal"])
def test_timestamping_cost(benchmark, trace_name, clock):
    trace = TRACES[trace_name]
    if clock == "thread":
        stamped = benchmark(timestamp_with_thread_clock, trace)
    elif clock == "object":
        stamped = benchmark(timestamp_with_object_clock, trace)
    else:
        stamped = benchmark(timestamp_offline, trace)
    assert len(stamped) == len(trace)


@pytest.mark.benchmark(group="timestamping-overhead")
def test_record_storage_overhead(benchmark, record_table):
    def build_rows():
        rows = []
        for name, trace in TRACES.items():
            optimal = optimal_components_for_computation(trace)
            rows.append(
                {
                    "workload": name,
                    "events": trace.num_events,
                    "threads": trace.num_threads,
                    "objects": trace.num_objects,
                    "thread_clock_ints": trace.num_threads * trace.num_events,
                    "object_clock_ints": trace.num_objects * trace.num_events,
                    "mixed_clock_ints": optimal.clock_size * trace.num_events,
                    "mixed_clock_size": optimal.clock_size,
                }
            )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    for row in rows:
        # The whole point: the mixed clock never stores more than the better
        # of the two classical clocks.
        assert row["mixed_clock_ints"] <= min(
            row["thread_clock_ints"], row["object_clock_ints"]
        )
    record_table("timestamping_storage_overhead", format_table(rows))


@pytest.mark.benchmark(group="timestamping-overhead")
def test_kernel_batch_vs_per_event(benchmark, record_table, record_json):
    """`timestamp_batch` vs per-event `observe`, per backend, bit-identical.

    Uses a wide work-stealing trace (256 thread components): the batch
    paths exist for the large-clock regime the paper targets - at a
    dozen slots the per-event loop is already allocation-bound and no
    batching can help, which is also why the numpy backend gates itself
    on clock dimension.  No speedup is asserted here (micro-timings on
    shared CI cores are noise); the identity of every minted stamp is.
    """
    trace = work_stealing_trace(num_workers=256, tasks_per_worker=30, seed=61)
    pairs = [(event.thread, event.obj) for event in trace] * 3
    components = ClockComponents.all_threads(sorted(trace.threads))

    def run_all():
        # Each variant is timed in a clean GC state and its stamps are
        # reduced to bare value tuples before the next variant runs -
        # otherwise every variant pays collector passes over all of its
        # predecessors' retained Timestamp objects and the comparison
        # degrades monotonically with position.
        runs = {}
        variants = [("per-event", None)] + [
            (f"batch-{backend}", backend) for backend in available_backends()
        ]
        for variant, backend in variants:
            best = None
            values = None
            for _ in range(3):  # best-of-3: scheduler noise dwarfs 0.2s runs
                kernel = ClockKernel(components, backend=backend)
                gc.collect()
                if backend is None:
                    observe = kernel.observe
                    start = time.perf_counter()
                    stamps = [observe(thread, obj) for thread, obj in pairs]
                else:
                    start = time.perf_counter()
                    stamps = kernel.timestamp_batch(pairs)
                elapsed = time.perf_counter() - start
                if best is None or elapsed < best:
                    best = elapsed
                    values = [stamp.values for stamp in stamps]
                del stamps
            runs[variant] = (best, values)
        return runs

    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)
    reference = runs["per-event"][1]
    for variant, (_, values) in runs.items():
        assert values == reference, f"{variant} minted different timestamps"
    per_event_rate = len(pairs) / runs["per-event"][0]
    rates = {variant: len(pairs) / elapsed for variant, (elapsed, _) in runs.items()}
    lines = [
        f"work-stealing x3 ({len(pairs)} events, clock size {components.size})",
        f"{'variant':>16}  {'events/s':>10}  {'speedup':>7}",
    ]
    for variant, rate in rates.items():
        lines.append(
            f"{variant:>16}  {rate:>10,.0f}  {rate / per_event_rate:>6.2f}x"
        )
    record_table("kernel_batch_timestamping", "\n".join(lines))
    record_json(
        "kernel_batch_timestamping",
        {
            "events": len(pairs),
            "clock_size": components.size,
            "events_per_second": rates,
            "speedup_vs_per_event": {
                variant: rate / per_event_rate for variant, rate in rates.items()
            },
        },
    )
