"""Extra experiment E6: per-event timestamping cost and storage overhead.

The motivation for a smaller vector clock is lower per-event and per-message
overhead.  This benchmark timestamps the same structured runtime traces with
the thread-based clock, the object-based clock and the optimal mixed clock,
measuring (a) wall-clock cost per full-trace timestamping pass and (b) the
storage cost (integers kept across all event timestamps), which scales
linearly with the clock dimension the paper minimises.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.computation import (
    lock_hierarchy_trace,
    producer_consumer_trace,
    work_stealing_trace,
)
from repro.core import timestamp_with_object_clock, timestamp_with_thread_clock
from repro.offline import optimal_components_for_computation, timestamp_offline

from _common import write_result

TRACES = {
    "producer-consumer": producer_consumer_trace(
        num_producers=8, num_consumers=8, num_queues=3, items_per_producer=40, seed=61
    ),
    "work-stealing": work_stealing_trace(num_workers=16, tasks_per_worker=60, seed=61),
    "lock-hierarchy": lock_hierarchy_trace(
        num_threads=12, num_locks=3, num_accounts=60, transfers_per_thread=30, seed=61
    ),
}


@pytest.mark.benchmark(group="timestamping-overhead")
@pytest.mark.parametrize("trace_name", sorted(TRACES))
@pytest.mark.parametrize("clock", ["thread", "object", "mixed-optimal"])
def test_timestamping_cost(benchmark, trace_name, clock):
    trace = TRACES[trace_name]
    if clock == "thread":
        stamped = benchmark(timestamp_with_thread_clock, trace)
    elif clock == "object":
        stamped = benchmark(timestamp_with_object_clock, trace)
    else:
        stamped = benchmark(timestamp_offline, trace)
    assert len(stamped) == len(trace)


@pytest.mark.benchmark(group="timestamping-overhead")
def test_record_storage_overhead(benchmark, record_table):
    def build_rows():
        rows = []
        for name, trace in TRACES.items():
            optimal = optimal_components_for_computation(trace)
            rows.append(
                {
                    "workload": name,
                    "events": trace.num_events,
                    "threads": trace.num_threads,
                    "objects": trace.num_objects,
                    "thread_clock_ints": trace.num_threads * trace.num_events,
                    "object_clock_ints": trace.num_objects * trace.num_events,
                    "mixed_clock_ints": optimal.clock_size * trace.num_events,
                    "mixed_clock_size": optimal.clock_size,
                }
            )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    for row in rows:
        # The whole point: the mixed clock never stores more than the better
        # of the two classical clocks.
        assert row["mixed_clock_ints"] <= min(
            row["thread_clock_ints"], row["object_clock_ints"]
        )
    record_table("timestamping_storage_overhead", format_table(rows))
