"""Extra experiment E7: ablation of the Hybrid mechanism's thresholds.

Section V closes with a practical recommendation: run Popularity while the
revealed graph is sparse/small and fall back to Naive once density or size
thresholds are exceeded.  This ablation sweeps the density threshold of
:class:`repro.online.HybridMechanism` on Uniform and Nonuniform graphs and
reports the final clock size against the pure mechanisms and the offline
optimum, showing that a moderate threshold captures most of Popularity's
benefit on sparse graphs while avoiding its blow-up on dense ones.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.analysis.metrics import summarize
from repro.graph import nonuniform_bipartite, uniform_bipartite
from repro.offline import optimal_clock_size
from repro.online import HybridMechanism, NaiveMechanism, PopularityMechanism
from repro.online.simulator import reveal_order, run_mechanism

from _common import write_result

DENSITIES = [0.02, 0.05, 0.10, 0.20, 0.40]
THRESHOLDS = [0.0, 0.05, 0.15, 0.30, 1.0]
NODES = 50
TRIALS = 3


def _ablation(scenario: str):
    generator = uniform_bipartite if scenario == "uniform" else nonuniform_bipartite
    rows = []
    for density in DENSITIES:
        row = {"density": density}
        per_label = {f"hybrid@{threshold:g}": [] for threshold in THRESHOLDS}
        per_label["popularity"] = []
        per_label["naive"] = []
        per_label["offline"] = []
        for trial in range(TRIALS):
            graph = generator(NODES, NODES, density, seed=8_000 + trial)
            order = reveal_order(graph, seed=trial)
            for threshold in THRESHOLDS:
                mechanism = HybridMechanism(density_threshold=threshold, node_threshold=10**6)
                per_label[f"hybrid@{threshold:g}"].append(
                    run_mechanism(mechanism, order).final_size
                )
            per_label["popularity"].append(
                run_mechanism(PopularityMechanism(), order).final_size
            )
            per_label["naive"].append(run_mechanism(NaiveMechanism(), order).final_size)
            per_label["offline"].append(optimal_clock_size(graph))
        for label, values in per_label.items():
            row[label] = summarize(values).mean
        rows.append(row)
    return rows


@pytest.mark.benchmark(group="hybrid-ablation")
@pytest.mark.parametrize("scenario", ["uniform", "nonuniform"])
def test_hybrid_threshold_ablation(benchmark, record_table, scenario):
    rows = benchmark.pedantic(_ablation, args=(scenario,), rounds=1, iterations=1)
    record_table(f"hybrid_ablation_{scenario}", format_table(rows))

    by_density = {row["density"]: row for row in rows}
    # A density threshold of 1.0 can never be exceeded, so that hybrid is
    # exactly the Popularity mechanism.
    for row in rows:
        assert row["hybrid@1"] == pytest.approx(row["popularity"])
        assert row["offline"] <= min(row["popularity"], row["naive"]) + 1e-9
    # On dense graphs a finite threshold avoids Popularity's blow-up: the
    # hybrid with threshold 0.15 must not exceed pure Popularity at density 0.4.
    dense = by_density[0.40]
    assert dense["hybrid@0.15"] <= dense["popularity"] + 1e-9
    # On sparse Nonuniform graphs the same hybrid keeps most of Popularity's
    # advantage over Naive.
    if scenario == "nonuniform":
        sparse = by_density[0.05]
        assert sparse["hybrid@0.15"] < sparse["naive"]
