"""Figure 7: offline optimum vs online Popularity vs Naive, sweeping node count.

Paper setup: density fixed at 0.05, both sides grown from 10 to 150 nodes;
the offline optimum, the online Popularity mechanism and the Naive baseline
are compared.

Expected shape (Section V, third evaluation):

* the offline optimum stays below both online mechanisms at every size;
* at 50-70 nodes per side the optimum is clearly below the Naive line
  (the paper quotes ~35 vs 50 at n=50 and ~48 vs 70 at n=70 on its
  generator; the ratio, not the absolute value, is what the simulator is
  expected to reproduce);
* the Popularity-vs-optimum gap widens as the graph grows.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_sweep, node_sweep
from repro.computation import GRAPH, REGISTRY

from _common import FIG5_DENSITY, FIG5_NODE_COUNTS, TRIALS


def _run(scenario: str):
    return node_sweep(
        FIG5_NODE_COUNTS,
        density=FIG5_DENSITY,
        scenario=scenario,
        trials=TRIALS,
        base_seed=7_000,
        include_offline=True,
    )


#: Families with paper-derived shape assertions; other registered families
#: still run the sweep but are only held to the weak-duality invariants.
PAPER_SCENARIOS = ("uniform", "nonuniform")


@pytest.mark.benchmark(group="fig7-offline-vs-online-nodes")
@pytest.mark.parametrize("scenario", REGISTRY.names(GRAPH))
def test_fig7_offline_vs_online_vs_node_count(benchmark, record_table, scenario):
    # Registry-driven: every registered family runs the sweep and the
    # weak-duality checks; the paper's empirical shapes stay gated.
    result = benchmark.pedantic(_run, args=(scenario,), rounds=1, iterations=1)
    record_table(f"fig7_offline_vs_online_nodes_{scenario}", format_sweep(result))

    gaps = []
    for point, nodes in zip(result.points, FIG5_NODE_COUNTS):
        offline = point.offline.mean
        popularity = point.sizes["popularity"].mean
        assert offline <= popularity + 1e-9
        assert offline <= nodes  # never above min(n, m) = n
        gaps.append(popularity - offline)
    # The optimum grows with the graph (family-independent at fixed density).
    assert result.series("offline")[-1] > result.series("offline")[0]
    if scenario in PAPER_SCENARIOS:
        # Empirical shapes read off the paper's Fig. 7.
        # The offline optimum is strictly below the Naive (= n) line at the
        # paper's reference point of 50 nodes per side.
        fifty = result.points[FIG5_NODE_COUNTS.index(50)]
        assert fifty.offline.mean < 50
        # The Popularity-vs-optimum gap widens with size.
        assert gaps[-1] >= gaps[0]
