"""Extra experiment E8: sensitivity of the online mechanisms to reveal order.

The paper evaluates each mechanism on a single random reveal order per
graph.  This ablation replays the same Uniform and Nonuniform graphs under
many shuffled orders and reports, per mechanism, the best / mean / worst
final clock size and the worst-case ratio to the offline optimum - i.e.
how much of the observed performance is the mechanism and how much is luck
with the order.  Naive is provably order-insensitive and serves as the
control.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.graph import nonuniform_bipartite, uniform_bipartite
from repro.online import NaiveMechanism, PopularityMechanism, RandomMechanism
from repro.online.sensitivity import compare_order_sensitivity

from _common import write_result

NODES = 50
DENSITY = 0.05
ORDER_TRIALS = 15

MECHANISMS = {
    "naive": lambda seed: NaiveMechanism(),
    "random": lambda seed: RandomMechanism(seed=seed),
    "popularity": lambda seed: PopularityMechanism(),
}


def _run(scenario: str):
    generator = uniform_bipartite if scenario == "uniform" else nonuniform_bipartite
    graph = generator(NODES, NODES, DENSITY, seed=90)
    return graph, compare_order_sensitivity(
        graph, MECHANISMS, trials=ORDER_TRIALS, base_seed=900
    )


@pytest.mark.benchmark(group="order-sensitivity")
@pytest.mark.parametrize("scenario", ["uniform", "nonuniform"])
def test_order_sensitivity(benchmark, record_table, scenario):
    graph, results = benchmark.pedantic(_run, args=(scenario,), rounds=1, iterations=1)

    rows = []
    for label, result in results.items():
        rows.append(
            {
                "mechanism": label,
                "best": result.best,
                "mean": result.stats.mean,
                "worst": result.worst,
                "spread": result.spread,
                "worst/optimal": result.worst_case_ratio(),
            }
        )
    header = (
        f"{scenario}: {NODES}+{NODES} nodes, density {DENSITY}, "
        f"{ORDER_TRIALS} reveal orders, offline optimum = "
        f"{next(iter(results.values())).offline_optimum}"
    )
    record_table(f"order_sensitivity_{scenario}", header + "\n" + format_table(rows))

    # Naive is order-insensitive; the adaptive mechanisms are not.
    assert results["naive"].spread == 0
    assert results["random"].spread >= 0
    # Nobody beats the offline optimum on any order (weak duality).
    for result in results.values():
        assert result.best >= result.offline_optimum
