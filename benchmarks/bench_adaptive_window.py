"""Extra experiment E9: adaptive window-aware mechanisms vs append-only.

The ROADMAP's streaming gap: under sliding-window / churn monitoring the
offline optimum tracks the live window while every Section IV mechanism
is append-only, so steady-state competitive ratios degrade monotonically.
This benchmark runs each adaptive mechanism head-to-head against its
append-only counterpart on the churn-capable stream scenarios and records

* steady-state competitive ratio (tail of the run) per mechanism - the
  adaptive variant must be strictly better on thread churn, the headline
  acceptance number;
* live clock size over time - append-only trajectories are monotone,
  adaptive ones shrink back towards the windowed optimum (bounded state,
  the property a long-running monitor actually needs);
* the lifecycle-aware ratio-sweep grid (``ratio_sweep`` with epochs and
  the adaptive labels), exercising the same path ``python -m repro sweep
  ratio --epoch N --mechanisms ...`` uses.

Run the full version with ``pytest benchmarks/bench_adaptive_window.py``;
CI runs the ``--smoke`` variant to catch harness breakage.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_ratio_sweep, ratio_sweep
from repro.analysis.experiments import EXTENDED_MECHANISMS
from repro.analysis.metrics import competitive_ratio_trajectory
from repro.computation import REGISTRY, STREAM
from repro.online import compare_mechanisms_on_stream, seed_mechanism_factories
from repro.seeds import derive_seed

from _common import (
    ADAPTIVE_EPOCH,
    ADAPTIVE_EVENTS,
    ADAPTIVE_TAIL,
    STREAM_DENSITIES,
    STREAM_SIZES,
    STREAM_TRIALS,
    STREAM_WINDOW,
)

#: (adaptive label, append-only counterpart) head-to-head pairs.
PAIRINGS = (
    ("adaptive-popularity", "popularity"),
    ("epoch-hybrid", "hybrid"),
)

LABELS = tuple(label for pairing in PAIRINGS for label in pairing)


def _run_scenario(scenario_name: str, seed_tag: str):
    scenario = REGISTRY.get(scenario_name, kind=STREAM)
    root = derive_seed(9_200, seed_tag)
    size = max(STREAM_SIZES)
    events = scenario.build(
        size,
        size,
        max(STREAM_DENSITIES),
        ADAPTIVE_EVENTS,
        seed=derive_seed(root, "stream"),
    )
    factories = seed_mechanism_factories(
        {label: EXTENDED_MECHANISMS[label] for label in LABELS},
        derive_seed(root, "mechanisms"),
    )
    return compare_mechanisms_on_stream(
        events,
        factories,
        include_offline=True,
        window=None if scenario.expires else STREAM_WINDOW,
        epoch=ADAPTIVE_EPOCH,
    )


def _steady_mean(results, label):
    ratios = competitive_ratio_trajectory(
        results[label].size_trajectory, results["offline"].size_trajectory
    )
    tail = ratios[-ADAPTIVE_TAIL:]
    return sum(tail) / len(tail)


@pytest.mark.benchmark(group="adaptive-window")
def test_adaptive_vs_append_only_on_churn(benchmark, record_table, record_json):
    """The acceptance head-to-head on the thread-churn stream."""
    results = benchmark.pedantic(
        lambda: _run_scenario("thread-churn", "churn"), rounds=1, iterations=1
    )
    offline_tail = results["offline"].size_trajectory[-ADAPTIVE_TAIL:]
    lines = [
        f"thread-churn  ({ADAPTIVE_EVENTS} inserts, epoch every "
        f"{ADAPTIVE_EPOCH}, steady tail {ADAPTIVE_TAIL})",
        f"{'mechanism':>20s}  {'steady ratio':>12s}  {'final':>5s}  "
        f"{'peak':>4s}  {'retired':>7s}",
    ]
    for adaptive, append_only in PAIRINGS:
        for label in (append_only, adaptive):
            result = results[label]
            lines.append(
                f"{label:>20s}  {_steady_mean(results, label):>12.2f}  "
                f"{result.final_size:>5d}  {result.peak_size:>4d}  "
                f"{result.retired_components:>7d}"
            )
        # The acceptance criterion: strictly better steady state.
        assert _steady_mean(results, adaptive) < _steady_mean(
            results, append_only
        )
        # Bounded live state: the adaptive clock shrinks again and its
        # steady tail sits strictly below the append-only counterpart's.
        adaptive_trajectory = results[adaptive].size_trajectory
        assert results[adaptive].retired_components > 0
        assert any(
            b < a for a, b in zip(adaptive_trajectory, adaptive_trajectory[1:])
        )
        assert max(adaptive_trajectory[-ADAPTIVE_TAIL:]) < min(
            results[append_only].size_trajectory[-ADAPTIVE_TAIL:]
        )
    lines.append(
        f"{'offline optimum':>20s}  {'1.00':>12s}  "
        f"{results['offline'].final_size:>5d}  "
        f"{max(results['offline'].size_trajectory):>4d}  {'-':>7s}"
    )
    lines.append(
        f"windowed optimum steady size: "
        f"{sum(offline_tail) / len(offline_tail):.1f}"
    )
    record_table("adaptive_window_churn", "\n".join(lines))
    record_json(
        "adaptive_window_churn",
        {
            "scenario": "thread-churn",
            "inserts": ADAPTIVE_EVENTS,
            "epoch_every": ADAPTIVE_EPOCH,
            "steady_ratio": {
                label: _steady_mean(results, label)
                for pairing in PAIRINGS
                for label in pairing
            },
            "final_size": {
                label: results[label].final_size
                for pairing in PAIRINGS
                for label in pairing
            },
            "retired": {
                label: results[label].retired_components
                for pairing in PAIRINGS
                for label in pairing
            },
            "offline_steady_size": sum(offline_tail) / len(offline_tail),
        },
    )


@pytest.mark.benchmark(group="adaptive-window")
def test_adaptive_ratio_sweep_grid(benchmark, record_table):
    """The lifecycle-aware sweep grid over every churn-capable scenario."""

    def run():
        return ratio_sweep(
            densities=STREAM_DENSITIES,
            sizes=STREAM_SIZES,
            trials=STREAM_TRIALS,
            window=STREAM_WINDOW,
            burn_in=max(20, ADAPTIVE_TAIL // 4),
            tail=ADAPTIVE_TAIL // 2,
            num_events=ADAPTIVE_EVENTS,
            base_seed=9_300,
            labels=list(LABELS),
            epoch=ADAPTIVE_EPOCH,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert set(result.scenarios) == set(REGISTRY.names(STREAM))
    for cell in result.cells:
        for label in LABELS:
            assert cell.steady[label].minimum >= 1.0 - 1e-9
        # The live-size column exists for every label and the optimum.
        assert cell.steady_clock["offline"].mean >= 1.0
        # On the self-expiring churn scenario the adaptive steady sizes
        # sit below their append-only counterparts.
        if cell.scenario == "thread-churn":
            for adaptive, append_only in PAIRINGS:
                assert (
                    cell.steady_clock[adaptive].mean
                    < cell.steady_clock[append_only].mean
                )
    record_table("adaptive_window_ratio_sweep", format_ratio_sweep(result))
