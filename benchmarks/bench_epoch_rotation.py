"""Extra experiment E10: incremental epoch rotation vs the replay baseline.

ROADMAP item 5's boundary cost, measured head-to-head.  Three legs:

* **rotation latency** - one rotation-heavy churn stream (ID space far
  above the sliding window, so nearly every expiry retires its dead
  endpoints and triggers a pure-subset rotation) driven through
  :class:`LifecycleClockDriver` twice: once with the ``"delta"``
  strategy (live stamps projected by dropping retired slots) and once
  with the ``"replay"`` baseline (the whole live window re-observed).
  ``driver.rotation_s`` p50/p95/p99 and stream events/sec are recorded
  per strategy; the full run asserts delta p99 at least
  :data:`ROTATION_P99_BAR` times lower and throughput no worse.
* **cover boundary pause** - the persistent :class:`DynamicMatching`'s
  incrementally repaired König cover vs the pre-PR-10 behaviour (a
  fresh matching rebuilt from every live edge at every epoch boundary),
  on one interleaved add/expire churn stream; the full run asserts the
  repaired boundary *median* at least :data:`COVER_P50_BAR` times
  lower (the tail percentiles are recorded as data - a few hundred
  boundary samples make the p99 a noisy near-max).
* **fingerprint matrix** - rotation strategy is execution-only:
  ``{delta, replay} x {python, numpy} x {serial, --jobs, --workers}``
  engine runs, plus an interrupt/resume cycle that checkpoints under
  one strategy and resumes under the other, must all produce one
  SHA-256 fingerprint.

The timed legs install a metrics registry on purpose - the rotation
histogram *is* the measurement - but both strategies run under
identical instrumentation, so the head-to-head stays fair, and the
cyclic GC is disabled around each measured stream (standard latency
isolation; both arms get the same treatment).

Full-scale footprint: the delta arm keeps lazy projection/extension
wrappers alive for the whole window (reclaimed on read or expiry), so
the rotation leg peaks around ~2 GB RSS at the full 32k-ID/4k-window
scale; the smoke run is a few hundred kilobytes.  Under ``--smoke``
the perf bars are skipped (the scales are too small for stable tail
percentiles - the precedent bench_engine_scaling set) and the leg
instead asserts the structural facts: every rotation took the expected
path, both arms agree on rotations, retirements, final clock size and
a sampled causality surface.
"""

from __future__ import annotations

import gc
import random
import time
from dataclasses import replace

import pytest

from repro.computation.streams import as_stream_event, sliding_window
from repro.core.kernel import numpy_available
from repro.engine import EngineConfig, EngineInterrupted, run_engine
from repro.graph.incremental import DynamicMatching
from repro.graph.vertex_cover import validate_vertex_cover
from repro.obs.exporters import metrics_document
from repro.obs.registry import MetricsRegistry, install as obs_install
from repro.online.adaptive import LifecycleClockDriver, WindowedPopularityMechanism

from _common import (
    ROTATION_COVER_BOUNDARY,
    ROTATION_COVER_EVENTS,
    ROTATION_COVER_IDS,
    ROTATION_COVER_WINDOW,
    ROTATION_EVENTS,
    ROTATION_IDS,
    ROTATION_MATRIX_EVENTS,
    ROTATION_WINDOW,
    SMOKE,
)

#: The acceptance bar on the full-scale run: delta rotation's p99 must be
#: at least this many times below the replay baseline's.  Measured ~12x
#: at the full scale (delta p99 ~22ms vs replay ~261ms; the gap grows
#: with the clock dimension, because replay pays O(window * k) while the
#: delta projection pays O(live) wrapper creation).
ROTATION_P99_BAR = 5.0

#: The bar on the cover leg: the repaired boundary *median* pause vs
#: the fresh from-scratch rebuild's.  Measured ~5x at the full scale
#: (repair p50 ~1.0ms - one alternating-reachability sweep at worst -
#: vs rebuild ~5.1ms re-matching 2k live edges; p99 ratio ~3.5x, but
#: over ~440 boundary samples the p99 is a near-max and too noisy to
#: gate on).  The rotation leg above carries the issue's >=5x p99 bar.
COVER_P50_BAR = 3.0

#: Stream seed (shared by both strategies - same events, same order).
STREAM_SEED = 20_190_707

#: Relation samples drawn from the final live window per strategy; the
#: sampled verdict surface must match across strategies exactly.
VERDICT_SAMPLES = 200


def _churn_events(ids, count, tag):
    rng = random.Random(STREAM_SEED + tag)
    return [
        (f"t{rng.randrange(ids)}", f"o{rng.randrange(ids)}")
        for _ in range(count)
    ]


def _percentile(samples, pct):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(len(ordered) * pct / 100))]


def _run_rotation_leg(strategy):
    """One instrumented pass of the churn stream under one strategy."""
    events = _churn_events(ROTATION_IDS, ROTATION_EVENTS, tag=0)
    registry = MetricsRegistry(origin=f"bench-epoch-rotation-{strategy}")
    previous = obs_install(registry)
    gc.collect()
    gc.disable()
    try:
        driver = LifecycleClockDriver(
            WindowedPopularityMechanism(), rotation=strategy
        )
        start = time.perf_counter()
        for item in sliding_window(events, ROTATION_WINDOW):
            event = as_stream_event(item)
            if event.is_insert:
                driver.observe(event.thread, event.obj)
            else:
                driver.expire(event.thread, event.obj)
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
        obs_install(previous)
    # The verdict surface is sampled *after* the timed region (reading a
    # relation materialises the delta arm's lazy projection chains).
    alive = driver.live_tokens()
    rng = random.Random(STREAM_SEED)
    verdicts = tuple(
        driver.relation(*sorted(rng.sample(alive, 2)))
        for _ in range(VERDICT_SAMPLES)
    )
    histogram = dict(registry.histograms())["driver.rotation_s"]
    counters = dict(registry.counters())
    total_events = 2 * ROTATION_EVENTS - ROTATION_WINDOW
    return {
        "strategy": strategy,
        "elapsed_s": elapsed,
        "events_per_second": total_events / elapsed,
        "rotations": counters.get("driver.rotations", 0),
        "retirements": counters.get("driver.retirements", 0),
        "delta_rotations": counters.get("clock.rotation.delta", 0),
        "replay_rotations": counters.get("clock.rotation.replay", 0),
        "rotation_p50_s": histogram.percentile(50),
        "rotation_p95_s": histogram.percentile(95),
        "rotation_p99_s": histogram.percentile(99),
        "clock_size": driver.clock_size,
        "verdicts": verdicts,
        "registry": registry,
    }


@pytest.mark.benchmark(group="epoch-rotation")
def test_rotation_latency_delta_vs_replay(benchmark, record_table, record_json):
    legs = benchmark.pedantic(
        lambda: [_run_rotation_leg("replay"), _run_rotation_leg("delta")],
        rounds=1,
        iterations=1,
    )
    replay, delta = legs

    # Determinism across strategies: same rotations, same retirements,
    # same final clock, same sampled causality verdicts.
    for key in ("rotations", "retirements", "clock_size", "verdicts"):
        assert delta[key] == replay[key], key
    # Every rotation of each arm took its arm's path.
    assert delta["delta_rotations"] == delta["rotations"] > 0
    assert delta["replay_rotations"] == 0
    assert replay["replay_rotations"] == replay["rotations"] > 0
    assert replay["delta_rotations"] == 0

    lines = [
        f"churn stream: ids={ROTATION_IDS:,}  window={ROTATION_WINDOW:,}  "
        f"inserts={ROTATION_EVENTS:,}  rotations={delta['rotations']}  "
        f"final clock k={delta['clock_size']}",
        f"{'strategy':>8}  {'p50':>9}  {'p95':>9}  {'p99':>9}  "
        f"{'events/s':>9}",
    ]
    for leg in (replay, delta):
        lines.append(
            f"{leg['strategy']:>8}  "
            f"{leg['rotation_p50_s'] * 1e3:>7.1f}ms  "
            f"{leg['rotation_p95_s'] * 1e3:>7.1f}ms  "
            f"{leg['rotation_p99_s'] * 1e3:>7.1f}ms  "
            f"{leg['events_per_second']:>9,.0f}"
        )
    p99_ratio = replay["rotation_p99_s"] / delta["rotation_p99_s"]
    lines.append(f"p99 ratio (replay / delta): {p99_ratio:.1f}x")
    record_table("epoch_rotation", "\n".join(lines))
    record_json(
        "epoch_rotation",
        {
            "ids": ROTATION_IDS,
            "window": ROTATION_WINDOW,
            "inserts": ROTATION_EVENTS,
            "rotations": delta["rotations"],
            "clock_size": delta["clock_size"],
            "p99_ratio": p99_ratio,
            "strategies": {
                leg["strategy"]: {
                    key: leg[key]
                    for key in (
                        "elapsed_s",
                        "events_per_second",
                        "rotation_p50_s",
                        "rotation_p95_s",
                        "rotation_p99_s",
                        "delta_rotations",
                        "replay_rotations",
                    )
                }
                for leg in legs
            },
        },
        metrics=metrics_document(delta["registry"]),
    )
    if not SMOKE:
        assert p99_ratio >= ROTATION_P99_BAR, (
            f"delta rotation p99 ({delta['rotation_p99_s'] * 1e3:.1f}ms) is "
            f"only {p99_ratio:.1f}x below the replay baseline "
            f"({replay['rotation_p99_s'] * 1e3:.1f}ms); the incremental "
            f"path must clear {ROTATION_P99_BAR}x"
        )
        assert delta["events_per_second"] >= replay["events_per_second"], (
            "the delta strategy must not cost stream throughput"
        )


def _run_cover_leg(mode):
    """One pass of the edge-churn stream; boundary cover pauses in seconds.

    ``"repair"`` queries the persistent matching (the landed behaviour:
    per-event add/remove upkeep, incremental König reachability repair at
    the boundary); ``"scratch"`` re-creates the pre-PR-10 boundary (a
    fresh :class:`DynamicMatching` rebuilt from every live edge, then the
    cover).  Cover sizes must agree - both are minimum covers of the same
    live graph - and every cover is validated outside the timed region.
    """
    rng = random.Random(STREAM_SEED)
    live = []
    persistent = DynamicMatching(record_trajectory=False)
    registry = MetricsRegistry(origin=f"bench-cover-{mode}")
    previous = obs_install(registry)
    samples = []
    sizes = []
    checked = []
    gc.collect()
    gc.disable()
    try:
        for step in range(ROTATION_COVER_EVENTS):
            pair = (
                f"t{rng.randrange(ROTATION_COVER_IDS)}",
                f"o{rng.randrange(ROTATION_COVER_IDS)}",
            )
            live.append(pair)
            persistent.add_edge(*pair)
            if len(live) > ROTATION_COVER_WINDOW:
                persistent.remove_edge(*live.pop(0))
            if (
                step >= ROTATION_COVER_WINDOW
                and step % ROTATION_COVER_BOUNDARY == 0
            ):
                start = time.perf_counter()
                if mode == "repair":
                    cover = persistent.vertex_cover()
                else:
                    fresh = DynamicMatching(record_trajectory=False)
                    fresh.add_edges(live)
                    cover = fresh.vertex_cover()
                samples.append(time.perf_counter() - start)
                sizes.append(len(cover))
                # Validated between boundaries (outside the timed pause;
                # the live graph mutates, so it cannot wait for the end).
                validate_vertex_cover(persistent.graph, cover)
    finally:
        gc.enable()
        obs_install(previous)
    counters = dict(registry.counters())
    return {
        "mode": mode,
        "boundaries": len(samples),
        "cover_sizes": sizes,
        "pause_p50_s": _percentile(samples, 50),
        "pause_p95_s": _percentile(samples, 95),
        "pause_p99_s": _percentile(samples, 99),
        "repairs": counters.get("matching.cover.repairs", 0),
        "rebuilds": counters.get("matching.cover.rebuilds", 0),
    }


@pytest.mark.benchmark(group="epoch-rotation")
def test_cover_repair_vs_from_scratch(benchmark, record_table, record_json):
    legs = benchmark.pedantic(
        lambda: [_run_cover_leg("scratch"), _run_cover_leg("repair")],
        rounds=1,
        iterations=1,
    )
    scratch, repair = legs
    assert repair["boundaries"] == scratch["boundaries"] > 0
    # Both are minimum covers of the same live graph at every boundary.
    assert repair["cover_sizes"] == scratch["cover_sizes"]
    # Every boundary query went through the incremental structure (one
    # counter tick per uncached cover query).  The repairs/rebuilds split
    # is recorded as data, not asserted: at this churn intensity nearly
    # every inter-boundary gap moves a matched edge, which (by the
    # documented invariant) dirties the reachability sets, so the
    # boundary query is one alternating-reachability sweep - still far
    # cheaper than the from-scratch re-matching, which is the point.
    # The exact-repair path itself is pinned deterministically by
    # tests/test_epoch_rotation_properties.py.
    assert repair["repairs"] + repair["rebuilds"] == repair["boundaries"]

    p50_ratio = scratch["pause_p50_s"] / repair["pause_p50_s"]
    p99_ratio = scratch["pause_p99_s"] / repair["pause_p99_s"]
    lines = [
        f"edge churn: ids={ROTATION_COVER_IDS:,}  "
        f"window={ROTATION_COVER_WINDOW:,}  "
        f"boundary every {ROTATION_COVER_BOUNDARY} events  "
        f"boundaries={repair['boundaries']}",
        f"{'mode':>8}  {'p50':>9}  {'p95':>9}  {'p99':>9}",
    ]
    for leg in (scratch, repair):
        lines.append(
            f"{leg['mode']:>8}  "
            f"{leg['pause_p50_s'] * 1e3:>7.2f}ms  "
            f"{leg['pause_p95_s'] * 1e3:>7.2f}ms  "
            f"{leg['pause_p99_s'] * 1e3:>7.2f}ms"
        )
    lines.append(
        f"ratio (scratch / repair): p50 {p50_ratio:.1f}x  "
        f"p99 {p99_ratio:.1f}x"
    )
    record_table("epoch_rotation_cover", "\n".join(lines))
    record_json(
        "epoch_rotation_cover",
        {
            "ids": ROTATION_COVER_IDS,
            "window": ROTATION_COVER_WINDOW,
            "boundary_every": ROTATION_COVER_BOUNDARY,
            "boundaries": repair["boundaries"],
            "p50_ratio": p50_ratio,
            "p99_ratio": p99_ratio,
            "modes": {
                leg["mode"]: {
                    key: leg[key]
                    for key in (
                        "pause_p50_s",
                        "pause_p95_s",
                        "pause_p99_s",
                        "repairs",
                        "rebuilds",
                    )
                }
                for leg in legs
            },
        },
    )
    if not SMOKE:
        assert p50_ratio >= COVER_P50_BAR, (
            f"repaired cover boundary median "
            f"({repair['pause_p50_s'] * 1e3:.2f}ms) is only "
            f"{p50_ratio:.1f}x below the from-scratch rebuild "
            f"({scratch['pause_p50_s'] * 1e3:.2f}ms); persistent repair "
            f"must clear {COVER_P50_BAR}x"
        )


MATRIX_CONFIG = EngineConfig(
    scenario="thread-churn",
    num_threads=40,
    num_objects=40,
    density=0.15,
    num_events=ROTATION_MATRIX_EVENTS,
    seed=10_502,
    num_shards=4,
    chunk_size=max(1, ROTATION_MATRIX_EVENTS // 8),
    mechanisms=("naive", "popularity"),
    include_offline=True,
    timestamps=True,
)


@pytest.mark.benchmark(group="epoch-rotation")
def test_rotation_fingerprint_matrix(record_json, tmp_path):
    """{delta, replay} x {python, numpy} x scheduling: one fingerprint.

    Also rehearses recovery across strategies: a checkpointed run is
    interrupted under ``replay`` and resumed under ``delta`` (and the
    other way round) - rotation strategy is deliberately absent from the
    config signature, so checkpoints must cross it freely.
    """
    backends = ["python"] + (["numpy"] if numpy_available() else [])
    matrix = {}
    for rotation in ("delta", "replay"):
        for backend in backends:
            config = replace(MATRIX_CONFIG, rotation=rotation, backend=backend)
            matrix[(rotation, backend, "serial")] = run_engine(
                config
            ).fingerprint()
            matrix[(rotation, backend, "jobs=2")] = run_engine(
                config, jobs=2
            ).fingerprint()
            matrix[(rotation, backend, "workers=2")] = run_engine(
                replace(config, workers=2)
            ).fingerprint()
    for interrupt_under, resume_under in (
        ("replay", "delta"),
        ("delta", "replay"),
    ):
        checkpoint_dir = str(tmp_path / f"ckpt-{interrupt_under}")
        checkpointed = replace(
            MATRIX_CONFIG,
            rotation=interrupt_under,
            checkpoint_dir=checkpoint_dir,
        )
        with pytest.raises(EngineInterrupted):
            run_engine(replace(checkpointed, max_chunks_per_shard=1))
        resumed = run_engine(replace(checkpointed, rotation=resume_under))
        matrix[(interrupt_under, "python", f"resume-{resume_under}")] = (
            resumed.fingerprint()
        )
    fingerprints = set(matrix.values())
    assert len(fingerprints) == 1, matrix
    (fingerprint,) = fingerprints
    record_json(
        "epoch_rotation_fingerprints",
        {
            "inserts": ROTATION_MATRIX_EVENTS,
            "legs": sorted("/".join(key) for key in matrix),
            "backends": backends,
            "fingerprint": fingerprint,
        },
    )
