"""Extra experiment E8: sliding-window streaming, burn-in vs steady state.

The streaming engine turns the append-only Section V evaluation into a
monitoring one: events arrive indefinitely, only a sliding window of
recent events matters, and the offline optimum (maintained by
``DynamicMatching``) can shrink as edges expire.  This benchmark records

* the burn-in vs steady-state competitive-ratio grid of every registered
  stream scenario (``ratio_sweep``), and
* the throughput of the dynamic engine against per-event from-scratch
  Hopcroft-Karp recomputation on the same windowed stream - the speedup
  that makes per-event optimum tracking affordable at monitoring rates.

Run the full version with ``pytest benchmarks/bench_sliding_window.py``;
CI runs the ``--smoke`` variant to catch harness breakage.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import format_ratio_sweep, ratio_sweep
from repro.computation import REGISTRY, STREAM
from repro.graph import hopcroft_karp_matching, sliding_window_optimum_trajectory
from repro.graph.bipartite import BipartiteGraph
from repro.computation.streams import hot_object_drift_stream

from _common import (
    STREAM_BURN_IN,
    STREAM_DENSITIES,
    STREAM_EVENTS,
    STREAM_SIZES,
    STREAM_TAIL,
    STREAM_TRIALS,
    STREAM_WINDOW,
)


@pytest.mark.benchmark(group="sliding-window")
def test_streaming_ratio_sweep(benchmark, record_table):
    def run():
        return ratio_sweep(
            densities=STREAM_DENSITIES,
            sizes=STREAM_SIZES,
            trials=STREAM_TRIALS,
            window=STREAM_WINDOW,
            burn_in=STREAM_BURN_IN,
            tail=STREAM_TAIL,
            num_events=STREAM_EVENTS,
            base_seed=9_000,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    assert set(result.scenarios) == set(REGISTRY.names(STREAM))
    assert len(result.scenarios) >= 3
    for cell in result.cells:
        for label in result.mechanisms:
            # An online clock covers every event ever revealed, the
            # windowed optimum only the live ones, so ratios never dip
            # below 1 in either regime.
            assert cell.burn_in[label].minimum >= 1.0 - 1e-9
            assert cell.steady[label].minimum >= 1.0 - 1e-9
            assert cell.steady[label].median >= 1.0 - 1e-9
    record_table("sliding_window_ratio_sweep", format_ratio_sweep(result))


@pytest.mark.benchmark(group="sliding-window")
def test_dynamic_engine_vs_from_scratch(benchmark, record_table):
    """Per-event windowed optimum: dynamic engine vs naive recomputation."""
    size = max(STREAM_SIZES)
    events = list(
        ev.pair
        for ev in hot_object_drift_stream(
            size, size, max(STREAM_DENSITIES), STREAM_EVENTS, seed=9_100
        )
    )

    def dynamic():
        return sliding_window_optimum_trajectory(iter(events), STREAM_WINDOW)

    trajectory = benchmark.pedantic(dynamic, rounds=1, iterations=1)
    assert len(trajectory) == len(events)

    # From-scratch reference on a prefix only (it is the quadratic
    # baseline this engine exists to avoid); scale its time linearly for
    # the report.
    prefix = min(len(events), max(200, STREAM_WINDOW // 2))
    start = time.perf_counter()
    for index in range(prefix):
        live = events[max(0, index - STREAM_WINDOW + 1): index + 1]
        assert (
            len(hopcroft_karp_matching(BipartiteGraph(edges=live)))
            == trajectory[index]
        )
    scratch_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    sliding_window_optimum_trajectory(iter(events), STREAM_WINDOW)
    dynamic_elapsed = time.perf_counter() - start

    scratch_rate = prefix / scratch_elapsed if scratch_elapsed else float("inf")
    dynamic_rate = len(events) / dynamic_elapsed if dynamic_elapsed else float("inf")
    record_table(
        "sliding_window_engine_throughput",
        "\n".join(
            [
                f"events: {len(events)}  window: {STREAM_WINDOW}  nodes/side: {size}",
                f"dynamic engine:       {dynamic_rate:,.0f} events/s",
                f"from-scratch (HK):    {scratch_rate:,.0f} events/s "
                f"(measured on first {prefix} events)",
                f"speedup:              {dynamic_rate / scratch_rate:.1f}x",
            ]
        ),
    )
