"""Shared constants and helpers for the benchmark harness.

Kept outside ``conftest.py`` so benchmark modules can import them directly
(``from _common import ...``) regardless of how pytest was invoked.

Smoke mode
----------
Passing ``--smoke`` (or setting ``BENCH_SMOKE=1``) shrinks every sweep to
a few points and trials.  The shrunken runs keep the reference x-values
the shape assertions index into (density 0.05, 50 nodes per side), so the
benchmarks still *exercise* the full harness - they just stop being
statistically meaningful.  CI runs the suite this way to catch perf
harness breakage (import errors, fixture drift, API changes) without
paying for the real sweeps.  The flag is read at import time because the
sweep constants parametrise tests during collection.

Machine-readable results
------------------------
Every benchmark that measures a rate or a ratio also records it as JSON
via :func:`write_json_result`, which writes ``BENCH_<name>.json`` next to
the text tables under ``benchmarks/results`` - or under the directory
given by ``--json PATH`` (or the ``BENCH_JSON`` environment variable),
so CI can archive the perf trajectory as artifacts.  Each file carries
the payload plus ``{"benchmark": name, "smoke": bool}`` and an
``environment`` block (kernel backend, numpy version or null, Python
version, CPU count) so a collector can tell throwaway smoke numbers
from real ones and attribute rate shifts across PRs to hardware or
backend changes instead of code.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Version of the ``BENCH_<name>.json`` envelope.  Bumped whenever the
#: envelope keys change shape, so the perf-trajectory collector can parse
#: archives from different eras without sniffing.  Version 1: payload plus
#: ``{"schema": 1, "benchmark": name, "smoke": bool}``, sorted keys.
#: Version 2 adds the ``environment`` block (see :func:`bench_environment`).
#: Version 3 adds the optional ``metrics`` block - a telemetry document
#: (``repro.obs.exporters.metrics_document``) from an instrumented side
#: run, absent when the benchmark recorded none.
BENCH_SCHEMA_VERSION = 3

#: True when the harness should run a fast smoke pass (see module docstring).
SMOKE = "--smoke" in sys.argv or os.environ.get("BENCH_SMOKE", "") == "1"


def _json_dir() -> Path:
    """Where ``BENCH_<name>.json`` files go (see module docstring).

    Read at import time like ``SMOKE``: benchmarks write results during
    the test run, and the destination must not depend on pytest's
    argument plumbing.
    """
    for index, argument in enumerate(sys.argv):
        if argument == "--json" and index + 1 < len(sys.argv):
            return Path(sys.argv[index + 1])
        if argument.startswith("--json="):
            return Path(argument.split("=", 1)[1])
    env = os.environ.get("BENCH_JSON", "").strip()
    if env:
        return Path(env)
    return RESULTS_DIR


JSON_DIR = _json_dir()

if SMOKE:
    FIG4_DENSITIES = [0.01, 0.05, 0.5]
    FIG5_NODE_COUNTS = [10, 50, 70]
    TRIALS = 2
    MATCHING_SIZES = [50, 100]
    CHAIN_VERTICES = 2_000
    STREAM_EVENTS = 300
    STREAM_WINDOW = 60
    STREAM_SIZES = [12]
    STREAM_DENSITIES = [0.1]
    STREAM_TRIALS = 1
    STREAM_BURN_IN = 30
    STREAM_TAIL = 30
    ADAPTIVE_EPOCH = 50
    ADAPTIVE_EVENTS = 1_000
    ADAPTIVE_TAIL = 150
    ENGINE_EVENTS = 2_000
    ENGINE_SHARDS = 4
    ENGINE_CHUNK = 500
    ENGINE_JOBS = [1, 2]
    ENGINE_WORKERS = [1, 2]
    ENGINE_NODES = 40
    PIPELINE_EVENTS = 100_000
    PIPELINE_NODES = 150
    PIPELINE_CHUNK = 25_000
    PIPELINE_MATRIX_EVENTS = 2_000
    PIPELINE_MATRIX_JOBS = [1, 2]
    ROTATION_IDS = 600
    ROTATION_WINDOW = 300
    ROTATION_EVENTS = 900
    ROTATION_COVER_IDS = 300
    ROTATION_COVER_WINDOW = 150
    ROTATION_COVER_EVENTS = 600
    ROTATION_COVER_BOUNDARY = 30
    ROTATION_MATRIX_EVENTS = 2_000
else:
    #: Densities swept in Figs. 4 and 6.
    FIG4_DENSITIES = [0.01, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50]
    #: Node counts (per side) swept in Figs. 5 and 7.
    FIG5_NODE_COUNTS = [10, 30, 50, 70, 90, 110, 130, 150]
    #: Trials averaged per data point.
    TRIALS = 3
    #: Nodes per side in the matching-scaling benchmark.
    MATCHING_SIZES = [50, 100, 200, 400]
    #: Total vertices in the chain-graph stress variant (E5).  Chains force
    #: ``O(V)``-hop augmenting paths; this size used to be unreachable with
    #: the recursive matchers.
    CHAIN_VERTICES = 10_000
    #: Insert events per trial in the sliding-window ratio sweep (E8).
    STREAM_EVENTS = 4_000
    #: Sliding-window length for insert-only stream scenarios.
    STREAM_WINDOW = 500
    #: Nodes per side swept in the streaming grid.
    STREAM_SIZES = [30, 60]
    #: Density knob values swept in the streaming grid.
    STREAM_DENSITIES = [0.05, 0.2]
    #: Independent streams per grid cell.
    STREAM_TRIALS = 3
    #: Leading events summarised as burn-in.
    STREAM_BURN_IN = 200
    #: Trailing events summarised as steady state.
    STREAM_TAIL = 200
    #: Epoch-boundary interval (inserts) for the adaptive-window benchmark.
    ADAPTIVE_EPOCH = 250
    #: Insert events per stream in the adaptive-window head-to-head.
    ADAPTIVE_EVENTS = 8_000
    #: Trailing events summarised as the adaptive steady state.
    ADAPTIVE_TAIL = 800
    #: Insert events in the engine-scaling run (the ROADMAP's million-event
    #: target; expires ride on top, so the stream is longer than this).
    ENGINE_EVENTS = 1_200_000
    #: Logical shards of the scaling run (fixed across worker counts - the
    #: shard structure is part of the result's identity, jobs is not).
    ENGINE_SHARDS = 8
    #: Inserts per chunk (the checkpoint granularity).
    ENGINE_CHUNK = 100_000
    #: Legacy one-task-per-shard job counts (the old-style mode the
    #: scaling benchmark keeps one leg of, for cross-mode fingerprint
    #: identity).
    ENGINE_JOBS = [1, 2, 4, 8]
    #: Pool sizes swept by the scaling benchmark's ``workers`` legs (one
    #: stream pass per worker; the mode that actually scales).
    ENGINE_WORKERS = [1, 2, 4, 8]
    #: Threads/objects per side of the engine-scaling stream.
    ENGINE_NODES = 200
    #: Insert events in the batched-pipeline head-to-head (the ROADMAP's
    #: 1M+ target; expires ride on top, roughly doubling the stream).
    PIPELINE_EVENTS = 1_200_000
    #: Threads/objects per side of the pipeline stream (sets the clock
    #: dimension the timestamping stage pays per event).
    PIPELINE_NODES = 200
    #: Inserts per chunk in the pipeline head-to-head.
    PIPELINE_CHUNK = 100_000
    #: Events of each run in the fingerprint equality matrix.
    PIPELINE_MATRIX_EVENTS = 4_000
    #: Worker counts crossed into the fingerprint matrix.
    PIPELINE_MATRIX_JOBS = [1, 4]
    #: Thread/object ID space of the rotation-heavy churn stream.  Kept
    #: far above the window so most expiries kill their endpoints, which
    #: is what makes every retirement a pure-subset (delta-eligible)
    #: rotation and pushes the live clock dimension near the window size.
    ROTATION_IDS = 32_000
    #: Sliding-window length of the rotation stream (the live pair count
    #: a replay rotation re-observes; the clock dimension tracks it).
    ROTATION_WINDOW = 4_000
    #: Insert events of the rotation stream.  The first window's worth is
    #: warm-up (no expiries, no rotations); each event past it triggers
    #: an expiry and, nearly always, a retirement rotation - so this
    #: yields several hundred rotation-latency samples per strategy.
    ROTATION_EVENTS = 4_800
    #: ID space of the cover-repair churn stream (dense enough that the
    #: live graph keeps a non-trivial maximum matching to repair).
    ROTATION_COVER_IDS = 4_000
    #: Live-edge window of the cover-repair stream (the edge count a
    #: from-scratch rebuild re-inserts at every boundary).
    ROTATION_COVER_WINDOW = 2_000
    #: Edge events of the cover-repair stream (~440 boundary samples -
    #: enough that the recorded tail percentiles mean something, and the
    #: gated *median* is rock-stable).
    ROTATION_COVER_EVENTS = 24_000
    #: Events between epoch boundaries (cover queries) in the cover leg.
    ROTATION_COVER_BOUNDARY = 50
    #: Inserts per engine run in the rotation fingerprint matrix.
    ROTATION_MATRIX_EVENTS = 6_000

#: Nodes per side in the density sweeps (the paper uses 50 threads / 50 objects).
FIG4_NODES = 50
#: Fixed density in the node-count sweeps.
FIG5_DENSITY = 0.05


def write_result(name: str, text: str) -> Path:
    """Persist a rendered table under ``benchmarks/results`` and echo it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}\n(written to {path})")
    return path


def bench_environment() -> dict:
    """The attribution block stamped into every ``BENCH_<name>.json``.

    A rate that moves between two PRs means nothing until the runs are
    known to share a backend and a machine class; this block records the
    variables that historically explained phantom regressions: the
    process-wide kernel backend selection, the numpy version (or null
    when the accelerator is absent - the python fallback's numbers are
    not comparable to the numpy path's), the interpreter version, and
    the CPU count (``--jobs`` speedups are meaningless on one core).
    """
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:
        numpy_version = None
    from repro.core.kernel import default_backend_name

    return {
        "backend": default_backend_name(),
        "numpy_version": numpy_version,
        "python_version": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }


def write_json_result(name: str, payload: dict, metrics: dict | None = None) -> Path:
    """Persist one benchmark's numbers as ``BENCH_<name>.json``.

    ``payload`` should hold plain JSON-safe scalars/lists/dicts
    (events/sec, ratios, parameter values); the envelope adds
    ``schema`` (:data:`BENCH_SCHEMA_VERSION`), the benchmark name,
    whether this was a smoke (throwaway-scale) run, and the
    :func:`bench_environment` attribution block.  ``metrics``, when
    given, is a telemetry document (counter/histogram/derived blocks
    from ``repro.obs.exporters.metrics_document``) captured by a
    *separate* instrumented pass - never by the timed legs themselves,
    so the published rates stay telemetry-free.  Keys are emitted
    sorted so reruns of identical numbers produce byte-identical files
    and archived results diff cleanly.
    """
    JSON_DIR.mkdir(parents=True, exist_ok=True)
    path = JSON_DIR / f"BENCH_{name}.json"
    document = {
        "schema": BENCH_SCHEMA_VERSION,
        "benchmark": name,
        "smoke": SMOKE,
        "environment": bench_environment(),
        **payload,
    }
    if metrics is not None:
        document["metrics"] = metrics
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"(json results written to {path})")
    return path
