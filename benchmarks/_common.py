"""Shared constants and helpers for the benchmark harness.

Kept outside ``conftest.py`` so benchmark modules can import them directly
(``from _common import ...``) regardless of how pytest was invoked.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Densities swept in Figs. 4 and 6.
FIG4_DENSITIES = [0.01, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50]
#: Node counts (per side) swept in Figs. 5 and 7.
FIG5_NODE_COUNTS = [10, 30, 50, 70, 90, 110, 130, 150]
#: Trials averaged per data point.
TRIALS = 3
#: Nodes per side in the density sweeps (the paper uses 50 threads / 50 objects).
FIG4_NODES = 50
#: Fixed density in the node-count sweeps.
FIG5_DENSITY = 0.05


def write_result(name: str, text: str) -> Path:
    """Persist a rendered table under ``benchmarks/results`` and echo it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}\n(written to {path})")
    return path
