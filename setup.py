"""Setuptools shim for environments without the `wheel` package.

All project metadata lives in pyproject.toml; this file only exists so that
`pip install -e .` can fall back to the legacy editable-install path when
PEP 517 editable builds are unavailable (e.g. offline machines without the
`wheel` distribution installed).
"""

from setuptools import setup

setup()
