"""Incremental maximum bipartite matching: augment on edge insert.

The online evaluation (Section V) reveals a thread-object graph one edge
at a time and wants to know, after *every* reveal, how the online clock
sizes compare with the offline optimum of the graph revealed so far.
Recomputing Hopcroft-Karp from scratch per edge costs
``O(E^2 * sqrt(V))`` over a run; :class:`IncrementalMatching` instead
maintains a maximum matching across edge insertions.

The engine rests on one classical fact: if a matching is maximum and a
single edge ``(t, o)`` is inserted, the maximum matching size grows by at
most one, and any augmenting path that now exists must traverse the new
edge.  Each insert therefore needs at most one (iterative, stack-based)
alternating-path search anchored at the new edge:

* both endpoints unmatched - match them directly, ``O(1)``;
* ``t`` unmatched - any augmenting path must *start* at ``t``, so one
  thread-side search from ``t`` suffices;
* ``o`` unmatched - the mirror image: one object-side search from ``o``;
* both matched - an augmenting path must look like
  ``s ~~> o_t -> t -> o -> t_o ~~> e`` (entering ``t`` through its matched
  edge and leaving ``o`` through its matched edge), so the engine first
  re-matches ``o_t`` away from ``t`` (object-side search), then, with
  ``t`` freed, runs a plain thread-side search from ``t``.  If either
  phase fails no augmenting path exists and the matching is already
  maximum again; the first phase's re-matching is harmless because it
  preserves both size and validity.

Every phase is a single ``O(V + E)`` sweep, against ``O(E * sqrt(V))``
for a from-scratch Hopcroft-Karp per insert.  The per-insert matching
sizes are recorded and exposed through :meth:`optimal_size_trajectory`,
which by König-Egerváry (Theorem 3 of the paper) is exactly the offline
optimal clock-size trajectory of the reveal order.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.graph.bipartite import BipartiteGraph, Edge, Vertex
from repro.graph.matching import Matching, augment_from_unmatched_thread


class IncrementalMatching:
    """A maximum matching maintained across edge insertions.

    The matching is maximum after every :meth:`add_edge` call; the
    invariant is what lets each insert get away with a single anchored
    augmenting-path search (see the module docstring).
    """

    def __init__(self, edges: Iterable[Edge] = ()) -> None:
        self._graph = BipartiteGraph()
        self._thread_to_object: Dict[Vertex, Vertex] = {}
        self._object_to_thread: Dict[Vertex, Vertex] = {}
        self._trajectory: List[int] = []
        for thread, obj in edges:
            self.add_edge(thread, obj)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def graph(self) -> BipartiteGraph:
        """The graph revealed so far."""
        return self._graph

    @property
    def size(self) -> int:
        """Current maximum matching size = optimal clock size (Theorem 3)."""
        return len(self._thread_to_object)

    def __len__(self) -> int:
        return len(self._thread_to_object)

    def matching(self) -> Matching:
        """The current maximum matching as an immutable :class:`Matching`."""
        return Matching(self._thread_to_object.items())

    def optimal_size_trajectory(self) -> Tuple[int, ...]:
        """Maximum matching size after each :meth:`add_edge` call so far.

        One entry per call (repeat edges included), so feeding a reveal
        order through the engine yields the per-event offline-optimum
        trajectory the competitive-ratio plots need.
        """
        return tuple(self._trajectory)

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def add_edge(self, thread: Vertex, obj: Vertex) -> bool:
        """Insert one edge and restore maximality.

        Returns ``True`` iff the maximum matching grew.  Inserting an
        already-present edge is a no-op (size unchanged), mirroring
        :meth:`BipartiteGraph.add_edge`.
        """
        grew = False
        if self._graph.add_edge(thread, obj):
            thread_matched = thread in self._thread_to_object
            object_matched = obj in self._object_to_thread
            # An augmenting path runs from a free thread to a free object,
            # so a search can only succeed while both sides have free
            # vertices.  Checking first is what keeps the saturated regime
            # (matching size pinned at min(n, m), common in dense reveals)
            # at O(1) per insert instead of one doomed O(V + E) sweep each.
            matched = len(self._thread_to_object)
            free_threads = self._graph.num_threads - matched
            free_objects = self._graph.num_objects - matched
            if not thread_matched and not object_matched:
                self._thread_to_object[thread] = obj
                self._object_to_thread[obj] = thread
                grew = True
            elif not thread_matched:
                if free_objects:
                    grew = self._augment_from_thread(thread)
            elif not object_matched:
                if free_threads:
                    grew = self._augment_from_object(obj)
            elif free_threads and free_objects:
                grew = self._augment_through_matched_edge(thread, obj)
        self._trajectory.append(len(self._thread_to_object))
        return grew

    def add_edges(self, pairs: Iterable[Edge]) -> "IncrementalMatching":
        """Insert a whole sequence of edges; returns ``self``."""
        for thread, obj in pairs:
            self.add_edge(thread, obj)
        return self

    # ------------------------------------------------------------------
    # Anchored augmenting-path searches (iterative)
    # ------------------------------------------------------------------
    def _augment_from_thread(self, root: Vertex) -> bool:
        """Hungarian-style search from an unmatched thread; flips on success."""
        return augment_from_unmatched_thread(
            self._graph, self._thread_to_object, self._object_to_thread, root
        )

    def _augment_from_object(
        self,
        root: Vertex,
        banned_thread: Optional[Vertex] = None,
        banned_object: Optional[Vertex] = None,
    ) -> bool:
        """Mirror-image search giving ``root`` (an object) a new partner.

        Walks unmatched edges from objects to threads and matched edges
        from threads to their objects, looking for an unmatched thread.
        ``root``'s own matched edge (if any) is never taken, so on success
        the flip re-matches ``root`` away from its current partner.

        The both-endpoints-matched case passes the new edge's endpoints as
        ``banned_thread``/``banned_object``: the prefix of a simple
        augmenting path cannot revisit them.
        """
        graph = self._graph
        thread_to_object = self._thread_to_object
        object_to_thread = self._object_to_thread
        visited_threads: Set[Vertex] = set()
        if banned_thread is not None:
            visited_threads.add(banned_thread)
        visited_objects: Set[Vertex] = {root}
        if banned_object is not None:
            visited_objects.add(banned_object)
        # Frame: [object, neighbor-iterator, contested-thread].
        stack = [[root, iter(graph.object_neighbors(root)), None]]
        while stack:
            frame = stack[-1]
            obj = frame[0]
            partner = object_to_thread.get(obj)
            pushed = False
            for thread in frame[1]:
                if thread == partner or thread in visited_threads:
                    continue
                visited_threads.add(thread)
                frame[2] = thread
                current = thread_to_object.get(thread)
                if current is None:
                    for frame_obj, _, frame_thread in stack:
                        thread_to_object[frame_thread] = frame_obj
                        object_to_thread[frame_obj] = frame_thread
                    return True
                if current in visited_objects:
                    continue
                visited_objects.add(current)
                stack.append(
                    [current, iter(graph.object_neighbors(current)), None]
                )
                pushed = True
                break
            if not pushed:
                stack.pop()
        return False

    def _augment_through_matched_edge(self, thread: Vertex, obj: Vertex) -> bool:
        """Both endpoints matched: free ``thread``, then search from it.

        Phase 1 re-matches ``thread``'s partner object away from it (the
        ``s ~~> o_t`` prefix of the required path shape); ``obj`` is banned
        because the prefix of a simple augmenting path cannot revisit it.
        Phase 2 is then the plain unmatched-thread case.  If phase 1
        succeeds but phase 2 fails, the matching has merely been exchanged
        for another of the same (still maximum) size: any augmenting path
        would have to start at the only freed thread, and phase 2 just
        proved there is none.
        """
        partner = self._thread_to_object[thread]
        del self._thread_to_object[thread]
        del self._object_to_thread[partner]
        # Re-match the freed partner object without using ``thread``/``obj``.
        if not self._augment_from_object(partner, banned_thread=thread, banned_object=obj):
            # No alternating prefix exists: restore and report no growth.
            self._thread_to_object[thread] = partner
            self._object_to_thread[partner] = thread
            return False
        return self._augment_from_thread(thread)


def incremental_optimum_trajectory(pairs: Iterable[Edge]) -> Tuple[int, ...]:
    """Maximum-matching size after each pair of ``pairs`` is revealed.

    Convenience wrapper over :class:`IncrementalMatching` for callers that
    only want the trajectory (the online simulator and the
    competitive-ratio analysis).
    """
    return IncrementalMatching(pairs).optimal_size_trajectory()
