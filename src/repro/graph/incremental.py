"""Dynamic maximum bipartite matching: augment on insert, repair on delete.

The streaming evaluation reveals a thread-object graph one event at a time
and wants to know, after *every* event, how the online clock sizes compare
with the offline optimum of the graph currently live.  Two regimes matter:

* **append-only** (the paper's Section V setting): edges are only ever
  inserted, the optimum only grows;
* **sliding-window** (live-system monitoring): an event stops mattering
  once it falls out of the monitoring window, so edges also *expire* and
  the optimum can shrink again.

Recomputing Hopcroft-Karp from scratch per event costs
``O(E^2 * sqrt(V))`` over a run; :class:`DynamicMatching` instead
maintains a maximum matching across both edge insertions and deletions.

Insertion rests on one classical fact: if a matching is maximum and a
single edge ``(t, o)`` is inserted, the maximum matching size grows by at
most one, and any augmenting path that now exists must traverse the new
edge.  Each insert therefore needs at most one (iterative, stack-based)
alternating-path search anchored at the new edge:

* both endpoints unmatched - match them directly, ``O(1)``;
* ``t`` unmatched - any augmenting path must *start* at ``t``, so one
  thread-side search from ``t`` suffices;
* ``o`` unmatched - the mirror image: one object-side search from ``o``;
* both matched - an augmenting path must look like
  ``s ~~> o_t -> t -> o -> t_o ~~> e`` (entering ``t`` through its matched
  edge and leaving ``o`` through its matched edge), so the engine first
  re-matches ``o_t`` away from ``t`` (object-side search), then, with
  ``t`` freed, runs a plain thread-side search from ``t``.  If either
  phase fails no augmenting path exists and the matching is already
  maximum again; the first phase's re-matching is harmless because it
  preserves both size and validity.

Deletion is the mirror argument.  Removing a *non-matched* edge never
invalidates maximality (the matching is untouched and the edge set only
shrank).  Removing a *matched* edge ``(t, o)`` frees exactly ``t`` and
``o``; any augmenting path of the shrunken graph must start at ``t`` or
end at ``o`` (a path avoiding both would have been augmenting before the
deletion, contradicting maximality), so one thread-side search from ``t``
and - only if that fails - one object-side search from ``o`` restore
maximality with at most one re-augmentation.  If both fail the optimum
has genuinely shrunk by one.

Every search phase is a single ``O(V + E)`` sweep, against
``O(E * sqrt(V))`` for a from-scratch Hopcroft-Karp per event.  Because
streamed reveals may repeat a live pair, the engine counts per-edge
multiplicity: an edge leaves the graph only when *every* live event that
revealed it has expired.  The minimum-vertex-cover *size* is maintained
lazily for free (it always equals the matching size, by König-Egerváry /
Theorem 3 of the paper); the cover's concrete vertex set is derived from
*incrementally repaired* alternating-reachability sets (see
:meth:`DynamicMatching.vertex_cover`) and cached until the next
structural change, so an epoch boundary that queries the cover after a
quiet interval pays ``O(V)`` assembly, not an ``O(V + E)`` sweep.

:class:`IncrementalMatching` survives as the append-only subclass, and
:func:`sliding_window_optimum_trajectory` packages the windowed regime
for the online simulator and the ratio sweeps.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.exceptions import GraphError
from repro.graph.bipartite import BipartiteGraph, Edge, Vertex
from repro.graph.matching import Matching, augment_from_unmatched_thread
from repro.graph.vertex_cover import alternating_reachable

# Telemetry write handle (write-only in result paths per C206): counts
# how often the König cover could be assembled from repaired
# reachability sets vs rebuilt by a full alternating-forest sweep.
from repro.obs.registry import active as _metrics_active


class DynamicMatching:
    """A maximum matching maintained across edge insertions *and* deletions.

    The matching is maximum after every :meth:`add_edge` and
    :meth:`remove_edge` call; the invariant is what lets each mutation get
    away with at most two anchored augmenting-path searches (see the
    module docstring).  Repeated inserts of a live edge are counted, so a
    sliding window that expires events one by one only removes the edge
    from the graph when its last live occurrence leaves.
    """

    def __init__(
        self, edges: Iterable[Edge] = (), record_trajectory: bool = True
    ) -> None:
        self._graph = BipartiteGraph()
        self._thread_to_object: Dict[Vertex, Vertex] = {}
        self._object_to_thread: Dict[Vertex, Vertex] = {}
        self._multiplicity: Dict[Edge, int] = {}
        # The per-mutation size history is opt-out: drivers that stream
        # unbounded workloads and keep their own per-insert samples (the
        # online simulator, the windowed trajectory helper) disable it so
        # the engine's memory stays proportional to the *live* graph, not
        # to the total number of events ever processed.
        self._trajectory: Optional[List[int]] = [] if record_trajectory else None
        self._cover_cache: Optional[FrozenSet[Vertex]] = None
        # Alternating-reachability sets (König's Z: vertices reachable
        # from free threads along alternating paths), maintained
        # incrementally across mutations.  ``_reach_threads is None``
        # means dirty - the next cover query rebuilds both sets with one
        # full sweep.  Exact for the empty graph, so start clean.
        self._reach_threads: Optional[Set[Vertex]] = set()
        self._reach_objects: Set[Vertex] = set()
        for thread, obj in edges:
            self.add_edge(thread, obj)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def graph(self) -> BipartiteGraph:
        """The graph currently live (revealed and not expired)."""
        return self._graph

    @property
    def size(self) -> int:
        """Current maximum matching size = optimal clock size (Theorem 3)."""
        return len(self._thread_to_object)

    @property
    def cover_size(self) -> int:
        """Current minimum vertex cover size.

        Lazily maintained in the strongest possible sense: by
        König-Egerváry it always equals the matching size, so no cover is
        ever constructed to answer this query.
        """
        return len(self._thread_to_object)

    def __len__(self) -> int:
        return len(self._thread_to_object)

    def matching(self) -> Matching:
        """The current maximum matching as an immutable :class:`Matching`."""
        return Matching(self._thread_to_object.items())

    def vertex_cover(self) -> FrozenSet[Vertex]:
        """A minimum vertex cover of the live graph (König construction).

        Assembled on demand as ``(threads - Z_threads) | Z_objects`` from
        the *incrementally repaired* alternating-reachability sets and
        cached until the next structural change (an edge actually
        entering or leaving the graph).  Mutations that provably leave
        the alternating forest intact - multiplicity bumps, inserts that
        the matching absorbed without moving (a monotone closure adds any
        newly reachable suffix), non-matched deletions whose thread was
        unreachable, prunes of isolated vertices - keep the sets exact;
        anything that moves a matched edge marks them dirty, and the next
        query rebuilds them with one :func:`alternating_reachable` sweep.
        The ``matching.cover.repairs`` / ``matching.cover.rebuilds``
        counters record which path served each (cache-missing) query; the
        property tests assert the repaired cover equals the from-scratch
        König cover under random interleaved churn.
        """
        if self._cover_cache is None:
            graph = self._graph
            registry = _metrics_active()
            if self._reach_threads is None:
                reachable = alternating_reachable(graph, self.matching())
                self._reach_threads = set(graph.threads & reachable)
                self._reach_objects = set(graph.objects & reachable)
                if registry is not None:
                    registry.add("matching.cover.rebuilds")
            elif registry is not None:
                registry.add("matching.cover.repairs")
            self._cover_cache = frozenset(
                (graph.threads - self._reach_threads) | self._reach_objects
            )
        return self._cover_cache

    def multiplicity(self, thread: Vertex, obj: Vertex) -> int:
        """How many live events currently reveal the edge ``(thread, obj)``."""
        return self._multiplicity.get((thread, obj), 0)

    def optimal_size_trajectory(self) -> Tuple[int, ...]:
        """Maximum matching size after each mutating call so far.

        One entry per :meth:`add_edge` / :meth:`remove_edge` call (repeat
        edges included), so feeding a reveal order through the engine
        yields the per-event offline-optimum trajectory the
        competitive-ratio plots need.  Raises :class:`GraphError` if the
        engine was built with ``record_trajectory=False``.
        """
        if self._trajectory is None:
            raise GraphError(
                "this engine was built with record_trajectory=False; "
                "sample .size per event instead"
            )
        return tuple(self._trajectory)

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def add_edge(self, thread: Vertex, obj: Vertex) -> bool:
        """Insert one edge occurrence and restore maximality.

        Returns ``True`` iff the maximum matching grew.  Inserting an
        already-live edge only bumps its multiplicity (size unchanged).
        """
        grew = False
        key = (thread, obj)
        if key in self._multiplicity:
            self._multiplicity[key] += 1
        else:
            thread_known = self._graph.has_thread(thread)
            self._graph.add_edge(thread, obj)
            self._multiplicity[key] = 1
            self._cover_cache = None
            thread_matched = thread in self._thread_to_object
            object_matched = obj in self._object_to_thread
            # An augmenting path runs from a free thread to a free object,
            # so a search can only succeed while both sides have free
            # vertices.  Checking first is what keeps the saturated regime
            # (matching size pinned at min(n, m), common in dense reveals)
            # at O(1) per insert instead of one doomed O(V + E) sweep each.
            matched = len(self._thread_to_object)
            free_threads = self._graph.num_threads - matched
            free_objects = self._graph.num_objects - matched
            if not thread_matched and not object_matched:
                self._thread_to_object[thread] = obj
                self._object_to_thread[obj] = thread
                grew = True
                # A pre-existing free thread was a root of the alternating
                # forest; matching it away is non-monotone.  A brand-new
                # thread never was a root, and a pre-existing free object
                # cannot have been reachable (that would have been an
                # augmenting path), so reachability is untouched.
                if thread_known:
                    self._reach_threads = None
            elif not thread_matched:
                if free_objects:
                    grew = self._augment_from_thread(thread)
                if grew:
                    self._reach_threads = None
                else:
                    self._absorb_reachable(thread, obj)
            elif not object_matched:
                if free_threads:
                    grew = self._augment_from_object(obj)
                if grew:
                    self._reach_threads = None
                else:
                    self._absorb_reachable(thread, obj)
            else:
                if free_threads and free_objects:
                    grew = self._augment_through_matched_edge(thread, obj)
                if grew or thread not in self._thread_to_object:
                    # Success flipped the path; a phase-1 exchange (the
                    # returned-False case that left ``thread`` free) also
                    # moved matched edges.  Either way the forest moved.
                    self._reach_threads = None
                else:
                    self._absorb_reachable(thread, obj)
        if self._trajectory is not None:
            self._trajectory.append(len(self._thread_to_object))
        return grew

    def add_edges(self, pairs: Iterable[Edge]) -> "DynamicMatching":
        """Insert a whole sequence of edges; returns ``self``."""
        for thread, obj in pairs:
            self.add_edge(thread, obj)
        return self

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def remove_edge(self, thread: Vertex, obj: Vertex) -> bool:
        """Expire one edge occurrence and restore maximality.

        Returns ``True`` iff the maximum matching shrank.  While other
        live occurrences of the edge remain, only the multiplicity drops.
        Raises :class:`~repro.exceptions.GraphError` if the edge is not
        live (more expiries than reveals is always a driver bug).
        """
        key = (thread, obj)
        count = self._multiplicity.get(key, 0)
        if count == 0:
            raise GraphError(f"edge ({thread!r}, {obj!r}) is not live")
        shrank = False
        if count > 1:
            self._multiplicity[key] = count - 1
        else:
            del self._multiplicity[key]
            self._graph.remove_edge(thread, obj)
            self._cover_cache = None
            if self._thread_to_object.get(thread) == obj:
                # The deleted edge carried the matching: free both
                # endpoints, then try the only two path families that can
                # exist (start at the freed thread / end at the freed
                # object - see the module docstring).  Freed endpoints
                # and repair flips both move the alternating forest.
                self._reach_threads = None
                del self._thread_to_object[thread]
                del self._object_to_thread[obj]
                if not self._augment_from_thread(thread):
                    shrank = not self._augment_from_object(obj)
            elif (
                self._reach_threads is not None
                and thread in self._reach_threads
            ):
                # The removed non-matched edge may have been the only
                # alternating step into some reachable suffix; deletion
                # is non-monotone, so recompute on the next cover query.
                # A thread outside Z contributed nothing through this
                # edge (non-matched edges are walked thread-to-object),
                # so Z is untouched in that case.
                self._reach_threads = None
            # Prune endpoints the removal isolated: a degree-0 vertex is
            # necessarily unmatched (a matched pair is always an edge) and
            # can never join an augmenting path, and on unbounded streams
            # with fresh vertex ids the dead vertices would otherwise
            # accumulate without bound.
            if self._graph.degree(thread) == 0:
                self._graph.remove_isolated_vertex(thread)
                if self._reach_threads is not None:
                    self._reach_threads.discard(thread)
            if self._graph.degree(obj) == 0:
                self._graph.remove_isolated_vertex(obj)
                if self._reach_threads is not None:
                    self._reach_objects.discard(obj)
        if self._trajectory is not None:
            self._trajectory.append(len(self._thread_to_object))
        return shrank

    def remove_edges(self, pairs: Iterable[Edge]) -> "DynamicMatching":
        """Expire a whole sequence of edges; returns ``self``."""
        for thread, obj in pairs:
            self.remove_edge(thread, obj)
        return self

    # ------------------------------------------------------------------
    # Incremental alternating reachability (König's Z)
    # ------------------------------------------------------------------
    def _absorb_reachable(self, thread: Vertex, obj: Vertex) -> None:
        """Close the reachability sets over an insert that moved no matching.

        Called after a structural insert of ``(thread, obj)`` that left
        every matched edge in place.  Z (the alternating-reachability
        set) is the least fixed point of monotone rules - free threads
        are roots, non-matched edges walk thread-to-object, matched
        edges walk object-to-thread - and both possible additions (a new
        free-thread root, a new thread-to-object step) only *add* rules,
        so seeding the old Z with the new entry points and closing is
        exact, not approximate.  No-op when the sets are already dirty.
        """
        reach_threads = self._reach_threads
        if reach_threads is None:
            return
        reach_objects = self._reach_objects
        thread_to_object = self._thread_to_object
        object_to_thread = self._object_to_thread
        graph = self._graph
        # Threads newly absorbed into Z whose edges still need scanning.
        pending: List[Vertex] = []
        if thread not in thread_to_object and thread not in reach_threads:
            reach_threads.add(thread)
            pending.append(thread)
        elif (
            thread in reach_threads
            and obj not in reach_objects
            and thread_to_object.get(thread) != obj
        ):
            # Only the new edge can have opened anything: ``thread`` was
            # already closed over its other edges when it joined Z.
            reach_objects.add(obj)
            partner = object_to_thread.get(obj)
            if partner is not None and partner not in reach_threads:
                reach_threads.add(partner)
                pending.append(partner)
        while pending:
            current = pending.pop()
            matched = thread_to_object.get(current)
            for neighbor in graph.thread_neighbors(current):
                if neighbor == matched or neighbor in reach_objects:
                    continue
                reach_objects.add(neighbor)
                partner = object_to_thread.get(neighbor)
                if partner is not None and partner not in reach_threads:
                    reach_threads.add(partner)
                    pending.append(partner)

    # ------------------------------------------------------------------
    # Anchored augmenting-path searches (iterative)
    # ------------------------------------------------------------------
    def _augment_from_thread(self, root: Vertex) -> bool:
        """Hungarian-style search from an unmatched thread; flips on success."""
        return augment_from_unmatched_thread(
            self._graph, self._thread_to_object, self._object_to_thread, root
        )

    def _augment_from_object(
        self,
        root: Vertex,
        banned_thread: Optional[Vertex] = None,
        banned_object: Optional[Vertex] = None,
    ) -> bool:
        """Mirror-image search giving ``root`` (an object) a new partner.

        Walks unmatched edges from objects to threads and matched edges
        from threads to their objects, looking for an unmatched thread.
        ``root``'s own matched edge (if any) is never taken, so on success
        the flip re-matches ``root`` away from its current partner (or
        simply matches it, if ``root`` was free - the decremental repair
        case).

        The both-endpoints-matched insert case passes the new edge's
        endpoints as ``banned_thread``/``banned_object``: the prefix of a
        simple augmenting path cannot revisit them.
        """
        graph = self._graph
        thread_to_object = self._thread_to_object
        object_to_thread = self._object_to_thread
        visited_threads: Set[Vertex] = set()
        if banned_thread is not None:
            visited_threads.add(banned_thread)
        visited_objects: Set[Vertex] = {root}
        if banned_object is not None:
            visited_objects.add(banned_object)
        # Frame: [object, neighbor-iterator, contested-thread].
        stack = [[root, iter(graph.object_neighbors(root)), None]]
        while stack:
            frame = stack[-1]
            obj = frame[0]
            partner = object_to_thread.get(obj)
            pushed = False
            for thread in frame[1]:
                if thread == partner or thread in visited_threads:
                    continue
                visited_threads.add(thread)
                frame[2] = thread
                current = thread_to_object.get(thread)
                if current is None:
                    for frame_obj, _, frame_thread in stack:
                        thread_to_object[frame_thread] = frame_obj
                        object_to_thread[frame_obj] = frame_thread
                    return True
                if current in visited_objects:
                    continue
                visited_objects.add(current)
                stack.append(
                    [current, iter(graph.object_neighbors(current)), None]
                )
                pushed = True
                break
            if not pushed:
                stack.pop()
        return False

    def _augment_through_matched_edge(self, thread: Vertex, obj: Vertex) -> bool:
        """Both endpoints matched: free ``thread``, then search from it.

        Phase 1 re-matches ``thread``'s partner object away from it (the
        ``s ~~> o_t`` prefix of the required path shape); ``obj`` is banned
        because the prefix of a simple augmenting path cannot revisit it.
        Phase 2 is then the plain unmatched-thread case.  If phase 1
        succeeds but phase 2 fails, the matching has merely been exchanged
        for another of the same (still maximum) size: any augmenting path
        would have to start at the only freed thread, and phase 2 just
        proved there is none.
        """
        partner = self._thread_to_object[thread]
        del self._thread_to_object[thread]
        del self._object_to_thread[partner]
        # Re-match the freed partner object without using ``thread``/``obj``.
        if not self._augment_from_object(partner, banned_thread=thread, banned_object=obj):
            # No alternating prefix exists: restore and report no growth.
            self._thread_to_object[thread] = partner
            self._object_to_thread[partner] = thread
            return False
        return self._augment_from_thread(thread)


class IncrementalMatching(DynamicMatching):
    """The append-only view of :class:`DynamicMatching`.

    Kept as a named class because the insert-only regime is the paper's
    own Section V setting and several callers (the offline trajectory
    helpers, the order-sensitivity analysis) want the name to say what
    they rely on: the optimum trajectory of an append-only engine is
    monotone.  The behaviour is exactly the parent's.
    """


def incremental_optimum_trajectory(pairs: Iterable[Edge]) -> Tuple[int, ...]:
    """Maximum-matching size after each pair of ``pairs`` is revealed.

    Convenience wrapper over :class:`IncrementalMatching` for callers that
    only want the append-only trajectory (the online simulator and the
    competitive-ratio analysis).
    """
    return IncrementalMatching(pairs).optimal_size_trajectory()


def sliding_window_optimum_trajectory(
    events: Iterable[Edge], window: int
) -> Tuple[int, ...]:
    """Per-event offline optimum of a sliding window over an event stream.

    ``events`` is a (lazy) iterable of revealed ``(thread, object)``
    pairs; only the most recent ``window`` events are live at any point.
    Before the ``i``-th event is inserted, the event that fell out of the
    window (if any) is expired, so ``result[i]`` is the minimum
    vertex-cover size of the graph formed by events
    ``i - window + 1 ... i`` - exactly what a monitoring agent that only
    answers causality queries about recent history needs to provision.

    The stream is consumed one event at a time (never materialised), and
    repeated pairs inside the window are handled by the engine's
    multiplicity counts.
    """
    if window < 1:
        raise GraphError(f"window must be >= 1, got {window}")
    engine = DynamicMatching(record_trajectory=False)
    live: Deque[Edge] = deque()
    sizes: List[int] = []
    for thread, obj in events:
        if len(live) == window:
            old_thread, old_obj = live.popleft()
            engine.remove_edge(old_thread, old_obj)
        live.append((thread, obj))
        engine.add_edge(thread, obj)
        sizes.append(engine.size)
    return tuple(sizes)
