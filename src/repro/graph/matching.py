"""Maximum bipartite matching algorithms.

The paper's offline algorithm (Section III-B) needs a maximum matching of
the thread-object bipartite graph so that the König-Egerváry theorem can
turn it into a minimum vertex cover.  The paper cites the Hopcroft-Karp
algorithm, which this module implements from scratch, along with two
simpler matchers used as independent cross-checks:

* :func:`hopcroft_karp_matching` - phase-based shortest augmenting paths,
  ``O(E * sqrt(V))``; the production matcher.
* :func:`augmenting_path_matching` - classic Hungarian-style single
  augmenting-path search, ``O(V * E)``; simple enough to trust by
  inspection, used to validate Hopcroft-Karp in tests and as a baseline in
  the matching-scaling benchmark.
* :func:`brute_force_matching` - exponential enumeration for very small
  graphs; the ground-truth oracle in property tests.

All three return a :class:`Matching` object mapping threads to objects.

Both production matchers walk their augmenting paths with *explicit
stacks* rather than recursion: an augmenting path visits one stack frame
per hop, so the recursive formulation blows Python's recursion limit on
chain-like graphs of around a thousand threads (paths of length ``O(V)``
are routine there).  The iterative forms handle 10k+-vertex chains in the
matching-scaling benchmark; see :mod:`repro.graph.incremental` for the
edge-by-edge incremental variant used by the online evaluation.
"""

from __future__ import annotations

from collections import deque
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Set, Tuple

from repro.exceptions import MatchingError
from repro.graph.bipartite import BipartiteGraph, Edge, Vertex, vertex_sort_key

_INFINITY = float("inf")


class Matching:
    """A matching in a thread-object bipartite graph.

    Internally stored as two mutually-consistent dictionaries, thread to
    object and object to thread.  Instances are immutable from the outside;
    the matcher functions build them via the private constructor argument.
    """

    __slots__ = ("_thread_to_object", "_object_to_thread")

    def __init__(self, pairs: Iterable[Edge] = ()) -> None:
        self._thread_to_object: Dict[Vertex, Vertex] = {}
        self._object_to_thread: Dict[Vertex, Vertex] = {}
        for thread, obj in pairs:
            if thread in self._thread_to_object:
                raise MatchingError(f"thread {thread!r} matched twice")
            if obj in self._object_to_thread:
                raise MatchingError(f"object {obj!r} matched twice")
            self._thread_to_object[thread] = obj
            self._object_to_thread[obj] = thread

    # -- queries ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._thread_to_object)

    def __iter__(self) -> Iterator[Edge]:
        return iter(self._thread_to_object.items())

    def __contains__(self, edge: object) -> bool:
        if not isinstance(edge, tuple) or len(edge) != 2:
            return False
        thread, obj = edge
        return self._thread_to_object.get(thread) == obj

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Matching):
            return NotImplemented
        return self._thread_to_object == other._thread_to_object

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Matching(size={len(self)})"

    @property
    def edges(self) -> FrozenSet[Edge]:
        return frozenset(self._thread_to_object.items())

    def thread_partner(self, thread: Vertex) -> Optional[Vertex]:
        """The object matched to ``thread``, or ``None`` if unmatched."""
        return self._thread_to_object.get(thread)

    def object_partner(self, obj: Vertex) -> Optional[Vertex]:
        """The thread matched to ``obj``, or ``None`` if unmatched."""
        return self._object_to_thread.get(obj)

    def is_thread_matched(self, thread: Vertex) -> bool:
        return thread in self._thread_to_object

    def is_object_matched(self, obj: Vertex) -> bool:
        return obj in self._object_to_thread

    def matched_threads(self) -> FrozenSet[Vertex]:
        return frozenset(self._thread_to_object)

    def matched_objects(self) -> FrozenSet[Vertex]:
        return frozenset(self._object_to_thread)

    def unmatched_threads(self, graph: BipartiteGraph) -> FrozenSet[Vertex]:
        """Threads of ``graph`` not covered by this matching (the set ``S``
        in Algorithm 1)."""
        return graph.threads - self.matched_threads()

    def unmatched_objects(self, graph: BipartiteGraph) -> FrozenSet[Vertex]:
        return graph.objects - self.matched_objects()

    def as_mapping(self) -> Mapping[Vertex, Vertex]:
        """Read-only view of the thread-to-object mapping."""
        return dict(self._thread_to_object)


def validate_matching(graph: BipartiteGraph, matching: Matching) -> None:
    """Raise :class:`MatchingError` unless ``matching`` is valid for ``graph``.

    Validity means every matched pair is an edge of the graph; the
    one-partner-per-vertex invariant is enforced by :class:`Matching`
    itself at construction time.
    """
    for thread, obj in matching:
        if not graph.has_edge(thread, obj):
            raise MatchingError(
                f"matched pair ({thread!r}, {obj!r}) is not an edge of the graph"
            )


def is_maximum_matching(graph: BipartiteGraph, matching: Matching) -> bool:
    """Check maximality by searching for an augmenting path.

    By Berge's theorem a matching is maximum iff the graph contains no
    augmenting path with respect to it.  This runs a single BFS/DFS sweep
    and is used in tests to certify matcher output without trusting any
    particular matcher.
    """
    validate_matching(graph, matching)
    return _find_augmenting_path(graph, matching) is None


# ---------------------------------------------------------------------------
# Simple augmenting-path matcher (Hungarian-style)
# ---------------------------------------------------------------------------
def augment_from_unmatched_thread(
    graph: BipartiteGraph,
    thread_to_object: Dict[Vertex, Vertex],
    object_to_thread: Dict[Vertex, Vertex],
    root: Vertex,
) -> bool:
    """One Hungarian augmenting-path search from an unmatched thread.

    Flips the path into the two matching dicts and returns ``True`` on
    success.  Runs on an explicit stack: one frame per thread on the
    alternating path, with the contested object recorded in the frame so
    a successful path can be flipped by a single unwind.  Augmenting
    paths are ``O(V)`` long on chain-like graphs, which used to blow
    Python's recursion limit at around a thousand threads.

    Shared by :func:`augmenting_path_matching` and the incremental engine
    (:class:`~repro.graph.incremental.IncrementalMatching`), which anchor
    the same search differently.
    """
    visited: Set[Vertex] = set()
    # Each frame is [thread, neighbor-iterator, contested-object]: the
    # object this frame has tentatively claimed, pending the displaced
    # thread (the frame above) finding a new partner.
    stack = [[root, iter(graph.thread_neighbors(root)), None]]
    while stack:
        frame = stack[-1]
        pushed = False
        for obj in frame[1]:
            if obj in visited:
                continue
            visited.add(obj)
            frame[2] = obj
            current = object_to_thread.get(obj)
            if current is None:
                # Free object found: flip every (thread, object) pair
                # on the stack to apply the augmenting path.
                for frame_thread, _, frame_obj in stack:
                    thread_to_object[frame_thread] = frame_obj
                    object_to_thread[frame_obj] = frame_thread
                return True
            stack.append(
                [current, iter(graph.thread_neighbors(current)), None]
            )
            pushed = True
            break
        if not pushed:
            stack.pop()
    return False


def augmenting_path_matching(graph: BipartiteGraph) -> Matching:
    """Maximum matching via repeated single augmenting-path search.

    ``O(V * E)`` worst case.  Deterministic given the insertion order of
    vertices in ``graph``.  The per-thread search is
    :func:`augment_from_unmatched_thread` (iterative, explicit stack).
    """
    thread_to_object: Dict[Vertex, Vertex] = {}
    object_to_thread: Dict[Vertex, Vertex] = {}
    for thread in graph.threads:
        if thread not in thread_to_object:
            augment_from_unmatched_thread(
                graph, thread_to_object, object_to_thread, thread
            )
    return Matching(thread_to_object.items())


def _find_augmenting_path(
    graph: BipartiteGraph, matching: Matching
) -> Optional[Tuple[Vertex, ...]]:
    """Return one augmenting path as a vertex tuple, or ``None``.

    The path alternates unmatched/matched edges, starts at an unmatched
    thread and ends at an unmatched object.
    """
    for start in matching.unmatched_threads(graph):
        # BFS over alternating paths.
        parents: Dict[Vertex, Optional[Vertex]] = {start: None}
        queue = deque([start])
        while queue:
            thread = queue.popleft()
            for obj in graph.thread_neighbors(thread):
                if obj in parents:
                    continue
                parents[obj] = thread
                partner = matching.object_partner(obj)
                if partner is None:
                    # Reconstruct path.
                    path = [obj]
                    node: Optional[Vertex] = thread
                    while node is not None:
                        path.append(node)
                        node = parents[node]
                    return tuple(reversed(path))
                parents[partner] = obj
                queue.append(partner)
    return None


# ---------------------------------------------------------------------------
# Hopcroft-Karp
# ---------------------------------------------------------------------------
def hopcroft_karp_matching(graph: BipartiteGraph) -> Matching:
    """Maximum matching via the Hopcroft-Karp algorithm.

    Each phase runs a BFS that layers the graph by shortest alternating
    distance from unmatched threads, then a DFS that extracts a maximal set
    of vertex-disjoint shortest augmenting paths and flips them all at
    once.  The number of phases is ``O(sqrt(V))``, giving the overall
    ``O(E * sqrt(V))`` bound cited by the paper.
    """
    thread_to_object: Dict[Vertex, Optional[Vertex]] = {
        t: None for t in graph.threads
    }
    object_to_thread: Dict[Vertex, Optional[Vertex]] = {
        o: None for o in graph.objects
    }
    distance: Dict[Optional[Vertex], float] = {}

    def bfs() -> bool:
        """Layer threads by alternating-path distance; return True if some
        augmenting path exists."""
        queue: deque = deque()
        for thread, partner in thread_to_object.items():
            if partner is None:
                distance[thread] = 0
                queue.append(thread)
            else:
                distance[thread] = _INFINITY
        distance[None] = _INFINITY
        while queue:
            thread = queue.popleft()
            if distance[thread] < distance[None]:
                for obj in graph.thread_neighbors(thread):
                    next_thread = object_to_thread[obj]
                    if distance[next_thread] == _INFINITY:
                        distance[next_thread] = distance[thread] + 1
                        if next_thread is not None:
                            queue.append(next_thread)
        return distance[None] != _INFINITY

    def dfs(root: Vertex) -> bool:
        """Extend an augmenting path from ``root`` along the BFS layers.

        Runs on an explicit stack (one frame per thread on the path) since
        shortest augmenting paths grow to ``O(V)`` hops in late phases on
        chain-like graphs, far past Python's recursion limit.
        """
        stack = [[root, iter(graph.thread_neighbors(root)), None]]
        while stack:
            frame = stack[-1]
            thread, neighbors = frame[0], frame[1]
            next_distance = distance[thread] + 1
            pushed = False
            for obj in neighbors:
                next_thread = object_to_thread[obj]
                if distance[next_thread] != next_distance:
                    continue
                frame[2] = obj
                if next_thread is None:
                    # Unmatched object reached: flip the path on the stack.
                    for frame_thread, _, frame_obj in stack:
                        thread_to_object[frame_thread] = frame_obj
                        object_to_thread[frame_obj] = frame_thread
                    return True
                stack.append(
                    [next_thread, iter(graph.thread_neighbors(next_thread)), None]
                )
                pushed = True
                break
            if not pushed:
                distance[thread] = _INFINITY
                stack.pop()
        return False

    while bfs():
        for thread, partner in list(thread_to_object.items()):
            if partner is None:
                dfs(thread)

    pairs = [
        (thread, obj) for thread, obj in thread_to_object.items() if obj is not None
    ]
    return Matching(pairs)


# ---------------------------------------------------------------------------
# Brute force oracle
# ---------------------------------------------------------------------------
def brute_force_matching(graph: BipartiteGraph, max_edges: int = 20) -> Matching:
    """Exhaustively find a maximum matching; only for tiny graphs.

    Enumerates subsets of the edge set in decreasing size order and returns
    the first subset that is a valid matching.  Raises
    :class:`MatchingError` if the graph has more than ``max_edges`` edges,
    as a guard against accidental exponential blow-ups in tests.
    """
    # Canonically sorted so which maximum matching the enumeration finds
    # first (among equally sized ones) is stable across processes.
    edges = sorted(
        graph.edges(), key=lambda e: (vertex_sort_key(e[0]), vertex_sort_key(e[1]))
    )
    if len(edges) > max_edges:
        raise MatchingError(
            f"brute_force_matching limited to {max_edges} edges, "
            f"graph has {len(edges)}"
        )
    upper_bound = min(graph.num_threads, graph.num_objects, len(edges))
    for size in range(upper_bound, 0, -1):
        for subset in combinations(edges, size):
            threads = {t for t, _ in subset}
            objects = {o for _, o in subset}
            if len(threads) == size and len(objects) == size:
                return Matching(subset)
    return Matching()


def maximum_matching(graph: BipartiteGraph, algorithm: str = "hopcroft-karp") -> Matching:
    """Dispatch to a maximum matching algorithm by name.

    Parameters
    ----------
    algorithm:
        One of ``"hopcroft-karp"`` (default), ``"augmenting-path"`` or
        ``"brute-force"``.
    """
    if algorithm == "hopcroft-karp":
        return hopcroft_karp_matching(graph)
    if algorithm == "augmenting-path":
        return augmenting_path_matching(graph)
    if algorithm == "brute-force":
        return brute_force_matching(graph)
    raise ValueError(f"unknown matching algorithm: {algorithm!r}")
