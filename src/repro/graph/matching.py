"""Maximum bipartite matching algorithms.

The paper's offline algorithm (Section III-B) needs a maximum matching of
the thread-object bipartite graph so that the König-Egerváry theorem can
turn it into a minimum vertex cover.  The paper cites the Hopcroft-Karp
algorithm, which this module implements from scratch, along with two
simpler matchers used as independent cross-checks:

* :func:`hopcroft_karp_matching` - phase-based shortest augmenting paths,
  ``O(E * sqrt(V))``; the production matcher.
* :func:`augmenting_path_matching` - classic Hungarian-style single
  augmenting-path search, ``O(V * E)``; simple enough to trust by
  inspection, used to validate Hopcroft-Karp in tests and as a baseline in
  the matching-scaling benchmark.
* :func:`brute_force_matching` - exponential enumeration for very small
  graphs; the ground-truth oracle in property tests.

All three return a :class:`Matching` object mapping threads to objects.
"""

from __future__ import annotations

from collections import deque
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Set, Tuple

from repro.exceptions import MatchingError
from repro.graph.bipartite import BipartiteGraph, Edge, Vertex

_INFINITY = float("inf")


class Matching:
    """A matching in a thread-object bipartite graph.

    Internally stored as two mutually-consistent dictionaries, thread to
    object and object to thread.  Instances are immutable from the outside;
    the matcher functions build them via the private constructor argument.
    """

    __slots__ = ("_thread_to_object", "_object_to_thread")

    def __init__(self, pairs: Iterable[Edge] = ()) -> None:
        self._thread_to_object: Dict[Vertex, Vertex] = {}
        self._object_to_thread: Dict[Vertex, Vertex] = {}
        for thread, obj in pairs:
            if thread in self._thread_to_object:
                raise MatchingError(f"thread {thread!r} matched twice")
            if obj in self._object_to_thread:
                raise MatchingError(f"object {obj!r} matched twice")
            self._thread_to_object[thread] = obj
            self._object_to_thread[obj] = thread

    # -- queries ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._thread_to_object)

    def __iter__(self) -> Iterator[Edge]:
        return iter(self._thread_to_object.items())

    def __contains__(self, edge: object) -> bool:
        if not isinstance(edge, tuple) or len(edge) != 2:
            return False
        thread, obj = edge
        return self._thread_to_object.get(thread) == obj

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Matching):
            return NotImplemented
        return self._thread_to_object == other._thread_to_object

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Matching(size={len(self)})"

    @property
    def edges(self) -> FrozenSet[Edge]:
        return frozenset(self._thread_to_object.items())

    def thread_partner(self, thread: Vertex) -> Optional[Vertex]:
        """The object matched to ``thread``, or ``None`` if unmatched."""
        return self._thread_to_object.get(thread)

    def object_partner(self, obj: Vertex) -> Optional[Vertex]:
        """The thread matched to ``obj``, or ``None`` if unmatched."""
        return self._object_to_thread.get(obj)

    def is_thread_matched(self, thread: Vertex) -> bool:
        return thread in self._thread_to_object

    def is_object_matched(self, obj: Vertex) -> bool:
        return obj in self._object_to_thread

    def matched_threads(self) -> FrozenSet[Vertex]:
        return frozenset(self._thread_to_object)

    def matched_objects(self) -> FrozenSet[Vertex]:
        return frozenset(self._object_to_thread)

    def unmatched_threads(self, graph: BipartiteGraph) -> FrozenSet[Vertex]:
        """Threads of ``graph`` not covered by this matching (the set ``S``
        in Algorithm 1)."""
        return graph.threads - self.matched_threads()

    def unmatched_objects(self, graph: BipartiteGraph) -> FrozenSet[Vertex]:
        return graph.objects - self.matched_objects()

    def as_mapping(self) -> Mapping[Vertex, Vertex]:
        """Read-only view of the thread-to-object mapping."""
        return dict(self._thread_to_object)


def validate_matching(graph: BipartiteGraph, matching: Matching) -> None:
    """Raise :class:`MatchingError` unless ``matching`` is valid for ``graph``.

    Validity means every matched pair is an edge of the graph; the
    one-partner-per-vertex invariant is enforced by :class:`Matching`
    itself at construction time.
    """
    for thread, obj in matching:
        if not graph.has_edge(thread, obj):
            raise MatchingError(
                f"matched pair ({thread!r}, {obj!r}) is not an edge of the graph"
            )


def is_maximum_matching(graph: BipartiteGraph, matching: Matching) -> bool:
    """Check maximality by searching for an augmenting path.

    By Berge's theorem a matching is maximum iff the graph contains no
    augmenting path with respect to it.  This runs a single BFS/DFS sweep
    and is used in tests to certify matcher output without trusting any
    particular matcher.
    """
    validate_matching(graph, matching)
    return _find_augmenting_path(graph, matching) is None


# ---------------------------------------------------------------------------
# Simple augmenting-path matcher (Hungarian-style)
# ---------------------------------------------------------------------------
def augmenting_path_matching(graph: BipartiteGraph) -> Matching:
    """Maximum matching via repeated single augmenting-path search.

    ``O(V * E)`` worst case.  Deterministic given the insertion order of
    vertices in ``graph``.
    """
    thread_to_object: Dict[Vertex, Vertex] = {}
    object_to_thread: Dict[Vertex, Vertex] = {}

    def try_augment(thread: Vertex, visited: Set[Vertex]) -> bool:
        for obj in graph.thread_neighbors(thread):
            if obj in visited:
                continue
            visited.add(obj)
            current = object_to_thread.get(obj)
            if current is None or try_augment(current, visited):
                thread_to_object[thread] = obj
                object_to_thread[obj] = thread
                return True
        return False

    for thread in graph.threads:
        if thread not in thread_to_object:
            try_augment(thread, set())
    return Matching(thread_to_object.items())


def _find_augmenting_path(
    graph: BipartiteGraph, matching: Matching
) -> Optional[Tuple[Vertex, ...]]:
    """Return one augmenting path as a vertex tuple, or ``None``.

    The path alternates unmatched/matched edges, starts at an unmatched
    thread and ends at an unmatched object.
    """
    for start in matching.unmatched_threads(graph):
        # BFS over alternating paths.
        parents: Dict[Vertex, Optional[Vertex]] = {start: None}
        queue = deque([start])
        while queue:
            thread = queue.popleft()
            for obj in graph.thread_neighbors(thread):
                if obj in parents:
                    continue
                parents[obj] = thread
                partner = matching.object_partner(obj)
                if partner is None:
                    # Reconstruct path.
                    path = [obj]
                    node: Optional[Vertex] = thread
                    while node is not None:
                        path.append(node)
                        node = parents[node]
                    return tuple(reversed(path))
                parents[partner] = obj
                queue.append(partner)
    return None


# ---------------------------------------------------------------------------
# Hopcroft-Karp
# ---------------------------------------------------------------------------
def hopcroft_karp_matching(graph: BipartiteGraph) -> Matching:
    """Maximum matching via the Hopcroft-Karp algorithm.

    Each phase runs a BFS that layers the graph by shortest alternating
    distance from unmatched threads, then a DFS that extracts a maximal set
    of vertex-disjoint shortest augmenting paths and flips them all at
    once.  The number of phases is ``O(sqrt(V))``, giving the overall
    ``O(E * sqrt(V))`` bound cited by the paper.
    """
    thread_to_object: Dict[Vertex, Optional[Vertex]] = {
        t: None for t in graph.threads
    }
    object_to_thread: Dict[Vertex, Optional[Vertex]] = {
        o: None for o in graph.objects
    }
    distance: Dict[Optional[Vertex], float] = {}

    def bfs() -> bool:
        """Layer threads by alternating-path distance; return True if some
        augmenting path exists."""
        queue: deque = deque()
        for thread, partner in thread_to_object.items():
            if partner is None:
                distance[thread] = 0
                queue.append(thread)
            else:
                distance[thread] = _INFINITY
        distance[None] = _INFINITY
        while queue:
            thread = queue.popleft()
            if distance[thread] < distance[None]:
                for obj in graph.thread_neighbors(thread):
                    next_thread = object_to_thread[obj]
                    if distance[next_thread] == _INFINITY:
                        distance[next_thread] = distance[thread] + 1
                        if next_thread is not None:
                            queue.append(next_thread)
        return distance[None] != _INFINITY

    def dfs(thread: Optional[Vertex]) -> bool:
        """Extend an augmenting path from ``thread`` along the BFS layers."""
        if thread is None:
            return True
        for obj in graph.thread_neighbors(thread):
            next_thread = object_to_thread[obj]
            if distance[next_thread] == distance[thread] + 1 and dfs(next_thread):
                thread_to_object[thread] = obj
                object_to_thread[obj] = thread
                return True
        distance[thread] = _INFINITY
        return False

    while bfs():
        for thread, partner in list(thread_to_object.items()):
            if partner is None:
                dfs(thread)

    pairs = [
        (thread, obj) for thread, obj in thread_to_object.items() if obj is not None
    ]
    return Matching(pairs)


# ---------------------------------------------------------------------------
# Brute force oracle
# ---------------------------------------------------------------------------
def brute_force_matching(graph: BipartiteGraph, max_edges: int = 20) -> Matching:
    """Exhaustively find a maximum matching; only for tiny graphs.

    Enumerates subsets of the edge set in decreasing size order and returns
    the first subset that is a valid matching.  Raises
    :class:`MatchingError` if the graph has more than ``max_edges`` edges,
    as a guard against accidental exponential blow-ups in tests.
    """
    edges = list(graph.edges())
    if len(edges) > max_edges:
        raise MatchingError(
            f"brute_force_matching limited to {max_edges} edges, "
            f"graph has {len(edges)}"
        )
    upper_bound = min(graph.num_threads, graph.num_objects, len(edges))
    for size in range(upper_bound, 0, -1):
        for subset in combinations(edges, size):
            threads = {t for t, _ in subset}
            objects = {o for _, o in subset}
            if len(threads) == size and len(objects) == size:
                return Matching(subset)
    return Matching()


def maximum_matching(graph: BipartiteGraph, algorithm: str = "hopcroft-karp") -> Matching:
    """Dispatch to a maximum matching algorithm by name.

    Parameters
    ----------
    algorithm:
        One of ``"hopcroft-karp"`` (default), ``"augmenting-path"`` or
        ``"brute-force"``.
    """
    if algorithm == "hopcroft-karp":
        return hopcroft_karp_matching(graph)
    if algorithm == "augmenting-path":
        return augmenting_path_matching(graph)
    if algorithm == "brute-force":
        return brute_force_matching(graph)
    raise ValueError(f"unknown matching algorithm: {algorithm!r}")
