"""Saving and loading thread-object bipartite graphs.

Two interchange formats are supported:

* **JSON** - explicit vertex lists plus an edge list, mirroring the trace
  format of :mod:`repro.computation.serialization`; preserves isolated
  vertices.
* **edge-list text** - one ``thread<TAB>object`` pair per line, with ``#``
  comments; convenient for quick experiments and for importing access
  patterns exported by other tools.  Isolated vertices cannot be expressed
  in this format.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.exceptions import GraphError
from repro.graph.bipartite import BipartiteGraph

FORMAT_NAME = "repro-bipartite-graph"
FORMAT_VERSION = 1

PathLike = Union[str, Path]


def graph_to_dict(graph: BipartiteGraph) -> Dict[str, Any]:
    """JSON-ready dictionary representation (vertices sorted for stability)."""
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "threads": sorted(graph.threads, key=str),
        "objects": sorted(graph.objects, key=str),
        "edges": sorted(([t, o] for t, o in graph.edges()), key=str),
    }


def graph_from_dict(data: Dict[str, Any]) -> BipartiteGraph:
    """Rebuild a graph from :func:`graph_to_dict` output (with validation)."""
    if not isinstance(data, dict):
        raise GraphError("graph document must be a JSON object")
    if data.get("format") != FORMAT_NAME:
        raise GraphError(
            f"unexpected graph format: {data.get('format')!r} (expected {FORMAT_NAME!r})"
        )
    if data.get("version") != FORMAT_VERSION:
        raise GraphError(f"unsupported graph version: {data.get('version')!r}")
    threads = data.get("threads", [])
    objects = data.get("objects", [])
    edges = data.get("edges", [])
    if not isinstance(threads, list) or not isinstance(objects, list) or not isinstance(edges, list):
        raise GraphError("graph document fields 'threads'/'objects'/'edges' must be lists")
    graph = BipartiteGraph(threads=threads, objects=objects)
    for record in edges:
        if not isinstance(record, (list, tuple)) or len(record) != 2:
            raise GraphError(f"malformed edge record: {record!r}")
        thread, obj = record
        if not graph.has_thread(thread) or not graph.has_object(obj):
            raise GraphError(f"edge {record!r} references an undeclared vertex")
        graph.add_edge(thread, obj)
    return graph


def dump_graph(graph: BipartiteGraph, path: PathLike) -> None:
    """Write ``graph`` to ``path`` as JSON."""
    Path(path).write_text(json.dumps(graph_to_dict(graph), indent=2) + "\n")


def load_graph(path: PathLike) -> BipartiteGraph:
    """Read a graph previously written by :func:`dump_graph`."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise GraphError(f"graph file is not valid JSON: {error}") from error
    return graph_from_dict(data)


def dump_edge_list(graph: BipartiteGraph, path: PathLike) -> None:
    """Write ``graph`` as a tab-separated edge list (isolated vertices dropped)."""
    lines = ["# thread\tobject"]
    lines.extend(f"{thread}\t{obj}" for thread, obj in sorted(graph.edges(), key=str))
    Path(path).write_text("\n".join(lines) + "\n")


def load_edge_list(path: PathLike) -> BipartiteGraph:
    """Read a tab- or whitespace-separated edge list into a graph."""
    graph = BipartiteGraph()
    for line_number, raw_line in enumerate(Path(path).read_text().splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("\t") if "\t" in line else line.split()
        if len(parts) != 2:
            raise GraphError(
                f"line {line_number} of {path} is not a 'thread object' pair: {raw_line!r}"
            )
        graph.add_edge(parts[0], parts[1])
    return graph
