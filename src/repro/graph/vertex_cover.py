"""Minimum vertex cover of a thread-object bipartite graph.

Implements Algorithm 1 of the paper: given a maximum matching ``M*`` of the
thread-object bipartite graph, the König-Egerváry construction computes a
minimum vertex cover as

    ``C* = (T - Z) ∪ (O ∩ Z)``

where ``Z`` is the set of vertices reachable from the unmatched threads
``S`` via ``M*``-alternating paths (unmatched edge away from a thread,
matched edge back to a thread).

The cover's vertices become the components of the mixed vector clock
(Section III-C); its size equals the size of the maximum matching, which by
Theorem 3 is the optimal vector clock size for the computation.
"""

from __future__ import annotations

from collections import deque
from itertools import combinations
from typing import FrozenSet, Iterable, Optional, Set

from repro.exceptions import VertexCoverError
from repro.graph.bipartite import BipartiteGraph, Vertex, vertex_sort_key
from repro.graph.matching import Matching, maximum_matching, validate_matching


def alternating_reachable(graph: BipartiteGraph, matching: Matching) -> FrozenSet[Vertex]:
    """The set ``Z`` of Algorithm 1.

    BFS from every unmatched thread.  From a thread we may traverse only
    *unmatched* edges to objects; from an object we may traverse only its
    *matched* edge back to a thread.  The returned set contains both the
    thread and object vertices visited (including the unmatched threads
    themselves).
    """
    reached: Set[Vertex] = set()
    queue = deque()
    for thread in matching.unmatched_threads(graph):
        reached.add(thread)
        queue.append(("thread", thread))

    while queue:
        side, vertex = queue.popleft()
        if side == "thread":
            matched_obj = matching.thread_partner(vertex)
            for obj in graph.thread_neighbors(vertex):
                if obj == matched_obj or obj in reached:
                    continue
                reached.add(obj)
                queue.append(("object", obj))
        else:
            partner = matching.object_partner(vertex)
            if partner is not None and partner not in reached:
                reached.add(partner)
                queue.append(("thread", partner))
    return frozenset(reached)


def konig_vertex_cover(
    graph: BipartiteGraph, matching: Optional[Matching] = None
) -> FrozenSet[Vertex]:
    """Minimum vertex cover via the König-Egerváry construction (Algorithm 1).

    Parameters
    ----------
    graph:
        The thread-object bipartite graph.
    matching:
        A *maximum* matching of ``graph``.  If omitted, one is computed
        with Hopcroft-Karp.  Passing a non-maximum matching yields a vertex
        set that may not be a cover; use :func:`minimum_vertex_cover` if in
        doubt.
    """
    if matching is None:
        matching = maximum_matching(graph)
    else:
        validate_matching(graph, matching)
    reachable = alternating_reachable(graph, matching)
    cover = (graph.threads - reachable) | (graph.objects & reachable)
    return frozenset(cover)


def minimum_vertex_cover(
    graph: BipartiteGraph, algorithm: str = "hopcroft-karp"
) -> FrozenSet[Vertex]:
    """Compute a minimum vertex cover of ``graph``.

    Convenience wrapper: computes a maximum matching with the requested
    algorithm, applies the König construction, and sanity-checks the result
    (the cover must cover every edge and have size equal to the matching).
    """
    matching = maximum_matching(graph, algorithm=algorithm)
    cover = konig_vertex_cover(graph, matching)
    validate_vertex_cover(graph, cover)
    if len(cover) != len(matching):
        raise VertexCoverError(
            "König construction produced a cover of size "
            f"{len(cover)} for a maximum matching of size {len(matching)}"
        )
    return cover


def is_vertex_cover(graph: BipartiteGraph, cover: Iterable[Vertex]) -> bool:
    """``True`` iff every edge of ``graph`` has at least one endpoint in ``cover``."""
    cover_set = set(cover)
    return all(t in cover_set or o in cover_set for t, o in graph.edges())


def validate_vertex_cover(graph: BipartiteGraph, cover: Iterable[Vertex]) -> None:
    """Raise :class:`VertexCoverError` unless ``cover`` covers every edge."""
    cover_set = set(cover)
    for thread, obj in graph.edges():
        if thread not in cover_set and obj not in cover_set:
            raise VertexCoverError(
                f"edge ({thread!r}, {obj!r}) is not covered by {sorted(map(repr, cover_set))}"
            )
    unknown = cover_set - set(graph.threads) - set(graph.objects)
    if unknown:
        raise VertexCoverError(
            "cover contains unknown vertices: "
            f"{sorted(map(repr, unknown))}"
        )


def brute_force_vertex_cover(
    graph: BipartiteGraph, max_vertices: int = 16
) -> FrozenSet[Vertex]:
    """Exhaustive minimum vertex cover; oracle for tiny graphs in tests.

    Raises :class:`VertexCoverError` if the graph has more than
    ``max_vertices`` vertices.
    """
    # Canonically sorted so which minimum cover the enumeration finds
    # first (among equal-size covers) is stable across processes.
    vertices = sorted(graph.threads | graph.objects, key=vertex_sort_key)
    if len(vertices) > max_vertices:
        raise VertexCoverError(
            f"brute_force_vertex_cover limited to {max_vertices} vertices, "
            f"graph has {len(vertices)}"
        )
    for size in range(0, len(vertices) + 1):
        for subset in combinations(vertices, size):
            if is_vertex_cover(graph, subset):
                return frozenset(subset)
    return frozenset(vertices)
