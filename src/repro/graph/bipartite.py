"""Thread-object bipartite graphs.

The central combinatorial object of the paper is the *thread-object
bipartite graph* of a computation (Section III-A): the left vertex set is
the set of threads, the right vertex set is the set of objects, and an edge
``(t, o)`` exists iff thread ``t`` performed at least one operation on
object ``o``.

:class:`BipartiteGraph` is a small, dependency-free adjacency-set
representation tuned for the two access patterns the algorithms need:

* offline: iterate all edges / neighbours (Hopcroft-Karp, König cover);
* online: incrementally add vertices and edges as events are revealed and
  query degrees and density (the Popularity mechanism).

Vertices may be any hashable value.  Thread and object vertices live in two
disjoint namespaces; the same value may *not* appear on both sides (this
mirrors the paper's model where threads and objects are distinct entities,
and keeps vertex covers unambiguous).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, Set, Tuple

from repro.exceptions import DuplicateVertexError, GraphError, UnknownVertexError

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]


def vertex_sort_key(vertex: Vertex) -> Tuple[str, str]:
    """Canonical sort key for vertices of arbitrary (mixed) types.

    ``(type name, repr)`` totally orders any hashable vertices without
    relying on ``hash()`` or cross-type ``<`` support - the same
    canonicalisation :func:`repro.seeds.canonical_bytes` uses, so every
    layer that needs "some deterministic vertex order" agrees on one.
    """
    return (type(vertex).__name__, repr(vertex))


class BipartiteGraph:
    """An undirected bipartite graph with *thread* (left) and *object* (right) sides.

    The class is deliberately small: adjacency sets per vertex, plus edge
    and degree bookkeeping.  All mutating operations are idempotent where
    that is meaningful (adding an existing vertex or edge is a no-op), which
    matches how the online algorithms use the graph: every revealed event
    ``(t, o)`` is simply ``add_edge(t, o)``-ed.

    Parameters
    ----------
    threads:
        Optional iterable of initial thread (left) vertices.
    objects:
        Optional iterable of initial object (right) vertices.
    edges:
        Optional iterable of ``(thread, object)`` pairs.  Endpoints are
        added automatically.
    """

    __slots__ = ("_thread_adj", "_object_adj", "_edge_count")

    def __init__(
        self,
        threads: Iterable[Vertex] = (),
        objects: Iterable[Vertex] = (),
        edges: Iterable[Edge] = (),
    ) -> None:
        self._thread_adj: Dict[Vertex, Set[Vertex]] = {}
        self._object_adj: Dict[Vertex, Set[Vertex]] = {}
        self._edge_count = 0
        for t in threads:
            self.add_thread(t)
        for o in objects:
            self.add_object(o)
        for t, o in edges:
            self.add_edge(t, o)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_thread(self, thread: Vertex) -> None:
        """Add a thread (left) vertex; a no-op if it already exists."""
        if thread in self._object_adj:
            raise DuplicateVertexError(
                f"vertex {thread!r} already exists as an object vertex"
            )
        self._thread_adj.setdefault(thread, set())

    def add_object(self, obj: Vertex) -> None:
        """Add an object (right) vertex; a no-op if it already exists."""
        if obj in self._thread_adj:
            raise DuplicateVertexError(
                f"vertex {obj!r} already exists as a thread vertex"
            )
        self._object_adj.setdefault(obj, set())

    def add_edge(self, thread: Vertex, obj: Vertex) -> bool:
        """Add the edge ``(thread, obj)``, creating endpoints as needed.

        Returns
        -------
        bool
            ``True`` if the edge was new, ``False`` if it already existed.
            The online mechanisms use this to detect whether a revealed
            event changes the bipartite graph at all.
        """
        self.add_thread(thread)
        self.add_object(obj)
        if obj in self._thread_adj[thread]:
            return False
        self._thread_adj[thread].add(obj)
        self._object_adj[obj].add(thread)
        self._edge_count += 1
        return True

    def remove_edge(self, thread: Vertex, obj: Vertex) -> None:
        """Remove the edge ``(thread, obj)``.

        Raises :class:`GraphError` if the edge does not exist.  Edge
        removal is the substrate of the decremental matching engine
        (sliding-window monitoring); the endpoints stay in the graph even
        when the removal isolates them - callers that must not accumulate
        dead vertices (unbounded streams) follow up with
        :meth:`remove_isolated_vertex`.
        """
        if not self.has_edge(thread, obj):
            raise GraphError(f"edge ({thread!r}, {obj!r}) does not exist")
        self._thread_adj[thread].discard(obj)
        self._object_adj[obj].discard(thread)
        self._edge_count -= 1

    def remove_isolated_vertex(self, vertex: Vertex) -> None:
        """Remove a vertex that has no incident edge (either side).

        Raises :class:`GraphError` if the vertex still has edges (removing
        them implicitly would hide bookkeeping bugs in callers) and
        :class:`UnknownVertexError` if it is not in the graph.
        """
        if self.degree(vertex) != 0:
            raise GraphError(f"vertex {vertex!r} still has incident edges")
        self._thread_adj.pop(vertex, None)
        self._object_adj.pop(vertex, None)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def threads(self) -> FrozenSet[Vertex]:
        """The thread (left) vertex set."""
        return frozenset(self._thread_adj)

    @property
    def objects(self) -> FrozenSet[Vertex]:
        """The object (right) vertex set."""
        return frozenset(self._object_adj)

    @property
    def num_threads(self) -> int:
        return len(self._thread_adj)

    @property
    def num_objects(self) -> int:
        return len(self._object_adj)

    @property
    def num_vertices(self) -> int:
        return len(self._thread_adj) + len(self._object_adj)

    @property
    def num_edges(self) -> int:
        return self._edge_count

    def has_thread(self, thread: Vertex) -> bool:
        return thread in self._thread_adj

    def has_object(self, obj: Vertex) -> bool:
        return obj in self._object_adj

    def has_vertex(self, vertex: Vertex) -> bool:
        return vertex in self._thread_adj or vertex in self._object_adj

    def has_edge(self, thread: Vertex, obj: Vertex) -> bool:
        return thread in self._thread_adj and obj in self._thread_adj[thread]

    def thread_neighbors(self, thread: Vertex) -> FrozenSet[Vertex]:
        """Objects adjacent to ``thread``."""
        try:
            return frozenset(self._thread_adj[thread])
        except KeyError:
            raise UnknownVertexError(thread) from None

    def object_neighbors(self, obj: Vertex) -> FrozenSet[Vertex]:
        """Threads adjacent to ``obj``."""
        try:
            return frozenset(self._object_adj[obj])
        except KeyError:
            raise UnknownVertexError(obj) from None

    def neighbors(self, vertex: Vertex) -> FrozenSet[Vertex]:
        """Neighbours of ``vertex``, whichever side it lives on."""
        if vertex in self._thread_adj:
            return frozenset(self._thread_adj[vertex])
        if vertex in self._object_adj:
            return frozenset(self._object_adj[vertex])
        raise UnknownVertexError(vertex)

    def degree(self, vertex: Vertex) -> int:
        """Degree of ``vertex`` (number of incident edges)."""
        if vertex in self._thread_adj:
            return len(self._thread_adj[vertex])
        if vertex in self._object_adj:
            return len(self._object_adj[vertex])
        raise UnknownVertexError(vertex)

    def popularity(self, vertex: Vertex) -> float:
        """Popularity of ``vertex`` as defined by the paper (Definition 1).

        ``pop(v) = deg(v) / |E|``.  Returns ``0.0`` on an empty graph so the
        online mechanisms can evaluate popularity before the first edge.
        """
        if self._edge_count == 0:
            # Still validate that the vertex exists.
            self.degree(vertex)
            return 0.0
        return self.degree(vertex) / self._edge_count

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges as ``(thread, object)`` pairs."""
        for thread, adj in self._thread_adj.items():
            for obj in adj:
                yield (thread, obj)

    def density(self) -> float:
        """Edge density ``|E| / (|T| * |O|)``.

        This is the quantity the paper sweeps in Figs. 4 and 6.  Returns
        ``0.0`` when either side is empty.
        """
        denominator = len(self._thread_adj) * len(self._object_adj)
        if denominator == 0:
            return 0.0
        return self._edge_count / denominator

    def isolated_vertices(self) -> FrozenSet[Vertex]:
        """Vertices with no incident edge (on either side)."""
        isolated = {v for v, adj in self._thread_adj.items() if not adj}
        isolated.update(v for v, adj in self._object_adj.items() if not adj)
        return frozenset(isolated)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "BipartiteGraph":
        """Return an independent deep copy of the graph."""
        clone = BipartiteGraph()
        clone._thread_adj = {t: set(adj) for t, adj in self._thread_adj.items()}
        clone._object_adj = {o: set(adj) for o, adj in self._object_adj.items()}
        clone._edge_count = self._edge_count
        return clone

    def subgraph(
        self, threads: Iterable[Vertex], objects: Iterable[Vertex]
    ) -> "BipartiteGraph":
        """Return the subgraph induced by the given thread and object subsets."""
        # Sorted canonically so the subgraph's internal insertion order
        # (which downstream edge iteration inherits) is independent of
        # PYTHONHASHSEED even when callers pass sets.
        thread_list = sorted(set(threads), key=vertex_sort_key)
        object_list = sorted(set(objects), key=vertex_sort_key)
        object_set = set(object_list)
        unknown = (set(thread_list) - self.threads) | (object_set - self.objects)
        if unknown:
            raise UnknownVertexError(min(unknown, key=vertex_sort_key))
        sub = BipartiteGraph(threads=thread_list, objects=object_list)
        for t in thread_list:
            for o in sorted(self._thread_adj[t] & object_set, key=vertex_sort_key):
                sub.add_edge(t, o)
        return sub

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, vertex: Vertex) -> bool:
        return self.has_vertex(vertex)

    def __len__(self) -> int:
        return self.num_vertices

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BipartiteGraph):
            return NotImplemented
        return (
            self.threads == other.threads
            and self.objects == other.objects
            and set(self.edges()) == set(other.edges())
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BipartiteGraph(threads={self.num_threads}, "
            f"objects={self.num_objects}, edges={self.num_edges})"
        )
