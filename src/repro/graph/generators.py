"""Random thread-object bipartite graph generators.

Section V of the paper evaluates the algorithms on two families of random
bipartite graphs:

* **Uniform** - every (thread, object) pair is an edge independently with
  the same probability ``p`` (the "density" swept in Figs. 4 and 6).
* **Nonuniform** - a small fraction of threads and objects are "popular"
  and connect with a high probability; all other pairs connect with a much
  smaller probability.

Both are implemented here, along with two extra families (power-law-skewed
degrees and a clustered/community structure) used by the additional
ablation benchmarks.  All generators take an explicit ``seed`` (or an
already-constructed :class:`random.Random`) so experiments are exactly
reproducible.

Vertex naming convention: threads are ``"T0", "T1", ...`` and objects are
``"O0", "O1", ...`` which keeps the two sides visually distinct in debug
output and in the examples.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.graph.bipartite import BipartiteGraph

SeedLike = Union[int, random.Random, None]


def _rng(seed: SeedLike) -> random.Random:
    """Normalise ``seed`` into a :class:`random.Random` instance."""
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def thread_names(count: int) -> List[str]:
    """Canonical thread vertex names ``["T0", ..., f"T{count-1}"]``."""
    return [f"T{i}" for i in range(count)]


def object_names(count: int) -> List[str]:
    """Canonical object vertex names ``["O0", ..., f"O{count-1}"]``."""
    return [f"O{i}" for i in range(count)]


@dataclass(frozen=True)
class GraphSpec:
    """A declarative description of a random bipartite graph.

    Used by the experiment harness to record exactly which graph family and
    parameters produced a data point.
    """

    family: str
    num_threads: int
    num_objects: int
    density: float
    popular_fraction: float = 0.0
    popular_boost: float = 1.0
    seed: Optional[int] = None

    def generate(self, seed: SeedLike = None) -> BipartiteGraph:
        """Instantiate the graph described by this spec.

        ``seed`` overrides the spec's own seed when provided, which lets a
        single spec be replicated across independent trials.
        """
        effective_seed = seed if seed is not None else self.seed
        if self.family == "uniform":
            return uniform_bipartite(
                self.num_threads, self.num_objects, self.density, seed=effective_seed
            )
        if self.family == "nonuniform":
            return nonuniform_bipartite(
                self.num_threads,
                self.num_objects,
                self.density,
                popular_fraction=self.popular_fraction or 0.1,
                popular_boost=self.popular_boost if self.popular_boost > 1 else 10.0,
                seed=effective_seed,
            )
        if self.family == "powerlaw":
            return powerlaw_bipartite(
                self.num_threads, self.num_objects, self.density, seed=effective_seed
            )
        if self.family == "clustered":
            return clustered_bipartite(
                self.num_threads, self.num_objects, self.density, seed=effective_seed
            )
        raise ValueError(f"unknown graph family: {self.family!r}")


def uniform_bipartite(
    num_threads: int,
    num_objects: int,
    density: float,
    seed: SeedLike = None,
) -> BipartiteGraph:
    """Uniform scenario of Section V.

    Every (thread, object) pair becomes an edge independently with
    probability ``density``.  Expected density of the result equals the
    requested density.
    """
    _check_sizes(num_threads, num_objects)
    _check_probability(density, "density")
    rng = _rng(seed)
    graph = BipartiteGraph(threads=thread_names(num_threads), objects=object_names(num_objects))
    # Iterate the ordered name lists, not graph.threads/graph.objects:
    # those are frozensets, and consuming one rng.random() draw per pair
    # in hash order made the generated graph for a fixed seed depend on
    # PYTHONHASHSEED (caught by lint rule D101's class of bug; the other
    # families below always iterated the ordered lists).
    for t in thread_names(num_threads):
        for o in object_names(num_objects):
            if rng.random() < density:
                graph.add_edge(t, o)
    return graph


def nonuniform_bipartite(
    num_threads: int,
    num_objects: int,
    density: float,
    popular_fraction: float = 0.1,
    popular_boost: float = 10.0,
    seed: SeedLike = None,
) -> BipartiteGraph:
    """Nonuniform scenario of Section V.

    A fraction ``popular_fraction`` of threads and of objects are marked
    *popular*.  An edge whose endpoints include a popular vertex is added
    with probability ``min(1, density * popular_boost)``; edges between two
    unpopular vertices use a reduced probability chosen so the *expected
    overall density* still approximates ``density``.  This mirrors the
    paper's description ("popular threads and objects with a higher
    probability and non-popular ... with a smaller probability") while
    keeping the density axis of Figs. 4 and 6 comparable between the two
    scenarios.
    """
    _check_sizes(num_threads, num_objects)
    _check_probability(density, "density")
    _check_probability(popular_fraction, "popular_fraction")
    if popular_boost < 1.0:
        raise ValueError("popular_boost must be >= 1.0")
    rng = _rng(seed)

    threads = thread_names(num_threads)
    objects = object_names(num_objects)
    num_popular_threads = max(1, int(round(popular_fraction * num_threads)))
    num_popular_objects = max(1, int(round(popular_fraction * num_objects)))
    popular_threads = set(rng.sample(threads, num_popular_threads))
    popular_objects = set(rng.sample(objects, num_popular_objects))

    # Fraction of pairs that involve at least one popular endpoint.
    popular_pair_fraction = 1.0 - (
        (1.0 - num_popular_threads / num_threads)
        * (1.0 - num_popular_objects / num_objects)
    )
    # Boosted probability for popular pairs, capped so the overall expected
    # density cannot exceed the requested one (keeps the density axis of
    # Figs. 4/6 comparable across the Uniform and Nonuniform scenarios).
    high_p = min(1.0, density * popular_boost)
    if popular_pair_fraction > 0.0:
        high_p = min(high_p, density / popular_pair_fraction)
    # Solve: popular_pair_fraction*high_p + (1-popular_pair_fraction)*low_p = density
    if popular_pair_fraction < 1.0:
        low_p = (density - popular_pair_fraction * high_p) / (1.0 - popular_pair_fraction)
        low_p = min(max(low_p, 0.0), 1.0)
    else:  # pragma: no cover - degenerate: everything popular
        low_p = high_p

    graph = BipartiteGraph(threads=threads, objects=objects)
    for t in threads:
        for o in objects:
            p = high_p if (t in popular_threads or o in popular_objects) else low_p
            if rng.random() < p:
                graph.add_edge(t, o)
    return graph


def powerlaw_bipartite(
    num_threads: int,
    num_objects: int,
    density: float,
    exponent: float = 1.5,
    seed: SeedLike = None,
) -> BipartiteGraph:
    """Skewed-degree scenario (extra ablation).

    Each vertex gets a Zipf-like weight ``rank**-exponent``; the edge
    probability of a pair is proportional to the product of its endpoint
    weights, scaled so that the expected density equals ``density``.  This
    produces heavier degree skew than the paper's two-level Nonuniform
    generator and is used in the extended evaluation only.
    """
    _check_sizes(num_threads, num_objects)
    _check_probability(density, "density")
    rng = _rng(seed)
    threads = thread_names(num_threads)
    objects = object_names(num_objects)

    thread_weights = [1.0 / (i + 1) ** exponent for i in range(num_threads)]
    object_weights = [1.0 / (i + 1) ** exponent for i in range(num_objects)]
    rng.shuffle(thread_weights)
    rng.shuffle(object_weights)

    mean_weight_product = (
        sum(thread_weights) / num_threads * sum(object_weights) / num_objects
    )
    scale = density / mean_weight_product if mean_weight_product > 0 else 0.0

    graph = BipartiteGraph(threads=threads, objects=objects)
    for wi, t in zip(thread_weights, threads):
        for wj, o in zip(object_weights, objects):
            if rng.random() < min(1.0, scale * wi * wj):
                graph.add_edge(t, o)
    return graph


def clustered_bipartite(
    num_threads: int,
    num_objects: int,
    density: float,
    num_clusters: int = 4,
    within_boost: float = 8.0,
    seed: SeedLike = None,
) -> BipartiteGraph:
    """Community-structured scenario (extra ablation).

    Threads and objects are partitioned into ``num_clusters`` groups
    (modelling, e.g., threads of one software module touching that module's
    objects).  Within-cluster pairs use a boosted probability; cross-cluster
    pairs a reduced one, with the overall expected density kept at
    ``density``.
    """
    _check_sizes(num_threads, num_objects)
    _check_probability(density, "density")
    if num_clusters < 1:
        raise ValueError("num_clusters must be >= 1")
    rng = _rng(seed)
    threads = thread_names(num_threads)
    objects = object_names(num_objects)
    thread_cluster = {t: rng.randrange(num_clusters) for t in threads}
    object_cluster = {o: rng.randrange(num_clusters) for o in objects}

    within_fraction = 1.0 / num_clusters
    high_p = min(1.0, density * within_boost)
    if within_fraction < 1.0:
        low_p = (density - within_fraction * high_p) / (1.0 - within_fraction)
        low_p = min(max(low_p, 0.0), 1.0)
    else:  # pragma: no cover - single cluster degenerates to uniform
        low_p = density

    graph = BipartiteGraph(threads=threads, objects=objects)
    for t in threads:
        for o in objects:
            p = high_p if thread_cluster[t] == object_cluster[o] else low_p
            if rng.random() < p:
                graph.add_edge(t, o)
    return graph


def complete_bipartite(num_threads: int, num_objects: int) -> BipartiteGraph:
    """The complete bipartite graph ``K_{n,m}`` (density 1).

    Worst case for the mixed clock: the minimum vertex cover is the whole
    smaller side, so the optimum degenerates to ``min(n, m)``.
    """
    _check_sizes(num_threads, num_objects)
    threads = thread_names(num_threads)
    objects = object_names(num_objects)
    return BipartiteGraph(
        threads=threads,
        objects=objects,
        edges=[(t, o) for t in threads for o in objects],
    )


def star_bipartite(num_threads: int, num_objects: int, center_is_thread: bool = True) -> BipartiteGraph:
    """A star: one central vertex adjacent to the whole other side.

    Best case for the mixed clock: the optimum cover is the single centre,
    so one component suffices regardless of ``n`` and ``m``.
    """
    _check_sizes(num_threads, num_objects)
    threads = thread_names(num_threads)
    objects = object_names(num_objects)
    graph = BipartiteGraph(threads=threads, objects=objects)
    if center_is_thread:
        for o in objects:
            graph.add_edge(threads[0], o)
    else:
        for t in threads:
            graph.add_edge(t, objects[0])
    return graph


def chain_bipartite(num_vertices: int) -> BipartiteGraph:
    """A chain (path) graph alternating threads and objects.

    The path is ``T0 - O0 - T1 - O1 - ...`` with ``num_vertices`` vertices
    in total, so threads and objects split the count as evenly as possible
    and there are ``num_vertices - 1`` edges.  The maximum matching has
    size ``num_vertices // 2``.

    Chains are the worst case for augmenting-path length (a single path of
    ``O(V)`` hops), which makes this the stress scenario for the matchers'
    stack depth and for the matching-scaling benchmark.
    """
    if num_vertices < 2:
        raise ValueError("chain_bipartite needs at least 2 vertices")
    graph = BipartiteGraph()
    for i in range(num_vertices - 1):
        # Vertex i and i+1 are adjacent; even positions are threads.
        thread_pos, object_pos = (i, i + 1) if i % 2 == 0 else (i + 1, i)
        graph.add_edge(f"T{thread_pos // 2}", f"O{object_pos // 2}")
    return graph


def graph_from_edges(edges: Iterable[Tuple[str, str]]) -> BipartiteGraph:
    """Build a graph from explicit ``(thread, object)`` pairs."""
    return BipartiteGraph(edges=list(edges))


def paper_example_graph() -> BipartiteGraph:
    """The running example of Fig. 1 / Fig. 2 of the paper.

    Four threads ``T1..T4`` and four objects ``O1..O4``; every operation in
    the computation involves thread ``T2``, object ``O2`` or object ``O3``,
    so the minimum vertex cover (and hence the optimal mixed clock) is
    ``{T2, O2, O3}`` of size 3 < min(4, 4).
    """
    edges = [
        ("T1", "O2"),
        ("T2", "O1"),
        ("T2", "O2"),
        ("T2", "O3"),
        ("T3", "O3"),
        ("T4", "O2"),
        ("T4", "O3"),
    ]
    graph = BipartiteGraph(
        threads=["T1", "T2", "T3", "T4"],
        objects=["O1", "O2", "O3", "O4"],
        edges=edges,
    )
    return graph


def expected_edge_count(num_threads: int, num_objects: int, density: float) -> float:
    """Expected number of edges for a uniform graph with the given density."""
    return num_threads * num_objects * density


def _check_sizes(num_threads: int, num_objects: int) -> None:
    if num_threads < 1 or num_objects < 1:
        raise ValueError("graphs need at least one thread and one object")


def _check_probability(value: float, name: str) -> None:
    if not (0.0 <= value <= 1.0) or math.isnan(value):
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
