"""Bipartite graph substrate: graphs, matchings, vertex covers, generators.

This subpackage contains everything combinatorial the paper relies on:

* :class:`~repro.graph.bipartite.BipartiteGraph` - the thread-object
  bipartite graph of a computation (Section III-A).
* :func:`~repro.graph.matching.hopcroft_karp_matching` and friends -
  maximum bipartite matching (Section III-B, citing Hopcroft-Karp).
* :class:`~repro.graph.incremental.DynamicMatching` - maximum matching
  maintained across edge insertions *and* deletions (at most two anchored
  augmenting-path searches per mutation), powering the per-event
  offline-optimum trajectory of the online evaluation and the
  sliding-window monitoring regime
  (:func:`~repro.graph.incremental.sliding_window_optimum_trajectory`);
  :class:`~repro.graph.incremental.IncrementalMatching` is its
  append-only view.
* :func:`~repro.graph.vertex_cover.konig_vertex_cover` - Algorithm 1, the
  König-Egerváry construction of a minimum vertex cover from a maximum
  matching.
* :mod:`~repro.graph.generators` - the Uniform and Nonuniform random graph
  families used in the evaluation (Section V), plus extra families for
  ablations.
"""

from repro.graph.bipartite import BipartiteGraph
from repro.graph.io import (
    dump_edge_list,
    dump_graph,
    graph_from_dict,
    graph_to_dict,
    load_edge_list,
    load_graph,
)
from repro.graph.generators import (
    GraphSpec,
    chain_bipartite,
    clustered_bipartite,
    complete_bipartite,
    graph_from_edges,
    nonuniform_bipartite,
    object_names,
    paper_example_graph,
    powerlaw_bipartite,
    star_bipartite,
    thread_names,
    uniform_bipartite,
)
from repro.graph.incremental import (
    DynamicMatching,
    IncrementalMatching,
    incremental_optimum_trajectory,
    sliding_window_optimum_trajectory,
)
from repro.graph.matching import (
    Matching,
    augmenting_path_matching,
    brute_force_matching,
    hopcroft_karp_matching,
    is_maximum_matching,
    maximum_matching,
    validate_matching,
)
from repro.graph.vertex_cover import (
    alternating_reachable,
    brute_force_vertex_cover,
    is_vertex_cover,
    konig_vertex_cover,
    minimum_vertex_cover,
    validate_vertex_cover,
)

__all__ = [
    "BipartiteGraph",
    "DynamicMatching",
    "GraphSpec",
    "IncrementalMatching",
    "Matching",
    "alternating_reachable",
    "augmenting_path_matching",
    "brute_force_matching",
    "brute_force_vertex_cover",
    "chain_bipartite",
    "clustered_bipartite",
    "complete_bipartite",
    "dump_edge_list",
    "dump_graph",
    "graph_from_dict",
    "graph_from_edges",
    "graph_to_dict",
    "hopcroft_karp_matching",
    "incremental_optimum_trajectory",
    "is_maximum_matching",
    "is_vertex_cover",
    "konig_vertex_cover",
    "load_edge_list",
    "load_graph",
    "maximum_matching",
    "minimum_vertex_cover",
    "nonuniform_bipartite",
    "object_names",
    "paper_example_graph",
    "powerlaw_bipartite",
    "sliding_window_optimum_trajectory",
    "star_bipartite",
    "thread_names",
    "uniform_bipartite",
    "validate_matching",
    "validate_vertex_cover",
]
