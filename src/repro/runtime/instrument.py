"""Tracing real Python threads.

:class:`TracingSession` wraps ordinary :mod:`threading` code so that every
access to a traced shared object is recorded as an event, producing the
same :class:`~repro.computation.trace.Computation` the simulator does.  A
single session-wide lock serialises trace appends, which also gives the
per-object serialisation the paper's model assumes (the recorded
interleaving is whatever the OS scheduler actually produced).

This exists so that users can point the library at real multithreaded code;
the *benchmarks* use the deterministic simulator instead because wall-clock
numbers obtained under the GIL say little about the algorithms (see
DESIGN.md, substitutions table).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.computation.trace import Computation, ComputationBuilder
from repro.exceptions import RuntimeSystemError


class TracedObject:
    """A shared value whose reads and writes are recorded by a session."""

    def __init__(self, session: "TracingSession", name: str, initial_value: Any) -> None:
        self._session = session
        self._name = name
        self._value = initial_value

    @property
    def name(self) -> str:
        return self._name

    def read(self, label: str = "read") -> Any:
        """Read the current value (recorded as a read event)."""
        with self._session._lock:
            self._session._record(self._name, label=label, is_write=False)
            return self._value

    def write(self, value: Any, label: str = "write") -> None:
        """Replace the value (recorded as a write event)."""
        with self._session._lock:
            self._session._record(self._name, label=label, is_write=True)
            self._value = value

    def update(self, function: Callable[[Any], Any], label: str = "update") -> Any:
        """Atomically apply ``function`` to the value (one write event)."""
        with self._session._lock:
            self._session._record(self._name, label=label, is_write=True)
            self._value = function(self._value)
            return self._value


class TracingSession:
    """Collects events from real threads accessing :class:`TracedObject`\\ s.

    Thread identity defaults to the current thread's name; spawn worker
    threads with meaningful ``name=`` arguments (or use
    :meth:`run_threads`) so the trace reads well.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._builder = ComputationBuilder()
        self._objects: Dict[str, TracedObject] = {}
        self._finished = False

    # ------------------------------------------------------------------
    def traced_object(self, name: str, initial_value: Any = None) -> TracedObject:
        """Create (or fetch) the traced shared object called ``name``."""
        with self._lock:
            if name not in self._objects:
                self._objects[name] = TracedObject(self, name, initial_value)
            return self._objects[name]

    def _record(self, obj_name: str, label: str, is_write: bool) -> None:
        if self._finished:
            raise RuntimeSystemError("tracing session already finished")
        thread_name = threading.current_thread().name
        self._builder.append(thread_name, obj_name, label=label, is_write=is_write)

    # ------------------------------------------------------------------
    def run_threads(
        self,
        workers: Dict[str, Callable[[], None]],
        timeout: Optional[float] = 30.0,
    ) -> None:
        """Run each callable in its own named thread and join them all."""
        threads = [
            threading.Thread(target=target, name=name, daemon=True)
            for name, target in workers.items()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=timeout)
            if thread.is_alive():
                raise RuntimeSystemError(f"worker {thread.name!r} did not finish")

    def finish(self) -> Computation:
        """Stop recording and return the collected computation."""
        with self._lock:
            self._finished = True
            return self._builder.build()

    @property
    def events_recorded(self) -> int:
        return self._builder.num_events
