"""Consistent cuts and recovery lines - the "recovery from failures" application.

The paper's abstract motivates causality tracking with recovery: after a
failure, a system must roll back to a *consistent* global state, i.e. a cut
of the computation that is closed under happened-before (if an event is
included, everything that happened before it is included too).  With vector
clock timestamps that closure test is a simple vector comparison, so this
module implements the standard constructions directly on top of the
library's clocks:

* :func:`is_consistent_cut` - is a given set of events left-closed under
  happened-before?
* :func:`causal_past_cut` - the smallest consistent cut containing a set of
  events (their combined causal past), which is exactly the state a
  debugger or recovery protocol must restore to "re-execute from just
  before these events";
* :func:`latest_consistent_cut` - the largest consistent cut containing at
  most the first ``k_t`` events of each thread (the recovery line for a set
  of per-thread checkpoints);
* :class:`CheckpointManager` - per-thread checkpoints with timestamps, and
  the recovery line computation over them.

Everything here works with any valid timestamping of the computation (the
optimal mixed clock included); tests cross-check the cut computations
against the exact happened-before oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.computation.event import Event, ThreadId
from repro.computation.trace import Computation
from repro.core.timestamping import TimestampedComputation
from repro.exceptions import ComputationError


def is_consistent_cut(computation: Computation, events: Iterable[Event]) -> bool:
    """``True`` iff ``events`` is left-closed under happened-before.

    Uses only the events' immediate predecessors (the cut is closed iff it
    contains each member's thread-predecessor and object-predecessor),
    which is equivalent to closure under the full relation and avoids
    building the transitive closure.
    """
    cut: Set[Event] = set(events)
    for event in cut:  # repro: noqa[D101] pure all-quantified membership test; the verdict is order-independent
        for predecessor in computation.immediate_predecessors(event):
            if predecessor not in cut:
                return False
    return True


def causal_past_cut(computation: Computation, events: Iterable[Event]) -> FrozenSet[Event]:
    """The smallest consistent cut containing ``events``.

    Computed by walking immediate predecessors backwards; the result always
    satisfies :func:`is_consistent_cut`.
    """
    cut: Set[Event] = set()
    frontier: List[Event] = list(events)
    for event in frontier:
        if event.index >= len(computation.events) or computation.events[event.index] != event:
            raise ComputationError(f"event {event} does not belong to this computation")
    while frontier:
        event = frontier.pop()
        if event in cut:
            continue
        cut.add(event)
        frontier.extend(computation.immediate_predecessors(event))
    return frozenset(cut)


def frontier_of(cut: Iterable[Event]) -> Dict[ThreadId, Event]:
    """The last event of each thread inside a cut (the cut's frontier)."""
    frontier: Dict[ThreadId, Event] = {}
    for event in cut:
        current = frontier.get(event.thread)
        if current is None or event.thread_seq > current.thread_seq:
            frontier[event.thread] = event
    return frontier


def latest_consistent_cut(
    computation: Computation, limits: Mapping[ThreadId, int]
) -> FrozenSet[Event]:
    """The largest consistent cut taking at most ``limits[t]`` events per thread.

    ``limits`` maps each thread to how many of its first events may be kept
    (its checkpoint position); threads not mentioned contribute no events.
    This is the classical "recovery line" computation: start from the
    per-thread checkpoints and repeatedly drop events whose predecessors
    fall outside the cut, until the cut is consistent.
    """
    kept: Dict[ThreadId, int] = {}
    for thread in computation.threads:
        limit = limits.get(thread, 0)
        if limit < 0:
            raise ComputationError(f"limit for thread {thread!r} must be non-negative")
        kept[thread] = min(limit, len(computation.thread_events(thread)))

    # Rollback propagation ("domino effect"): while some kept event has a
    # predecessor that is not kept, truncate its thread just before it.
    # ``kept`` only ever decreases, so the loop terminates; the fixpoint is
    # the unique largest consistent cut within the limits.
    changed = True
    while changed:
        changed = False
        for thread in computation.threads:
            for event in computation.thread_events(thread)[: kept[thread]]:
                dropped = False
                for predecessor in computation.immediate_predecessors(event):
                    if predecessor.thread_seq >= kept.get(predecessor.thread, 0):
                        kept[thread] = event.thread_seq
                        changed = True
                        dropped = True
                        break
                if dropped:
                    break

    cut: Set[Event] = set()
    for thread, count in kept.items():
        cut.update(computation.thread_events(thread)[:count])
    return frozenset(cut)


@dataclass(frozen=True)
class Checkpoint:
    """A per-thread checkpoint: the thread has executed ``position`` events."""

    thread: ThreadId
    position: int
    timestamp: Optional[object] = None


class CheckpointManager:
    """Track per-thread checkpoints of a timestamped computation.

    A recovery protocol periodically checkpoints each thread.  After a
    failure the system rolls back to the *recovery line*: the largest
    consistent cut that keeps, for every thread, at most the events up to
    its most recent checkpoint.  The manager stores checkpoints (with the
    clock value at that point, taken from the timestamped computation) and
    computes that line on demand.
    """

    def __init__(self, stamped: TimestampedComputation) -> None:
        self._stamped = stamped
        self._computation = stamped.computation
        self._checkpoints: Dict[ThreadId, Checkpoint] = {}

    @property
    def checkpoints(self) -> Mapping[ThreadId, Checkpoint]:
        return dict(self._checkpoints)

    def take_checkpoint(self, thread: ThreadId, position: int) -> Checkpoint:
        """Record that ``thread`` checkpointed after its first ``position`` events."""
        events = self._computation.thread_events(thread)
        if not (0 <= position <= len(events)):
            raise ComputationError(
                f"checkpoint position {position} out of range for thread {thread!r}"
            )
        timestamp = self._stamped[events[position - 1]] if position else None
        checkpoint = Checkpoint(thread=thread, position=position, timestamp=timestamp)
        self._checkpoints[thread] = checkpoint
        return checkpoint

    def recovery_line(self) -> FrozenSet[Event]:
        """The largest consistent cut respecting every recorded checkpoint."""
        limits = {thread: cp.position for thread, cp in self._checkpoints.items()}
        return latest_consistent_cut(self._computation, limits)

    def rollback_work(self) -> Dict[ThreadId, int]:
        """Events each thread must undo: checkpointed position minus the recovery line."""
        line = frontier_of(self.recovery_line())
        work: Dict[ThreadId, int] = {}
        for thread, checkpoint in self._checkpoints.items():
            kept = line[thread].thread_seq + 1 if thread in line else 0
            work[thread] = checkpoint.position - kept
        return work
