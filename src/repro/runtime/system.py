"""A deterministic simulated concurrent system.

The paper's setting is a multithreaded program whose threads operate on
shared objects with per-object mutual exclusion.  Benchmarking real Python
threads would mostly measure the GIL rather than the algorithms (the
reproduction notes call this out), so the library ships a small
*simulated* concurrent system: threads are programs (sequences of steps),
objects are named cells with values, and a seeded scheduler interleaves
runnable threads one step at a time.  The output is exactly what the
clocks consume - a :class:`~repro.computation.trace.Computation` - plus the
final object values, so examples and tests can assert functional results
as well as causality.

A real-`threading` based tracer lives in :mod:`repro.runtime.instrument`
for users who want to trace actual thread interleavings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.computation.trace import Computation, ComputationBuilder
from repro.exceptions import RuntimeSystemError
from repro.graph.generators import SeedLike, _rng

#: A step mutates (or reads) the current value of an object and returns the new value.
StepFunction = Callable[[Any], Any]


@dataclass(frozen=True)
class Step:
    """One program step.

    ``kind`` is one of ``"access"`` (read or write ``obj``'s value),
    ``"acquire"`` (block until the lock object ``obj`` is free, then hold
    it) or ``"release"`` (release a lock held by this thread).  ``is_write``
    and ``label`` are propagated to the resulting trace event; acquire and
    release are synchronisation accesses, which the race detector treats
    specially.
    """

    obj: str
    function: Optional[StepFunction] = None
    label: str = ""
    is_write: bool = True
    kind: str = "access"

    @property
    def is_sync(self) -> bool:
        """``True`` for lock acquire/release steps."""
        return self.kind in ("acquire", "release")


def read(obj: str, label: str = "read") -> Step:
    """A read-only step (does not change the object's value)."""
    return Step(obj=obj, function=None, label=label, is_write=False)


def write(obj: str, function: StepFunction, label: str = "write") -> Step:
    """A step that replaces the object's value with ``function(old_value)``."""
    return Step(obj=obj, function=function, label=label, is_write=True)


def increment(obj: str, amount: int = 1) -> Step:
    """A step that adds ``amount`` to a numeric object."""
    return Step(
        obj=obj,
        function=lambda value: (value or 0) + amount,
        label=f"increment+{amount}",
        is_write=True,
    )


def acquire(lock: str) -> Step:
    """A synchronisation step that blocks until ``lock`` is free, then holds it."""
    return Step(obj=lock, function=None, label="acquire", is_write=True, kind="acquire")


def release(lock: str) -> Step:
    """A synchronisation step that releases a lock held by the executing thread."""
    return Step(obj=lock, function=None, label="release", is_write=True, kind="release")


@dataclass
class ThreadProgram:
    """A named thread plus the ordered steps it will execute."""

    name: str
    steps: Sequence[Step]


@dataclass(frozen=True)
class ExecutionResult:
    """Everything a simulated run produced."""

    computation: Computation
    final_values: Mapping[str, Any]
    sync_objects: frozenset
    schedule: Tuple[str, ...]

    @property
    def num_events(self) -> int:
        return len(self.computation)


class ConcurrentSystem:
    """A collection of thread programs over shared objects, plus a scheduler.

    Usage::

        system = ConcurrentSystem()
        system.add_object("counter", 0)
        system.add_thread("worker-0", [increment("counter") for _ in range(10)])
        system.add_thread("worker-1", [increment("counter") for _ in range(10)])
        result = system.run(seed=7)
        assert result.final_values["counter"] == 20

    The scheduler picks a runnable thread uniformly at random (seeded) per
    step, or round-robin when ``policy="round-robin"``; every interleaving
    it produces respects each thread's program order and serialises the
    accesses to each object, exactly as the paper's model requires.
    """

    def __init__(self) -> None:
        self._programs: Dict[str, List[Step]] = {}
        self._initial_values: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_object(self, name: str, initial_value: Any = None) -> None:
        """Declare a shared object with an initial value."""
        if name in self._programs:
            raise RuntimeSystemError(f"{name!r} is already a thread name")
        self._initial_values[name] = initial_value

    def add_thread(self, name: str, steps: Sequence[Step]) -> None:
        """Register a thread program."""
        if name in self._programs:
            raise RuntimeSystemError(f"thread {name!r} already registered")
        if name in self._initial_values:
            raise RuntimeSystemError(f"{name!r} is already an object name")
        self._programs[name] = list(steps)

    @property
    def thread_names(self) -> Tuple[str, ...]:
        return tuple(self._programs)

    @property
    def object_names(self) -> Tuple[str, ...]:
        names = dict(self._initial_values)
        for steps in self._programs.values():
            for step in steps:
                names.setdefault(step.obj, None)
        return tuple(names)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, seed: SeedLike = None, policy: str = "random") -> ExecutionResult:
        """Execute all programs to completion under the chosen scheduler.

        Lock semantics are enforced: a thread whose next step is an
        ``acquire`` of a lock currently held by another thread is not
        runnable until the holder releases it.  A ``release`` of a lock the
        thread does not hold, or a schedule in which every remaining thread
        is blocked (deadlock), raises :class:`RuntimeSystemError`.
        """
        if not self._programs:
            raise RuntimeSystemError("no threads registered")
        if policy not in ("random", "round-robin"):
            raise RuntimeSystemError(f"unknown scheduling policy: {policy!r}")
        rng = _rng(seed)
        values: Dict[str, Any] = dict(self._initial_values)
        cursors: Dict[str, int] = {name: 0 for name in self._programs}
        lock_holder: Dict[str, str] = {}
        builder = ComputationBuilder()
        schedule: List[str] = []
        sync_objects: set = set()

        unfinished = [name for name, steps in self._programs.items() if steps]
        round_robin_index = 0

        def next_step(thread: str) -> Step:
            return self._programs[thread][cursors[thread]]

        def is_runnable(thread: str) -> bool:
            step = next_step(thread)
            if step.kind == "acquire":
                return lock_holder.get(step.obj) in (None, thread)
            return True

        while unfinished:
            runnable = [name for name in unfinished if is_runnable(name)]
            if not runnable:
                blocked = {name: next_step(name).obj for name in unfinished}
                raise RuntimeSystemError(f"deadlock: all remaining threads blocked on {blocked}")
            if policy == "random":
                thread = rng.choice(runnable)
            else:
                thread = runnable[round_robin_index % len(runnable)]
                round_robin_index += 1
            step = next_step(thread)
            current = values.get(step.obj)
            if step.kind == "acquire":
                lock_holder[step.obj] = thread
                sync_objects.add(step.obj)
            elif step.kind == "release":
                if lock_holder.get(step.obj) != thread:
                    raise RuntimeSystemError(
                        f"thread {thread!r} released lock {step.obj!r} it does not hold"
                    )
                del lock_holder[step.obj]
                sync_objects.add(step.obj)
            elif step.function is not None:
                values[step.obj] = step.function(current)
            else:
                values.setdefault(step.obj, current)
            builder.append(thread, step.obj, label=step.label, is_write=step.is_write)
            schedule.append(thread)
            cursors[thread] += 1
            if cursors[thread] >= len(self._programs[thread]):
                unfinished.remove(thread)

        return ExecutionResult(
            computation=builder.build(),
            final_values=dict(values),
            sync_objects=frozenset(sync_objects),
            schedule=tuple(schedule),
        )


def counter_workload(num_threads: int = 4, increments: int = 25) -> ConcurrentSystem:
    """A canonical shared-counter program guarded by a single lock."""
    system = ConcurrentSystem()
    system.add_object("counter", 0)
    for i in range(num_threads):
        steps: List[Step] = []
        for _ in range(increments):
            steps.append(acquire("counter-lock"))
            steps.append(increment("counter"))
            steps.append(release("counter-lock"))
        system.add_thread(f"worker-{i}", steps)
    return system
