"""Concurrent runtime substrate: simulator, tracer, race detector, recovery."""

from repro.runtime.instrument import TracedObject, TracingSession
from repro.runtime.race_detector import Race, RaceDetector, RaceReport, detect_races
from repro.runtime.snapshots import (
    Checkpoint,
    CheckpointManager,
    causal_past_cut,
    frontier_of,
    is_consistent_cut,
    latest_consistent_cut,
)
from repro.runtime.system import (
    ConcurrentSystem,
    ExecutionResult,
    Step,
    ThreadProgram,
    acquire,
    counter_workload,
    increment,
    read,
    release,
    write,
)

__all__ = [
    "Checkpoint",
    "CheckpointManager",
    "ConcurrentSystem",
    "ExecutionResult",
    "Race",
    "RaceDetector",
    "RaceReport",
    "Step",
    "ThreadProgram",
    "TracedObject",
    "TracingSession",
    "acquire",
    "causal_past_cut",
    "counter_workload",
    "detect_races",
    "frontier_of",
    "is_consistent_cut",
    "latest_consistent_cut",
    "increment",
    "read",
    "release",
    "write",
]
