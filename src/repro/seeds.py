"""Deterministic seed derivation: one root seed, many independent streams.

Before this module existed every caller invented its own seed arithmetic
(``base_seed + 10_000 * x_index + trial``, ``seed + 1`` for mechanisms,
...).  That scheme has two failure modes the sharded execution engine
cannot afford:

* **collisions** - additive offsets overlap as soon as an index outgrows
  its allotted stride (a 11th mechanism, a 101st trial), silently reusing
  randomness between cells that are supposed to be independent;
* **structure leakage** - :class:`random.Random` seeded with consecutive
  integers produces correlated low bits for some generators, and the
  per-mechanism ``seed + 1`` gave *every* mechanism of a trial the same
  seed.

:func:`derive_seed` replaces both: it folds an arbitrary path of labels
(strings, ints, floats - anything with a stable ``repr``) into the root
seed with an FNV-1a byte fold and finishes each component with the
splitmix64 finalizer, the standard avalanche mixer used to split PRNG
streams (numpy's ``SeedSequence`` plays the same role; this one is
dependency-free).  The result is a 64-bit integer that

* depends only on ``(root, path)`` - never on process identity, hash
  randomisation (``PYTHONHASHSEED``), platform, or call order, so workers
  in different processes derive identical seeds;
* changes completely when any path component changes (avalanche), so
  ``derive_seed(s, "shard", 1)`` and ``derive_seed(s, "shard", 2)`` are
  statistically independent streams.

This is the determinism backbone of the execution engine: serial and
multiprocess runs agree bit-for-bit because every consumer's randomness is
keyed by *what* it computes (scenario, shard, mechanism label), not by
*where* or *when* it runs.
"""

from __future__ import annotations

from typing import Union

_MASK64 = (1 << 64) - 1
#: FNV-1a 64-bit offset basis / prime.
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3

PathPart = Union[str, int, float]


def splitmix64(value: int) -> int:
    """The splitmix64 finalizer: a 64-bit avalanche permutation.

    Maps any 64-bit input to a 64-bit output such that flipping one input
    bit flips ~half the output bits.  Exposed for tests and for callers
    that need raw stream splitting; most code wants :func:`derive_seed`.
    """
    z = (value + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def canonical_bytes(value: object) -> bytes:
    """The typed-repr canonical form shared by every stable hash here.

    The type name is part of the bytes so ``1``, ``1.0`` and ``"1"`` hash
    apart - mirroring the ``(type name, repr)`` canonicalisation the
    simulator uses for vertex sort keys.  Both :func:`derive_seed` and
    the engine's shard router hash exactly this form; keeping them on one
    definition is what keeps shard placement and seed derivation from
    ever drifting apart.
    """
    return f"{type(value).__name__}:{value!r}".encode("utf-8")


def fnv1a_fold(state: int, data: bytes) -> int:
    """Fold ``data`` into a 64-bit FNV-1a ``state`` (no finalisation)."""
    for byte in data:
        state = ((state ^ byte) * _FNV_PRIME) & _MASK64
    return state


def stable_hash(value: object) -> int:
    """A 64-bit hash of ``value`` stable across processes, runs, platforms.

    Python's built-in ``hash()`` is randomised per process for strings
    (``PYTHONHASHSEED``), so anything that must agree across workers - the
    engine's shard placement above all - hashes through this instead:
    pure FNV-1a arithmetic over :func:`canonical_bytes`.
    """
    return fnv1a_fold(_FNV_OFFSET, canonical_bytes(value))


def _fold(state: int, part: PathPart) -> int:
    """Fold one path component into ``state`` and scramble (see above)."""
    return splitmix64(fnv1a_fold(state, canonical_bytes(part)))


def derive_seed(root: int, *path: PathPart) -> int:
    """Derive the child seed of ``root`` at ``path``.

    ``path`` is a sequence of labels naming one consumer of randomness -
    e.g. ``derive_seed(2019, "thread-churn", "shard", 3, "random")`` is
    the seed of the Random mechanism on shard 3 of a thread-churn run.
    Sibling paths yield independent 64-bit seeds; the same ``(root,
    path)`` always yields the same seed, in every process on every
    platform.
    """
    state = splitmix64(root & _MASK64)
    for part in path:
        state = _fold(state, part)
    return state


def spawn_seeds(root: int, count: int, *path: PathPart) -> tuple:
    """``count`` independent child seeds under ``path`` (one per index)."""
    return tuple(derive_seed(root, *path, index) for index in range(count))
