"""Determinism rules (``D1xx``): static guards for bit-identity.

Each rule encodes one way a Python program silently depends on
``PYTHONHASHSEED``, wall-clock time, process-global random state, or
filesystem/scheduler ordering - exactly the inputs the engine's SHA-256
fingerprint contract promises to be independent of.  The rules are the
static mirror of the dynamic guarantees:

* the fingerprint test proves ``--jobs N`` equals ``--jobs 1`` for runs
  that happened; these rules reject the *code shapes* that would break it;
* :func:`repro.seeds.stable_hash` exists because builtin ``hash()`` is
  randomised; ``D102`` points offenders at it;
* :func:`repro.seeds.derive_seed` exists because module-level ``random``
  calls share hidden global state; ``D103`` points offenders at it.

False-positive policy: rules only fire on shapes they can locally prove
suspicious (e.g. a name assigned from a set literal), never on guesses
(an attribute that merely *might* be a set).  The cost is missed
findings; the benefit is that a finding is always worth reading.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.engine import FileContext, Finding, Rule

#: ``random`` module functions that read or write the hidden global PRNG.
_GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "betavariate",
        "expovariate",
        "triangular",
        "getrandbits",
        "seed",
    }
)

#: ``numpy.random`` module-level functions backed by the global RandomState.
_NUMPY_RANDOM_FUNCS = frozenset(
    {
        "random",
        "rand",
        "randn",
        "randint",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "seed",
    }
)

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_LISTING_CALLS = frozenset({"os.listdir", "os.scandir", "glob.glob", "glob.iglob"})
_LISTING_METHODS = frozenset({"glob", "rglob", "iterdir"})

_UNORDERED_POOL_CALLS = frozenset(
    {"concurrent.futures.as_completed", "asyncio.as_completed"}
)


def _finding(ctx: FileContext, node: ast.AST, rule: "Rule", message: str) -> Finding:
    return Finding(
        path=ctx.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule=rule.id,
        message=message,
    )


def _describe_expr(expr: ast.AST) -> str:
    if isinstance(expr, ast.Name):
        return f"'{expr.id}'"
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "a set literal"
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return f"'{expr.func.id}(...)'"
    return "a set expression"


class SetIterationRule(Rule):
    """Iterating a ``set``/``frozenset`` visits elements in hash order.

    For ``str`` elements, hash order changes with ``PYTHONHASHSEED`` -
    i.e. between *processes*, not just between runs.  Any set iteration
    whose per-element effects do not commute (appending to output,
    consuming RNG draws, inserting edges that an order-sensitive
    algorithm later reads, folding into a non-commutative digest) makes
    the result depend on the hash seed and breaks the engine's
    fingerprint contract.  This bit the repo for real: the uniform graph
    generator drew ``rng.random()`` once per (thread, object) pair while
    iterating two frozensets, so a fixed seed produced a different graph
    in every differently-seeded process.

    Fix: iterate a deterministically ordered sequence instead - wrap the
    set in ``sorted(...)`` (with a canonical key for mixed types), or
    iterate the ordered source collection the set was built from.  The
    rule fires on ``for``/comprehension iteration over, and
    ``list()``/``tuple()`` materialisation of, expressions it can locally
    prove set-typed; order-insensitive consumption (membership tests,
    ``len``, commutative folds like ``sum``) is out of scope and safe to
    ``noqa`` when flagged via materialisation.
    """

    id = "D101"
    name = "unsorted-set-iteration"
    summary = "iteration/materialisation of a set has hash-dependent order"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple")
                and len(node.args) == 1
                and not node.keywords
                and ctx.is_setish(node.args[0])
            ):
                yield _finding(
                    ctx,
                    node,
                    self,
                    f"{node.func.id}() materialises {_describe_expr(node.args[0])} "
                    "in hash order; use sorted(...) with a canonical key",
                )
                continue
            for iter_expr in iters:
                if ctx.is_setish(iter_expr, at=node):
                    yield _finding(
                        ctx,
                        iter_expr,
                        self,
                        f"iteration over {_describe_expr(iter_expr)} has "
                        "PYTHONHASHSEED-dependent order; iterate sorted(...) "
                        "or an ordered source sequence",
                    )


class BuiltinHashRule(Rule):
    """Builtin ``hash()`` on ``str``/``bytes`` is randomised per process.

    Since Python 3.3, string hashing is salted with ``PYTHONHASHSEED``:
    the same value hashes differently in different processes.  Anything
    that must agree across workers or runs - shard routing, seed
    derivation, digests, stable sort keys - must not touch ``hash()``.
    Use :func:`repro.seeds.stable_hash` (pure FNV-1a over a typed repr)
    or ``hashlib`` instead.

    Defining ``__hash__`` for use in in-process dicts/sets is fine; the
    rule therefore skips calls inside ``__hash__`` method bodies, where
    delegating to ``hash()`` on members is the normal idiom.
    """

    id = "D102"
    name = "builtin-hash"
    summary = "builtin hash() is PYTHONHASHSEED-dependent"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                function = ctx.enclosing_function(node)
                if function is not None and function.name == "__hash__":
                    continue
                yield _finding(
                    ctx,
                    node,
                    self,
                    "builtin hash() is randomised per process "
                    "(PYTHONHASHSEED); use repro.seeds.stable_hash or hashlib",
                )


class UnseededRandomRule(Rule):
    """Module-level ``random``/``numpy.random`` calls share global state.

    ``random.random()``, ``random.shuffle()`` etc. read one hidden,
    process-global PRNG: results depend on every *other* consumer of that
    stream and on import/execution order, so two code paths that are
    individually deterministic interleave nondeterministically.
    ``random.seed()`` is flagged too - seeding the global stream papers
    over the sharing instead of removing it.

    Fix: construct an explicit ``random.Random(seed)`` (or numpy
    ``Generator``) whose seed comes from
    :func:`repro.seeds.derive_seed` keyed by *what* is being computed,
    and pass the instance down.  That is what makes the engine's serial
    and multiprocess runs agree bit-for-bit.
    """

    id = "D103"
    name = "global-random"
    summary = "module-level random/numpy.random call uses hidden global state"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted_name(node.func)
            if dotted is None:
                continue
            if dotted.startswith("random.") and dotted[7:] in _GLOBAL_RANDOM_FUNCS:
                yield _finding(
                    ctx,
                    node,
                    self,
                    f"{dotted}() uses the process-global PRNG; use a "
                    "random.Random instance seeded via repro.seeds.derive_seed",
                )
            elif (
                dotted.startswith("numpy.random.")
                and dotted.rsplit(".", 1)[1] in _NUMPY_RANDOM_FUNCS
            ):
                yield _finding(
                    ctx,
                    node,
                    self,
                    f"{dotted}() uses numpy's global RandomState; use an "
                    "explicit seeded Generator (numpy.random.default_rng)",
                )


class WallClockRule(Rule):
    """Wall-clock reads make results depend on *when* the code runs.

    ``time.time()``, ``datetime.now()`` and friends leak the execution
    moment into whatever consumes them; anything under the fingerprint
    (results, file contents, seeds, cache keys) must not read them.
    Elapsed-time measurement around the contract - ``time.perf_counter``
    spans reported to stderr - is fine and deliberately not flagged.

    When a wall-clock read is the *feature* (e.g. pruning checkpoints by
    age), suppress the finding at the call site with
    ``# repro: noqa[D104] <why>`` so the decision is recorded in code.
    """

    id = "D104"
    name = "wall-clock"
    summary = "wall-clock read (time.time/datetime.now) in a determinism path"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted_name(node.func)
            if dotted in _WALL_CLOCK_CALLS:
                yield _finding(
                    ctx,
                    node,
                    self,
                    f"{dotted}() reads the wall clock; results must not "
                    "depend on when they run (perf_counter spans to stderr "
                    "are fine; noqa with a reason if wall time is the feature)",
                )


class UnsortedListingRule(Rule):
    """Directory listings come back in filesystem order, not sorted.

    ``os.listdir``, ``glob.glob`` and ``Path.glob``/``iterdir`` return
    entries in whatever order the OS reports them - which differs across
    filesystems, platforms, and even repeated runs after file churn.  Any
    consumer whose behaviour depends on encounter order (first match
    wins, ordered processing, digesting) inherits that nondeterminism.

    Fix: wrap the call in ``sorted(...)`` at the call site.  The rule
    accepts exactly that shape; sorting later is invisible to a local
    analysis, so restructure or ``noqa`` with a reason if the order is
    provably irrelevant.
    """

    id = "D105"
    name = "unsorted-listing"
    summary = "os.listdir/glob/Path.glob without sorted(...)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted_name(node.func)
            described: Optional[str] = None
            if dotted in _LISTING_CALLS:
                described = f"{dotted}()"
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _LISTING_METHODS
            ):
                described = f".{node.func.attr}()"
            if described is None or ctx.is_sorted_arg(node):
                continue
            yield _finding(
                ctx,
                node,
                self,
                f"{described} yields entries in filesystem order; "
                "wrap the call in sorted(...)",
            )


class UnorderedPoolRule(Rule):
    """Completion-order result collection depends on the scheduler.

    ``Pool.imap_unordered`` and ``concurrent.futures.as_completed`` yield
    results in whatever order workers finish - a function of machine
    load, not of the computation.  Merging results in that order breaks
    the ``--jobs N == --jobs 1`` fingerprint contract.

    Fix: collect in submission order (``Pool.imap``, ``executor.map``,
    or index the futures and merge by index), the way
    :mod:`repro.engine` merges shard partials by shard id.
    """

    id = "D106"
    name = "unordered-pool"
    summary = "completion-order multiprocessing collection (imap_unordered/as_completed)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted_name(node.func)
            flagged = dotted in _UNORDERED_POOL_CALLS or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("imap_unordered", "as_completed")
            )
            if flagged:
                name = dotted or node.func.attr  # type: ignore[union-attr]
                yield _finding(
                    ctx,
                    node,
                    self,
                    f"{name} yields results in completion order (scheduler-"
                    "dependent); collect in submission order and merge by index",
                )


class ArbitrarySetElementRule(Rule):
    """``next(iter(s))`` / ``s.pop()`` picks a hash-order 'first' element.

    Which element a set yields first depends on ``PYTHONHASHSEED``, so
    the picked element - often fed into an error message, a tie-break,
    or a work-list - differs across processes.

    Fix: pick deterministically, e.g.
    ``min(s, key=lambda v: (type(v).__name__, repr(v)))`` (the
    canonical vertex key the simulator uses), or sort once and index.
    """

    id = "D107"
    name = "arbitrary-set-element"
    summary = "next(iter(set)) / set.pop() picks a hash-dependent element"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Name)
                and node.func.id == "next"
                and node.args
                and isinstance(node.args[0], ast.Call)
                and isinstance(node.args[0].func, ast.Name)
                and node.args[0].func.id == "iter"
                and len(node.args[0].args) == 1
                and ctx.is_setish(node.args[0].args[0])
            ):
                yield _finding(
                    ctx,
                    node,
                    self,
                    "next(iter(<set>)) picks a PYTHONHASHSEED-dependent "
                    "element; use min(...) with a canonical key",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "pop"
                and not node.args
                and not node.keywords
                and ctx.is_setish(node.func.value)
            ):
                yield _finding(
                    ctx,
                    node,
                    self,
                    "set.pop() removes a PYTHONHASHSEED-dependent element; "
                    "pick via min(...) with a canonical key and discard it",
                )


class SetInOutputRule(Rule):
    """Rendering a set into text bakes hash order into the output.

    ``f"{unknown!r}"``, ``str(some_set)`` and ``", ".join(some_set)``
    serialise elements in iteration (hash) order, so the same logical
    value prints differently across processes - poisoning error
    messages asserted by tests, logs that get diffed, and any persisted
    report.

    Fix: render ``sorted(...)`` (with a canonical key for mixed
    element types) instead of the set itself.
    """

    id = "D108"
    name = "set-in-output"
    summary = "set rendered into a string in hash order"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.FormattedValue) and ctx.is_setish(node.value):
                yield _finding(
                    ctx,
                    node.value,
                    self,
                    "f-string renders a set in hash order; format "
                    "sorted(...) instead",
                )
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in ("str", "repr", "format")
                    and len(node.args) >= 1
                    and ctx.is_setish(node.args[0])
                ):
                    yield _finding(
                        ctx,
                        node,
                        self,
                        f"{node.func.id}() renders a set in hash order; "
                        "render sorted(...) instead",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and len(node.args) == 1
                    and ctx.is_setish(node.args[0])
                ):
                    yield _finding(
                        ctx,
                        node,
                        self,
                        "str.join over a set concatenates in hash order; "
                        "join sorted(...) instead",
                    )


DETERMINISM_RULES = (
    SetIterationRule,
    BuiltinHashRule,
    UnseededRandomRule,
    WallClockRule,
    UnsortedListingRule,
    UnorderedPoolRule,
    ArbitrarySetElementRule,
    SetInOutputRule,
)
