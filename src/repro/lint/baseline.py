"""Baseline files: accepted pre-existing findings, burned down over time.

A baseline entry matches findings by ``(rule, path, message)`` - line
numbers are deliberately excluded so unrelated edits that shift code do
not churn the file.  Each entry carries a ``count`` (how many identical
findings it covers in that file) and a one-line ``justification`` saying
why the finding is benign; an entry without a real justification is a
review smell, which is the point.

The file is JSON with sorted keys and sorted entries, so regenerating it
is deterministic and diffs are minimal.  Two failure modes are surfaced
rather than hidden:

* a finding *not* covered by the baseline is an active finding (exit 1);
* an entry that no longer matches anything is *stale* and reported as a
  warning, so the baseline shrinks as findings are fixed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import LintError
from repro.lint.engine import Finding

#: Format version of the baseline file itself.
BASELINE_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    message: str
    count: int
    justification: str

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.message)

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "message": self.message,
            "count": self.count,
            "justification": self.justification,
        }


def load_baseline(path: Path) -> List[BaselineEntry]:
    """Parse a baseline file; malformed content raises :class:`LintError`."""
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise LintError(f"cannot read baseline {path}: {error}")
    except json.JSONDecodeError as error:
        raise LintError(f"baseline {path} is not valid JSON: {error}")
    if not isinstance(document, dict) or document.get("version") != BASELINE_VERSION:
        raise LintError(
            f"baseline {path} must be an object with 'version': {BASELINE_VERSION}"
        )
    entries = []
    for index, raw in enumerate(document.get("entries", [])):
        try:
            entries.append(
                BaselineEntry(
                    rule=str(raw["rule"]),
                    path=str(raw["path"]),
                    message=str(raw["message"]),
                    count=int(raw.get("count", 1)),
                    justification=str(raw.get("justification", "")),
                )
            )
        except (TypeError, KeyError) as error:
            raise LintError(
                f"baseline {path} entry {index} is malformed (missing {error})"
            )
    return entries


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[BaselineEntry]
) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
    """Split findings into (active, suppressed) and report stale entries.

    Each entry absorbs up to ``count`` findings with its key; extra
    findings beyond the count stay active (a regression that *adds* an
    occurrence of a baselined pattern still fails).  Entries left with
    unused capacity equal to their full count are stale.
    """
    budget: Dict[Tuple[str, str, str], int] = {}
    for entry in entries:
        budget[entry.key] = budget.get(entry.key, 0) + entry.count
    consumed: Dict[Tuple[str, str, str], int] = {}
    active: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        if budget.get(finding.key, 0) > 0:
            budget[finding.key] -= 1
            consumed[finding.key] = consumed.get(finding.key, 0) + 1
            suppressed.append(finding)
        else:
            active.append(finding)
    stale = [entry for entry in entries if consumed.get(entry.key, 0) == 0]
    return active, suppressed, stale


def render_baseline(
    findings: Sequence[Finding], justification: str = "TODO: justify or fix"
) -> str:
    """Serialise ``findings`` as a fresh baseline document (sorted, stable)."""
    counts: Dict[Tuple[str, str, str], int] = {}
    for finding in findings:
        counts[finding.key] = counts.get(finding.key, 0) + 1
    entries = [
        BaselineEntry(
            rule=rule, path=path, message=message, count=count,
            justification=justification,
        ).to_json()
        for (rule, path, message), count in sorted(counts.items())
    ]
    document = {"version": BASELINE_VERSION, "entries": entries}
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
