"""The ``python -m repro lint`` command.

Thin argparse glue over :mod:`repro.lint.engine`: resolves rule
selections, runs the pass, applies the baseline, and renders text or
JSON.  Exit codes follow the usual linter convention:

* ``0`` - no active findings (clean, or everything baselined),
* ``1`` - at least one active finding,
* ``2`` - usage error (unknown rule, unreadable baseline, bad path),
  raised as :class:`~repro.exceptions.LintError` and mapped by the
  top-level CLI.

``--changed`` scopes the run to files git reports as modified/untracked
relative to ``HEAD`` - the fast pre-commit loop; CI runs the full tree.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Type

from repro.exceptions import LintError
from repro.lint.baseline import apply_baseline, load_baseline, render_baseline
from repro.lint.contracts import CONTRACT_RULES
from repro.lint.engine import Finding, Rule, run_lint
from repro.lint.rules import DETERMINISM_RULES

#: Every registered rule class, in rule-id order.
ALL_RULES: Sequence[Type[Rule]] = tuple(
    sorted(DETERMINISM_RULES + CONTRACT_RULES, key=lambda rule: rule.id)
)

#: Paths linted when none are given: the whole enforced surface.
DEFAULT_PATHS = ("src", "benchmarks", "tests")

#: The committed burn-down file, used when present and no --baseline given.
DEFAULT_BASELINE = "lint-baseline.json"


def rules_by_selector() -> Dict[str, Type[Rule]]:
    """Rules keyed by both id (``D101``) and slug (``unsorted-set-iteration``)."""
    table: Dict[str, Type[Rule]] = {}
    for rule in ALL_RULES:
        table[rule.id.upper()] = rule
        table[rule.name.lower()] = rule
    return table


def _resolve_rules(
    select: Optional[str], ignore: Optional[str]
) -> List[Rule]:
    table = rules_by_selector()

    def lookup(raw: str) -> Type[Rule]:
        rule = table.get(raw.upper()) or table.get(raw.lower())
        if rule is None:
            known = ", ".join(r.id for r in ALL_RULES)
            raise LintError(f"unknown rule {raw!r} (known rules: {known})")
        return rule

    chosen: List[Type[Rule]] = list(ALL_RULES)
    if select:
        chosen = [lookup(part.strip()) for part in select.split(",") if part.strip()]
    if ignore:
        dropped = {lookup(part.strip()) for part in ignore.split(",") if part.strip()}
        chosen = [rule for rule in chosen if rule not in dropped]
    return [rule() for rule in chosen]


def _changed_python_files() -> List[str]:
    """Python files git sees as modified or untracked relative to HEAD."""
    try:
        tracked = subprocess.run(
            ["git", "diff", "--name-only", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.splitlines()
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True, text=True, check=True,
        ).stdout.splitlines()
    except (OSError, subprocess.CalledProcessError) as error:
        raise LintError(f"--changed requires a git checkout: {error}")
    files = sorted(
        {line.strip() for line in tracked + untracked if line.strip().endswith(".py")}
    )
    return [path for path in files if Path(path).is_file()]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", default=None,
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids/names to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default=None, metavar="RULES",
        help="comma-separated rule ids/names to skip",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="format_",
        help="output format (json includes baselined findings, marked)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"baseline file of accepted findings (default: {DEFAULT_BASELINE} "
        "when it exists)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file; report every finding as active",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to the baseline file and exit 0 "
        "(justifications start as TODO and are meant to be edited)",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="lint only python files git reports changed vs HEAD "
        "(fast pre-commit loop); positional paths are ignored",
    )
    parser.add_argument(
        "--explain", default=None, metavar="RULE",
        help="print a rule's full documentation and exit",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list rule ids, names and summaries and exit",
    )


def cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.name:28s} {rule.summary}")
        return 0
    if args.explain:
        table = rules_by_selector()
        rule = table.get(args.explain.upper()) or table.get(args.explain.lower())
        if rule is None:
            known = ", ".join(r.id for r in ALL_RULES)
            raise LintError(f"unknown rule {args.explain!r} (known rules: {known})")
        print(rule.explain())
        return 0

    rules = _resolve_rules(args.select, args.ignore)
    if args.changed:
        paths = _changed_python_files()
        if not paths:
            print("no changed python files")
            return 0
    else:
        paths = list(args.paths) if args.paths else list(DEFAULT_PATHS)
    findings = run_lint(paths, rules)

    baseline_path = Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE)
    if args.write_baseline:
        baseline_path.write_text(render_baseline(findings), encoding="utf-8")
        print(f"wrote {len(findings)} finding(s) to {baseline_path}")
        return 0

    entries = []
    if not args.no_baseline and baseline_path.is_file():
        entries = load_baseline(baseline_path)
    # --changed lints a subset of the tree, so entries for unvisited files
    # are expected to go unmatched; suppress the stale warning there.
    active, suppressed, stale = apply_baseline(findings, entries)
    report_stale = stale if not args.changed else []

    if args.format_ == "json":
        document = {
            "version": 1,
            "findings": [
                dict(finding.to_json(), baselined=False) for finding in active
            ] + [
                dict(finding.to_json(), baselined=True) for finding in suppressed
            ],
            "stale_baseline_entries": [entry.to_json() for entry in report_stale],
            "counts": {
                "active": len(active),
                "baselined": len(suppressed),
                "stale": len(report_stale),
            },
        }
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        for finding in active:
            print(finding.format())
        for entry in report_stale:
            print(
                f"warning: stale baseline entry {entry.rule} {entry.path} "
                f"({entry.message!r}) matches nothing; remove it",
                file=sys.stderr,
            )
        if active:
            noun = "finding" if len(active) == 1 else "findings"
            suffix = f" ({len(suppressed)} baselined)" if suppressed else ""
            print(f"{len(active)} {noun}{suffix}")
        elif suppressed:
            print(f"clean ({len(suppressed)} baselined)")
        else:
            print("clean")
    return 1 if active else 0
