"""Static enforcement of the repo's determinism & protocol contracts.

``python -m repro lint`` runs an ``ast``-based pass over the tree with
two rule families: generic determinism rules (``D1xx`` - hash-order
iteration, builtin ``hash()``, global RNG state, wall-clock reads,
unsorted directory listings, completion-order result collection) and
repo-specific contract rules (``C2xx`` - the hoisted ``observe_batch``
guard, the kernel bit-identity surface, ``EngineConfig`` signature
membership, scenario seed threading).

See :mod:`repro.lint.engine` for the machinery, :mod:`repro.lint.rules`
/ :mod:`repro.lint.contracts` for the rules themselves, and
:mod:`repro.lint.baseline` for the burn-down workflow.
"""

from repro.lint.baseline import (
    BaselineEntry,
    apply_baseline,
    load_baseline,
    render_baseline,
)
from repro.lint.cli import ALL_RULES, DEFAULT_BASELINE, DEFAULT_PATHS, cmd_lint
from repro.lint.contracts import CONTRACT_RULES
from repro.lint.engine import FileContext, Finding, Rule, check_file, run_lint
from repro.lint.rules import DETERMINISM_RULES

__all__ = [
    "ALL_RULES",
    "BaselineEntry",
    "CONTRACT_RULES",
    "DEFAULT_BASELINE",
    "DEFAULT_PATHS",
    "DETERMINISM_RULES",
    "FileContext",
    "Finding",
    "Rule",
    "apply_baseline",
    "check_file",
    "cmd_lint",
    "load_baseline",
    "render_baseline",
    "run_lint",
]
