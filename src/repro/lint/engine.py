"""The rule engine behind ``python -m repro lint``.

This module is deliberately boring infrastructure: it knows how to walk a
file tree, parse each Python file once, precompute the shared analyses the
rules need (parent links, import-alias resolution, per-scope set-typed
name inference, ``noqa`` comments), and hand every rule a
:class:`FileContext`.  The determinism/contract knowledge itself lives in
:mod:`repro.lint.rules` and :mod:`repro.lint.contracts`.

Everything here is stdlib-only (``ast`` + ``re``): the linter must run on
a bare interpreter, in CI and pre-commit, with no third-party imports.

Suppression
-----------
A finding on line ``L`` is suppressed when line ``L`` carries a trailing
``# repro: noqa[RULE]`` comment naming the rule (or a blanket
``# repro: noqa``).  Suppressions are for findings that are *understood
and accepted*; the comment is the justification's home, e.g.::

    cutoff = time.time() - max_age  # repro: noqa[D104] age pruning is wall-clock by design

Pre-existing findings that should be burned down over time belong in the
baseline file instead (:mod:`repro.lint.baseline`).

Path policies
-------------
Some rules are *scoped out* of whole subtrees rather than suppressed
line-by-line: :data:`PATH_POLICIES` maps a rule id to path prefixes where
its findings are dropped wholesale.  This is for subsystems whose charter
is to do the thing the rule forbids - the telemetry registry in
``src/repro/obs/`` exists to anchor spans to wall time, so a ``noqa`` on
every clock read there would be ritual, not information.  The policy
table keeps the carve-out in one auditable place instead.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.exceptions import LintError

#: Scope-introducing nodes for name inference.  ``Lambda`` bodies cannot
#: contain assignments, so they are treated as part of the enclosing scope.
_SCOPE_NODES = (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)

#: ``# repro: noqa`` or ``# repro: noqa[D101]`` or ``# repro: noqa[D101, C201] why``
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s-]+)\])?", re.IGNORECASE
)

#: Set-producing ``set`` method names (receiver must itself be set-typed).
_SET_METHODS = frozenset(
    {"intersection", "union", "difference", "symmetric_difference", "copy"}
)

#: Binary operators that preserve set-ness when an operand is a set.
_SET_BINOPS = (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)

#: Rule id -> path prefixes (posix, cwd-relative) where that rule's
#: findings are dropped.  The telemetry layer is the one place wall-clock
#: reads are the charter: ``MetricsRegistry`` anchors every span/export to
#: a wall epoch, and the determinism contract is enforced one level up
#: (C206 keeps registry *reads* out of result paths entirely).
PATH_POLICIES: Dict[str, Tuple[str, ...]] = {
    "D104": ("src/repro/obs/",),
}


def policy_exempt(finding: "Finding") -> bool:
    """Whether a path policy scopes ``finding``'s rule out of its file."""
    prefixes = PATH_POLICIES.get(finding.rule)
    if not prefixes:
        return False
    return any(finding.path.startswith(prefix) for prefix in prefixes)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    The ``message`` is location-free on purpose: baseline entries match on
    ``(rule, path, message)`` so that unrelated edits shifting line numbers
    do not invalidate the baseline.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    @property
    def key(self) -> Tuple[str, str, str]:
        """The baseline-matching key (line numbers excluded, see above)."""
        return (self.rule, self.path, self.message)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col + 1,
            "rule": self.rule,
            "message": self.message,
        }


class Rule:
    """Base class for lint rules.

    Subclasses set ``id`` (stable, referenced by ``noqa``/baseline/CLI),
    ``name`` (a kebab-case slug accepted interchangeably with the id) and
    ``summary`` (one line for listings), and implement :meth:`check`.  The
    class docstring is the long-form explanation rendered by
    ``repro lint --explain RULE``.
    """

    id: str = ""
    name: str = ""
    summary: str = ""

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        raise NotImplementedError

    @classmethod
    def explain(cls) -> str:
        import inspect

        doc = inspect.getdoc(cls) or "(no documentation)"
        return f"{cls.id} ({cls.name}): {cls.summary}\n\n{doc}"


class FileContext:
    """One parsed file plus the shared analyses every rule reads.

    All analyses are computed lazily-once in ``__init__``; rules are pure
    readers, so a file is parsed and walked for inference exactly once no
    matter how many rules run.
    """

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        self.aliases = _collect_aliases(tree)
        self._scope_sets: Dict[ast.AST, FrozenSet[str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, _SCOPE_NODES):
                self._scope_sets[node] = _infer_set_names(node)
        self.noqa = _collect_noqa(source)

    # -- name / type helpers -------------------------------------------------
    def scope_of(self, node: ast.AST) -> ast.AST:
        """The nearest enclosing scope node (function or module)."""
        current: Optional[ast.AST] = node
        while current is not None:
            current = self.parents.get(current)
            if isinstance(current, _SCOPE_NODES):
                return current
        return self.tree

    def set_names(self, node: ast.AST) -> FrozenSet[str]:
        """Names inferred set-typed in ``node``'s enclosing scope."""
        return self._scope_sets.get(self.scope_of(node), frozenset())

    def is_setish(self, expr: ast.AST, at: Optional[ast.AST] = None) -> bool:
        """Whether ``expr`` statically looks like a ``set``/``frozenset``."""
        return _is_setish(expr, self.set_names(at if at is not None else expr))

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """Resolve ``Name``/``Attribute`` chains through import aliases.

        ``np.random.rand`` with ``import numpy as np`` resolves to
        ``"numpy.random.rand"``; ``time()`` after ``from time import
        time`` resolves to ``"time.time"``.  Returns ``None`` for
        anything that is not a plain dotted chain.
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.aliases.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def enclosing_function(self, node: ast.AST) -> Optional[ast.FunctionDef]:
        current: Optional[ast.AST] = node
        while current is not None:
            current = self.parents.get(current)
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current  # type: ignore[return-value]
        return None

    def is_sorted_arg(self, node: ast.AST) -> bool:
        """Whether ``node`` is directly an argument of a ``sorted(...)`` call."""
        parent = self.parents.get(node)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id == "sorted"
            and node in parent.args
        )

    # -- suppression ---------------------------------------------------------
    def suppressed(self, finding: Finding) -> bool:
        rules = self.noqa.get(finding.line)
        if rules is None:
            return False
        return not rules or finding.rule in rules


def _collect_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted module/attribute they were imported as."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                local = item.asname or item.name.split(".")[0]
                aliases[local] = item.name if item.asname else item.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = f"{node.module}.{item.name}"
    return aliases


def _collect_noqa(source: str) -> Dict[int, FrozenSet[str]]:
    """Per-line suppressions: ``frozenset()`` means blanket ``noqa``."""
    table: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            table[lineno] = frozenset()
        else:
            table[lineno] = frozenset(
                part.strip().upper() for part in rules.split(",") if part.strip()
            )
    return table


def _is_setish(expr: ast.AST, names: FrozenSet[str]) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Name):
        return expr.id in names
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SET_METHODS
            and _is_setish(func.value, names)
        ):
            return True
        return False
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, _SET_BINOPS):
        return _is_setish(expr.left, names) or _is_setish(expr.right, names)
    if isinstance(expr, ast.IfExp):
        return _is_setish(expr.body, names) and _is_setish(expr.orelse, names)
    return False


def _ordered_nodes_skipping_nested_scopes(scope: ast.AST) -> Iterator[ast.AST]:
    """Depth-first, source-ordered walk that stays inside one scope."""
    for child in ast.iter_child_nodes(scope):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield child
        for grandchild in _ordered_nodes_skipping_nested_scopes(child):
            yield grandchild


def _infer_set_names(scope: ast.AST) -> FrozenSet[str]:
    """Names that are set-typed throughout ``scope``.

    Conservative on purpose: a name qualifies only when *every* plain
    assignment to it binds a set-shaped expression (set/frozenset literal
    or call, set comprehension, set-operator expression, or another
    qualifying name) and it is never rebound by a loop target.  Names with
    any non-set assignment are excluded, so ``x = sorted(x)`` cleanses
    ``x``.  Resolution of name-to-name assignments runs to a fixed point.
    """
    assignments: Dict[str, List[Optional[ast.AST]]] = {}

    def record(target: ast.AST, value: Optional[ast.AST]) -> None:
        if isinstance(target, ast.Name):
            assignments.setdefault(target.id, []).append(value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                record(element, None)  # tuple unpacking: unknown type

    for node in _ordered_nodes_skipping_nested_scopes(scope):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                record(target, node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            record(node.target, node.value)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            record(node.target, None)  # loop variable: element, not the set
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            record(node.optional_vars, None)

    names: set = set()
    changed = True
    while changed:
        changed = False
        for name, values in assignments.items():
            if name in names:
                continue
            if values and all(
                value is not None and _is_setish(value, frozenset(names))
                for value in values
            ):
                names.add(name)
                changed = True
    return frozenset(names)


# ---------------------------------------------------------------------------
# File collection and the run loop
# ---------------------------------------------------------------------------
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".mypy_cache", ".pytest_cache"})


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    collected: set = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    collected.add(candidate)
        elif path.is_file():
            if path.suffix == ".py":
                collected.add(path)
        else:
            raise LintError(f"no such file or directory: {raw}")
    return sorted(collected, key=lambda p: p.as_posix())


def relative_path(path: Path) -> str:
    """The posix-style path findings and baselines use (cwd-relative)."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def check_file(path: Path, rules: Iterable[Rule]) -> List[Finding]:
    """Run ``rules`` over one file; syntax errors surface as a finding."""
    rel = relative_path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as error:
        raise LintError(f"cannot read {rel}: {error}")
    try:
        tree = ast.parse(source, filename=rel)
    except SyntaxError as error:
        return [
            Finding(
                path=rel,
                line=error.lineno or 1,
                col=(error.offset or 1) - 1,
                rule="E999",
                message=f"syntax error: {error.msg}",
            )
        ]
    ctx = FileContext(rel, source, tree)
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.check(ctx):
            if not ctx.suppressed(finding) and not policy_exempt(finding):
                findings.append(finding)
    return findings


def run_lint(paths: Iterable[str], rules: Iterable[Rule]) -> List[Finding]:
    """Lint ``paths`` with ``rules``; findings come back in sorted order."""
    rules = list(rules)
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(check_file(path, rules))
    return sorted(findings)
