"""Contract-conformance rules (``C2xx``): this repo's protocols, enforced.

Where the ``D1xx`` family guards against generic Python nondeterminism,
these rules encode agreements specific to this codebase - each one the
static form of a contract that already has a dynamic enforcement story
(property tests, fingerprint checks) and a history of being easy to
violate silently:

* ``C201`` - the hoisted ``observe_batch`` fast path must keep the
  ``super()`` fallback guard, or subclass hook overrides are silently
  skipped in batched runs (bit-identity between pipelines breaks);
* ``C202`` - a kernel backend must override the *whole* bit-identity
  surface or none of it, or batches mix backends mid-run;
* ``C203`` - every ``EngineConfig`` field needs an explicit decision
  about run-signature membership (the ``timestamps``-in-signature class
  of bug from PR 5);
* ``C204`` - a scenario factory that accepts a seed must consume it, or
  two differently-seeded runs silently produce the same stream;
* ``C205`` - a ``ClockKernel`` method that mutates clock state or
  component layout must touch the resident-array cache (invalidate,
  evict, or assign it) or be listed in ``CACHE_SAFE_METHODS``, or the
  numpy backend serves stale vectors from its cross-batch cache;
* ``C206`` - result-path modules may *write* telemetry (counters,
  spans) but never *read* it back: a branch on a metrics value makes
  results a function of timing, breaking fingerprint identity between
  telemetry-on and telemetry-off runs.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.lint.engine import FileContext, Finding, Rule

#: The kernel-backend methods that must agree bit-for-bit across backends.
KERNEL_SURFACE = ("advance_batch", "timestamp_batch")


def _finding(ctx: FileContext, node: ast.AST, rule: Rule, message: str) -> Finding:
    return Finding(
        path=ctx.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule=rule.id,
        message=message,
    )


def _base_names(classdef: ast.ClassDef, ctx: FileContext) -> List[str]:
    """Last dotted segment of each base (``repro.x.Foo`` -> ``Foo``)."""
    names = []
    for base in classdef.bases:
        dotted = ctx.dotted_name(base)
        if dotted is not None:
            names.append(dotted.rsplit(".", 1)[-1])
    return names


def _methods(classdef: ast.ClassDef) -> dict:
    return {
        node.name: node
        for node in classdef.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


class MechanismBatchGuardRule(Rule):
    """A hoisted ``observe_batch`` must keep its ``super()`` fallback guard.

    ``OnlineMechanism.observe_batch`` promises bit-identity with the
    per-event ``observe`` loop.  Mechanisms that hoist the loop for speed
    (popularity, naive, hybrid) keep that promise for *subclasses* with a
    runtime guard: if the concrete class overrides ``observe``,
    ``_choose`` or ``_on_observe``, the hoisted body would skip those
    hooks, so the guard routes back to ``super().observe_batch(pairs)``
    (the faithful loop).  Dropping the guard is invisible in tests of the
    class itself and only breaks when someone later subclasses it - the
    worst kind of contract violation.

    The rule requires every ``observe_batch`` override in an
    ``*Mechanism`` subclass to call ``super().observe_batch(...)``
    somewhere in its body.  A batch implementation that is correct for
    every possible subclass can ``noqa`` with its reasoning.
    """

    id = "C201"
    name = "mechanism-batch-guard"
    summary = "observe_batch override lacks the super() fallback guard"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(name.endswith("Mechanism") for name in _base_names(node, ctx)):
                continue
            batch = _methods(node).get("observe_batch")
            if batch is None:
                continue
            if not self._calls_super_observe_batch(batch):
                yield _finding(
                    ctx,
                    batch,
                    self,
                    f"{node.name}.observe_batch hoists the event loop without "
                    "a super().observe_batch(...) fallback; subclass hook "
                    "overrides would be silently skipped in batched runs",
                )

    @staticmethod
    def _calls_super_observe_batch(method: ast.AST) -> bool:
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "observe_batch"
                and isinstance(node.func.value, ast.Call)
                and isinstance(node.func.value.func, ast.Name)
                and node.func.value.func.id == "super"
            ):
                return True
        return False


class KernelSurfaceRule(Rule):
    """A kernel backend must cover the whole bit-identity surface.

    ``KernelBackend`` strategies promise that ``advance_batch`` and
    ``timestamp_batch`` produce byte-identical results across backends -
    the property tests compare them pairwise.  A subclass overriding only
    one of the two runs half its batches through the parent backend: the
    mixed implementation can pass single-method tests while its two
    halves disagree about internal layout (e.g. a vectorised
    ``advance_batch`` updating arrays the inherited ``timestamp_batch``
    never reads).

    The rule requires an ``*KernelBackend`` subclass to override both
    surface methods or neither.  Intentional partial specialisations
    (e.g. overriding only ``name`` or checkpoint behaviour) are
    untouched; a genuinely safe half-override can ``noqa`` with the
    invariant that makes it safe.
    """

    id = "C202"
    name = "kernel-backend-surface"
    summary = "KernelBackend subclass overrides only part of the bit-identity surface"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(
                name.endswith("KernelBackend") for name in _base_names(node, ctx)
            ):
                continue
            overridden = [m for m in KERNEL_SURFACE if m in _methods(node)]
            if overridden and len(overridden) < len(KERNEL_SURFACE):
                missing = [m for m in KERNEL_SURFACE if m not in overridden]
                yield _finding(
                    ctx,
                    node,
                    self,
                    f"{node.name} overrides {', '.join(overridden)} but not "
                    f"{', '.join(missing)}; the bit-identity surface "
                    f"({', '.join(KERNEL_SURFACE)}) must be overridden "
                    "together or not at all",
                )


class EngineConfigSignatureRule(Rule):
    """Every ``EngineConfig`` field needs a signature-membership decision.

    ``EngineConfig.signature()`` defines a run's identity: checkpoints
    resume only when signatures match, and the fingerprint is a pure
    function of it.  A new field silently changes that calculus in one
    of two wrong ways - included when it is an execution knob
    (``timestamps`` landing in the signature in PR 5 made identical runs
    look different), or omitted when it shapes results (two different
    runs would share checkpoints and corrupt resume).

    The rule forces the decision to be written down: each dataclass
    field's name must appear either as a string literal inside
    ``signature()`` (identity) or in the module's
    ``NON_SIGNATURE_FIELDS`` tuple (explicitly excluded, with the
    reasoning kept next to that tuple).  Fields that enter the signature
    under a derived key (``trajectory_stride`` -> ``"stride"``) are
    listed in ``NON_SIGNATURE_FIELDS`` with a comment saying so.
    """

    id = "C203"
    name = "engine-config-signature"
    summary = "EngineConfig field with no signature-membership decision"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or node.name != "EngineConfig":
                continue
            fields = [
                stmt.target.id
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and "ClassVar" not in ast.dump(stmt.annotation)
            ]
            decided: Set[str] = set()
            signature = _methods(node).get("signature")
            if signature is not None:
                decided.update(_string_constants(signature))
            decided.update(_declared_exclusions(ctx.tree, "NON_SIGNATURE_FIELDS"))
            for name in fields:
                if name not in decided:
                    yield _finding(
                        ctx,
                        node,
                        self,
                        f"EngineConfig field '{name}' is neither named in "
                        "signature() nor declared in NON_SIGNATURE_FIELDS; "
                        "decide whether it is part of the run's identity",
                    )


def _string_constants(node: ast.AST) -> Set[str]:
    return {
        child.value
        for child in ast.walk(node)
        if isinstance(child, ast.Constant) and isinstance(child.value, str)
    }


def _declared_exclusions(tree: ast.AST, constant: str) -> Set[str]:
    """String entries of a module-level ``CONSTANT = ("...", ...)`` tuple."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and any(
            isinstance(target, ast.Name) and target.id == constant
            for target in node.targets
        ):
            return _string_constants(node.value)
    return set()


class ScenarioSeedRule(Rule):
    """A ``@register_scenario`` factory must consume the seed it accepts.

    Scenario factories receive the run's root seed and are expected to
    thread it into :func:`repro.seeds.derive_seed` (or an explicit
    ``random.Random(seed)``).  A factory that accepts ``seed`` and never
    reads it produces the *same* stream for every seed - sweeps quietly
    average one sample, and "change the seed" stops being a valid
    reproducibility check.  This is statically detectable: the parameter
    name appears nowhere in the function body.

    A constant scenario (e.g. a fixed worked example from the paper)
    should drop the parameter or ``noqa`` with a note that constancy is
    the point.
    """

    id = "C204"
    name = "scenario-unused-seed"
    summary = "@register_scenario factory accepts a seed it never uses"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not self._is_scenario_factory(node, ctx):
                continue
            params = [arg.arg for arg in node.args.args + node.args.kwonlyargs]
            if "seed" not in params:
                continue
            used = any(
                isinstance(child, ast.Name)
                and child.id == "seed"
                and isinstance(child.ctx, ast.Load)
                for stmt in node.body
                for child in ast.walk(stmt)
            )
            if not used:
                yield _finding(
                    ctx,
                    node,
                    self,
                    f"scenario factory '{node.name}' accepts 'seed' but never "
                    "uses it; thread it through repro.seeds.derive_seed or "
                    "drop the parameter",
                )

    @staticmethod
    def _is_scenario_factory(node: ast.AST, ctx: FileContext) -> bool:
        for decorator in node.decorator_list:  # type: ignore[attr-defined]
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            dotted = ctx.dotted_name(target)
            if dotted is not None and dotted.rsplit(".", 1)[-1] == "register_scenario":
                return True
        return False


#: ``ClockKernel`` attributes whose mutation can strand the resident-array
#: cache (the stamp dicts the cache shadows, plus the layout bindings its
#: pure-append pad model depends on).
KERNEL_CLOCK_STATE = (
    "_thread_stamps",
    "_object_stamps",
    "_components",
    "_thread_slot",
    "_object_slot",
)

#: Dict/collection method calls that mutate their receiver in place.
_MUTATING_METHODS = frozenset({"clear", "pop", "popitem", "update", "setdefault"})

#: ``self.<method>(...)`` calls that mutate clock state transitively.
_MUTATING_DELEGATES = frozenset(
    {"_bind_components", "_rebase_stamps", "_project_stamps"}
)

#: Cache hooks whose call satisfies the contract.
_CACHE_HOOKS = frozenset({"_invalidate_cache", "_cache_evict"})


class KernelCacheInvalidationRule(Rule):
    """A ``ClockKernel`` mutation must keep the resident-array cache coherent.

    The numpy backend keeps touched clock vectors resident as ``int64``
    arrays *across* batches (``_ArrayCache``), trusting the stamp dicts
    and the cached arrays to describe the same clocks.  Any method that
    mutates clock state behind the cache's back - writing the stamp
    dicts, rebinding ``_components``/slot maps, or delegating to
    ``_bind_components``/``_rebase_stamps``/``_project_stamps`` - leaves
    stale vectors that
    the next batch silently reads: fingerprints diverge between cached
    and uncached runs, the worst kind of nondeterminism because it only
    appears after a warm-up.

    The rule requires every such method to do one of:

    * call ``self._invalidate_cache(...)`` (wholesale drop - always safe),
    * call ``self._cache_evict(...)`` (targeted per-event eviction),
    * assign ``self._cache`` directly (e.g. ``__setstate__`` restoring
      the no-cache invariant), or
    * be listed in the module-level ``CACHE_SAFE_METHODS`` tuple, whose
      entries carry the written-down reason the mutation is coherent
      without cache action (e.g. ``extend_components``: pure append,
      reconciled by the cache's deferred pad-on-read ``sync``).

    The exemption set keeps the decision auditable: a new mutating
    method either visibly touches the cache or names itself next to a
    justification, never neither.
    """

    id = "C205"
    name = "kernel-cache-invalidation"
    summary = "ClockKernel mutation without a resident-cache coherence action"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or node.name != "ClockKernel":
                continue
            exempt = _declared_exclusions(ctx.tree, "CACHE_SAFE_METHODS")
            for name, method in _methods(node).items():
                if name in exempt or name in _CACHE_HOOKS:
                    continue
                if self._mutates_clock_state(method) and not self._touches_cache(
                    method
                ):
                    yield _finding(
                        ctx,
                        method,
                        self,
                        f"ClockKernel.{name} mutates clock state without a "
                        "cache-coherence action; call _invalidate_cache/"
                        "_cache_evict, assign self._cache, or list the "
                        "method in CACHE_SAFE_METHODS with its reasoning",
                    )

    @staticmethod
    def _is_self_attr(node: ast.AST, names) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and node.attr in names
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        )

    @classmethod
    def _mutates_clock_state(cls, method: ast.AST) -> bool:
        for node in ast.walk(method):
            # self._thread_stamps[k] = v  /  del self._thread_stamps[k]
            if (
                isinstance(node, ast.Subscript)
                and isinstance(node.ctx, (ast.Store, ast.Del))
                and cls._is_self_attr(node.value, KERNEL_CLOCK_STATE)
            ):
                return True
            # self._components = ...  (rebinding layout state)
            if isinstance(node, ast.Attribute) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                if cls._is_self_attr(node, KERNEL_CLOCK_STATE):
                    return True
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                # self._thread_stamps.clear() and friends
                if node.func.attr in _MUTATING_METHODS and cls._is_self_attr(
                    node.func.value, KERNEL_CLOCK_STATE
                ):
                    return True
                # self._bind_components(...) / self._rebase_stamps(...)
                if cls._is_self_attr(node.func, _MUTATING_DELEGATES):
                    return True
        return False

    @classmethod
    def _touches_cache(cls, method: ast.AST) -> bool:
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and cls._is_self_attr(node.func, _CACHE_HOOKS)
            ):
                return True
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Store)
                and cls._is_self_attr(node, ("_cache",))
            ):
                return True
        return False


#: Module path prefixes whose code feeds the fingerprint (directly or via
#: merged partials).  Telemetry in these modules is write-only: counters
#: and spans may be *recorded*, never read back into control flow.
RESULT_PATH_PREFIXES = (
    "src/repro/analysis/",
    "src/repro/baselines/",
    "src/repro/computation/",
    "src/repro/core/",
    "src/repro/engine/",
    "src/repro/graph/",
    "src/repro/offline/",
    "src/repro/online/",
    "src/repro/runtime/",
)

#: The sanctioned crossings: modules whose whole job is to carry metrics
#: *out* of result paths (worker-side snapshotting for the spawn pool).
#: Everything they read is merged after the partial results are final, so
#: the reads cannot feed back into them.
TELEMETRY_BRIDGE_MODULES = ("src/repro/engine/telemetry.py",)

#: ``MetricsRegistry``/``MetricsSnapshot`` methods that *read* telemetry
#: state.  Write-side methods (``add``, ``gauge``, ``observe``, ``span``,
#: ``record_span``) are deliberately absent - recording is the point.
_TELEMETRY_READ_METHODS = frozenset(
    {
        "counter_value",
        "counters",
        "gauge_value",
        "gauges",
        "histogram",
        "histograms",
        "merge_snapshot",
        "percentile",
        "snapshot",
        "span_records",
        "span_totals",
    }
)


class TelemetryReadRule(Rule):
    """Result-path modules must not read telemetry back.

    The observability contract is one-directional: hot paths *emit*
    counters, histograms and spans, and only the CLI/exporter layer (and
    the engine's snapshot bridge) ever looks at them.  The moment a
    result-path module branches on a metrics value - "skip the cache
    when the hit rate is low", "rechunk when p99 regresses" - results
    become a function of wall-clock timing, and the telemetry-on and
    telemetry-off fingerprints diverge.  That failure is dynamic-test
    resistant (it needs the adaptive branch to actually fire), so it is
    enforced statically instead.

    In modules under :data:`RESULT_PATH_PREFIXES` the rule flags:

    * any import of ``repro.obs.exporters`` (the read/format layer has
      no business inside a result path), and
    * calls to registry/snapshot *read* methods (``snapshot``,
      ``merge_snapshot``, ``counter_value``, ``percentile``, ...) in
      modules that import ``repro.obs`` - the import gate keeps the
      method-name match from firing on unrelated objects.

    Modules in :data:`TELEMETRY_BRIDGE_MODULES` are exempt: they exist
    to snapshot worker registries for the merge, and run strictly after
    the partial results they travel with are sealed.
    """

    id = "C206"
    name = "telemetry-read-in-result-path"
    summary = "result-path module reads telemetry state back"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not any(ctx.path.startswith(prefix) for prefix in RESULT_PATH_PREFIXES):
            return
        if ctx.path in TELEMETRY_BRIDGE_MODULES:
            return
        imports_obs = any(
            dotted == "repro.obs" or dotted.startswith("repro.obs.")
            for dotted in ctx.aliases.values()
        )
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                for dotted in self._imported_modules(node):
                    if dotted == "repro.obs.exporters" or dotted.startswith(
                        "repro.obs.exporters."
                    ):
                        yield _finding(
                            ctx,
                            node,
                            self,
                            "repro.obs.exporters imported in a result-path "
                            "module; exporting/reading telemetry belongs in "
                            "the CLI layer, not where results are computed",
                        )
            elif (
                imports_obs
                and isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _TELEMETRY_READ_METHODS
            ):
                yield _finding(
                    ctx,
                    node,
                    self,
                    f"telemetry read '.{node.func.attr}(...)' in a "
                    "result-path module; hot paths may record metrics but "
                    "never read them back (results must not depend on "
                    "timing) - route reads through the CLI layer or a "
                    "TELEMETRY_BRIDGE_MODULES entry",
                )

    @staticmethod
    def _imported_modules(node: ast.AST) -> Iterator[str]:
        if isinstance(node, ast.Import):
            for item in node.names:
                yield item.name
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for item in node.names:
                yield node.module
                yield f"{node.module}.{item.name}"


CONTRACT_RULES = (
    MechanismBatchGuardRule,
    KernelSurfaceRule,
    EngineConfigSignatureRule,
    ScenarioSeedRule,
    KernelCacheInvalidationRule,
    TelemetryReadRule,
)
