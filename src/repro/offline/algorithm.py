"""The offline optimal mixed vector clock algorithm (Section III).

Pipeline, exactly as the paper describes it:

1. build the thread-object bipartite graph of the computation
   (Section III-A);
2. compute a maximum matching with Hopcroft-Karp (Section III-B);
3. apply the König-Egerváry construction (Algorithm 1) to turn the matching
   into a minimum vertex cover;
4. the cover's vertices are the components of the mixed vector clock, which
   is optimal in size (Theorem 3);
5. optionally, timestamp the computation with that clock (Section III-C).

:class:`OfflineResult` keeps every intermediate artefact so that examples,
tests and the experiment harness can inspect them, and
:func:`optimal_clock_size` provides the cheap "just give me the number"
entry point the benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Tuple

from repro.computation.trace import Computation
from repro.core.components import ClockComponents
from repro.core.timestamping import TimestampedComputation, VectorClockProtocol
from repro.graph.bipartite import BipartiteGraph, Edge, Vertex
from repro.graph.incremental import incremental_optimum_trajectory
from repro.graph.matching import Matching, maximum_matching
from repro.graph.vertex_cover import konig_vertex_cover, validate_vertex_cover


@dataclass(frozen=True)
class OfflineResult:
    """Everything the offline algorithm produced for one computation/graph.

    Attributes
    ----------
    graph:
        The thread-object bipartite graph the algorithm ran on.
    matching:
        The maximum matching found (its size equals the optimal clock size,
        by König-Egerváry).
    cover:
        The minimum vertex cover - the mixed clock's components as raw
        vertices.
    components:
        The same cover packaged as :class:`ClockComponents`, ready to
        instantiate a protocol.
    """

    graph: BipartiteGraph
    matching: Matching
    cover: FrozenSet[Vertex]
    components: ClockComponents

    @property
    def clock_size(self) -> int:
        """Size of the optimal mixed vector clock."""
        return self.components.size

    @property
    def thread_component_count(self) -> int:
        return len(self.components.thread_components)

    @property
    def object_component_count(self) -> int:
        return len(self.components.object_components)

    def protocol(self) -> VectorClockProtocol:
        """A fresh protocol over the optimal components."""
        return VectorClockProtocol(self.components)

    def savings_vs_naive(self) -> int:
        """How many components the mixed clock saves over ``min(n, m)``."""
        naive = min(self.graph.num_threads, self.graph.num_objects)
        return naive - self.clock_size

    def summary(self) -> dict:
        """Flat dict used by the experiment harness and reports."""
        return {
            "threads": self.graph.num_threads,
            "objects": self.graph.num_objects,
            "edges": self.graph.num_edges,
            "density": self.graph.density(),
            "matching_size": len(self.matching),
            "clock_size": self.clock_size,
            "thread_components": self.thread_component_count,
            "object_components": self.object_component_count,
            "naive_size": min(self.graph.num_threads, self.graph.num_objects),
        }


def optimal_components_for_graph(
    graph: BipartiteGraph, algorithm: str = "hopcroft-karp"
) -> OfflineResult:
    """Run the offline algorithm on an already-built bipartite graph.

    This is the entry point the evaluation uses (the paper's experiments
    operate directly on random bipartite graphs).
    """
    matching = maximum_matching(graph, algorithm=algorithm)
    cover = konig_vertex_cover(graph, matching)
    validate_vertex_cover(graph, cover)
    components = ClockComponents.from_cover(graph, cover)
    return OfflineResult(
        graph=graph, matching=matching, cover=cover, components=components
    )


def optimal_components_for_computation(
    computation: Computation, algorithm: str = "hopcroft-karp"
) -> OfflineResult:
    """Run the offline algorithm on a computation (builds its graph first)."""
    return optimal_components_for_graph(
        computation.bipartite_graph(), algorithm=algorithm
    )


def timestamp_offline(
    computation: Computation, algorithm: str = "hopcroft-karp"
) -> TimestampedComputation:
    """End-to-end offline pipeline: optimal components, then timestamping."""
    result = optimal_components_for_computation(computation, algorithm=algorithm)
    return result.protocol().timestamp_computation(computation)


def optimal_clock_size(graph: BipartiteGraph, algorithm: str = "hopcroft-karp") -> int:
    """The optimal mixed clock size for ``graph``.

    Equal to the maximum matching size (König-Egerváry); computing the
    matching alone is enough, so this skips the cover construction.
    """
    return len(maximum_matching(graph, algorithm=algorithm))


def offline_optimum_trajectory(pairs: Iterable[Edge]) -> Tuple[int, ...]:
    """Per-event offline-optimum clock sizes along a reveal order.

    ``result[i]`` is the optimal mixed clock size (minimum vertex cover =
    maximum matching, Theorem 3) of the graph formed by ``pairs[:i + 1]``.
    Computed with :class:`~repro.graph.incremental.IncrementalMatching`
    in one pass, instead of one from-scratch Hopcroft-Karp per prefix;
    this is what lets the online evaluation plot a *true* optimum
    trajectory rather than a constant final-value line.
    """
    return incremental_optimum_trajectory(pairs)
