"""The paper's offline optimal algorithm (Section III)."""

from repro.offline.algorithm import (
    OfflineResult,
    offline_optimum_trajectory,
    optimal_clock_size,
    optimal_components_for_computation,
    optimal_components_for_graph,
    timestamp_offline,
)

__all__ = [
    "OfflineResult",
    "offline_optimum_trajectory",
    "optimal_clock_size",
    "optimal_components_for_computation",
    "optimal_components_for_graph",
    "timestamp_offline",
]
