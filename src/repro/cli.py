"""Command-line interface.

The package installs no console script (it is primarily a library), but the
module runner exposes the common workflows so that traces can be analysed
and the paper's sweeps regenerated without writing any Python:

```
python -m repro demo                         # the paper's running example
python -m repro generate --workload producer-consumer --out trace.json
python -m repro analyze trace.json           # optimal mixed clock for a trace
python -m repro sweep density --scenario nonuniform --trials 3
python -m repro sweep nodes --density 0.05
python -m repro sweep ratio --window 200     # burn-in vs steady-state ratios
python -m repro sweep ratio --jobs 4         # same numbers, four workers
python -m repro sweep ratio --epoch 200 \
    --mechanisms popularity,adaptive-popularity   # adaptive vs append-only
python -m repro engine run --scenario thread-churn --jobs 4 \
    --events 1000000 --checkpoint-dir ckpt   # sharded, resumable runs
python -m repro engine run --scenario thread-churn --workers 2 \
    --events 1000000                         # pooled: one stream pass/worker
python -m repro engine run --scenario thread-churn --epoch 5000 \
    --mechanisms popularity,adaptive-popularity   # lifecycle-aware shards
python -m repro engine run --scenario thread-churn --metrics metrics.json \
    --trace trace.json                       # telemetry: metrics + Chrome trace
python -m repro engine inspect ckpt          # checkpoint progress summary
python -m repro engine clean ckpt            # prune unreferenced shard files
```

Every command prints plain text to stdout; ``analyze`` and ``generate``
read/write the JSON trace format of :mod:`repro.computation.serialization`.

Workload and scenario choices are not hard-coded here: they are derived
from the :mod:`~repro.computation.registry`, so a scenario registered
anywhere in the package shows up in ``--workload`` / ``--scenario``
choices, help text and error messages without touching this module.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis import (
    density_sweep,
    format_ratio_sweep,
    format_sweep,
    node_sweep,
    ratio_sweep,
    sweep_crossovers,
)
from repro.computation import GRAPH, HappenedBefore, REGISTRY, STREAM, TRACE
from repro.computation.serialization import dump_computation, load_computation
from repro.computation.workloads import paper_example_trace
from repro.core.kernel import NUMPY_BACKEND, PYTHON_BACKEND
from repro.core.timestamping import ROTATION_STRATEGIES
from repro.engine import EngineConfig, run_engine
from repro.engine.runner import PIPELINES as ENGINE_PIPELINES
from repro.engine.sharding import STRATEGIES as ENGINE_STRATEGIES

#: Kernel backend choices offered by the CLI.  Both names are always
#: *offered* (so help text is stable); selecting ``numpy`` without numpy
#: installed fails with a clean gate error from the kernel layer.
KERNEL_BACKENDS = (PYTHON_BACKEND, NUMPY_BACKEND)
from repro.exceptions import ReproError
from repro.lint.cli import add_lint_arguments, cmd_lint
from repro.obs import MetricsRegistry, install as obs_install
from repro.offline import optimal_components_for_computation

#: Trace workloads by name, derived from the scenario registry (kept as a
#: module attribute because it is the CLI's public lookup surface; the
#: registry remains the single source of truth).
WORKLOADS = {
    scenario.name: scenario.factory for scenario in REGISTRY.scenarios(TRACE)
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimal mixed vector clocks for multithreaded systems "
        "(reproduction of Zheng & Garg, ICDCS 2019).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("demo", help="walk through the paper's running example")

    generate = subparsers.add_parser(
        "generate",
        help="generate a workload trace as JSON",
        description="Registered trace workloads:\n" + REGISTRY.describe(TRACE),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    generate.add_argument("--workload", choices=REGISTRY.names(TRACE), default="producer-consumer")
    generate.add_argument("--seed", type=int, default=2019)
    generate.add_argument("--out", required=True, help="output JSON path")

    analyze = subparsers.add_parser("analyze", help="compute the optimal mixed clock for a trace")
    analyze.add_argument("trace", help="JSON trace produced by 'generate' (or your own tooling)")
    analyze.add_argument(
        "--check",
        action="store_true",
        help="verify the produced timestamps against the happened-before oracle "
        "(quadratic in the number of events; intended for small traces)",
    )

    sweep = subparsers.add_parser(
        "sweep",
        help="regenerate one of the paper's sweeps, or the streaming ratio sweep",
        description=(
            "Axes 'density' and 'nodes' regenerate the paper's Figs. 4-7 on a\n"
            "registered graph family; axis 'ratio' runs the streaming burn-in\n"
            "vs steady-state competitive-ratio grid over every registered\n"
            "stream scenario.\n\n"
            "Registered graph scenarios:\n" + REGISTRY.describe(GRAPH) + "\n\n"
            "Registered stream scenarios:\n" + REGISTRY.describe(STREAM)
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sweep.add_argument("axis", choices=["density", "nodes", "ratio"])
    sweep.add_argument(
        "--scenario",
        choices=REGISTRY.names(GRAPH) + REGISTRY.names(STREAM),
        default=None,
        help="graph scenario for density/nodes sweeps (default: uniform); "
        "stream scenario for the ratio sweep (default: all of them)",
    )
    sweep.add_argument(
        "--trials", type=int, default=3)
    sweep.add_argument(
        "--nodes", type=int, default=None,
        help="nodes per side (density sweep default: 50; ratio sweep default: 20 and 40)",
    )
    sweep.add_argument(
        "--density", type=float, default=None,
        help="graph density (nodes sweep default: 0.05; ratio sweep default: 0.05 and 0.2)",
    )
    sweep.add_argument("--seed", type=int, default=2019)
    sweep.add_argument(
        "--offline", action="store_true", help="include the offline optimum series (Figs. 6-7)"
    )
    sweep.add_argument(
        "--window", type=int, default=200,
        help="sliding-window length for insert-only stream scenarios (ratio sweep)",
    )
    sweep.add_argument(
        "--burn-in", type=int, default=50, dest="burn_in",
        help="events counted as burn-in (ratio sweep)",
    )
    sweep.add_argument(
        "--tail", type=int, default=50,
        help="trailing events counted as steady state (ratio sweep)",
    )
    sweep.add_argument(
        "--events", type=int, default=None,
        help="insert events per trial (ratio sweep; default scales with the window)",
    )
    sweep.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the ratio sweep's independent trials "
        "(results are identical for every value)",
    )
    sweep.add_argument(
        "--epoch", type=int, default=None,
        help="deliver an epoch tick to every mechanism after this many "
        "inserts (ratio sweep; window-aware mechanisms restructure their "
        "clocks at epoch boundaries)",
    )
    sweep.add_argument(
        "--mechanisms", default=None,
        help="comma-separated registered mechanism labels for the ratio "
        "sweep (e.g. popularity,adaptive-popularity); default: the "
        "paper's three",
    )
    sweep.add_argument(
        "--batch", type=int, default=None, dest="batch_size", metavar="N",
        help="consume each ratio-sweep trial through the chunked pipeline "
        "(observe_batch on runs of up to N inserts); results are identical "
        "to the per-event default",
    )
    sweep.add_argument(
        "--backend", choices=list(KERNEL_BACKENDS), default=None,
        help="kernel backend pinned (and restored after) in every "
        "ratio-sweep worker; validated up front.  Pinning also adds a "
        "dense-stamp leg per trial - the stream is re-driven through a "
        "LifecycleClockDriver minting a timestamp per insert - so the "
        "selected backend does real timestamping work (numpy stays "
        "optional and gated; sweep numbers are identical for every choice)",
    )
    sweep.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write the ratio sweep's telemetry (spans, counters) as a "
        "metrics JSON document; telemetry never changes a sweep number",
    )

    engine = subparsers.add_parser(
        "engine",
        help="sharded, resumable streaming runs (million-event scale)",
        description=(
            "The sharded execution engine partitions a stream scenario into\n"
            "thread-affine shards, runs mechanisms + the dynamic offline\n"
            "optimum per shard (serially or on a process pool), and merges\n"
            "partial metrics deterministically: for a fixed configuration the\n"
            "printed result - including its fingerprint - is bit-identical\n"
            "across --jobs values and interrupt/resume cycles.\n\n"
            "Registered stream scenarios:\n" + REGISTRY.describe(STREAM)
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    engine_sub = engine.add_subparsers(dest="engine_command", required=True)
    engine_run = engine_sub.add_parser(
        "run", help="run one sharded streaming scenario and print merged metrics"
    )
    engine_run.add_argument(
        "--scenario", choices=REGISTRY.names(STREAM), required=True
    )
    engine_run.add_argument(
        "--jobs", type=int, default=1,
        help="one-task-per-shard worker processes (never changes the "
        "numbers, only the wall-clock); see --workers for the pooled mode",
    )
    engine_run.add_argument(
        "--workers", type=int, default=None,
        help="worker-pool size: shards are dealt into this many contiguous "
        "groups and each pool worker generates the stream ONCE for all "
        "its shards (mutually exclusive with --jobs > 1; like --jobs it "
        "never changes the numbers)",
    )
    engine_run.add_argument(
        "--shards", type=int, default=8,
        help="logical shards; part of the run's identity, unlike --jobs",
    )
    engine_run.add_argument(
        "--events", type=int, default=20_000, help="insert events in the base stream"
    )
    engine_run.add_argument(
        "--nodes", type=int, default=50, help="threads and objects per side"
    )
    engine_run.add_argument("--density", type=float, default=0.1)
    engine_run.add_argument("--seed", type=int, default=2019)
    engine_run.add_argument(
        "--window", type=int, default=None,
        help="per-shard sliding window for insert-only scenarios "
        "(default: append-only)",
    )
    engine_run.add_argument(
        "--epoch", type=int, default=None,
        help="per-shard epoch boundary every this many of the shard's "
        "inserts (adaptive mechanisms retire/rebuild components at "
        "boundaries; part of the run's identity, like --shards)",
    )
    engine_run.add_argument(
        "--skew-warn", type=float, default=4.0, dest="skew_warn",
        help="warn on stderr when max/min shard insert load exceeds this "
        "ratio (0 disables the check)",
    )
    engine_run.add_argument(
        "--chunk-size", type=int, default=10_000, dest="chunk_size",
        help="inserts per chunk; chunk boundaries are the checkpoint points",
    )
    engine_run.add_argument(
        "--checkpoint-dir", default=None, dest="checkpoint_dir",
        help="directory for chunk-boundary checkpoints; re-running with the "
        "same configuration resumes from the last completed chunk",
    )
    engine_run.add_argument(
        "--strategy", choices=list(ENGINE_STRATEGIES), default="hash",
        help="shard routing: stateless hash of the thread's repr, or "
        "round-robin by first appearance",
    )
    engine_run.add_argument(
        "--mechanisms", default="naive,random,popularity",
        help="comma-separated mechanism labels (registered names)",
    )
    engine_run.add_argument(
        "--stride", type=int, default=0, dest="stride",
        help="trajectory sampling stride (0 = auto, ~1k samples per run)",
    )
    engine_run.add_argument(
        "--no-offline", action="store_true", dest="no_offline",
        help="skip the dynamic offline optimum (mechanisms only)",
    )
    engine_run.add_argument(
        "--pipeline", choices=list(ENGINE_PIPELINES), default="batched",
        help="event execution pipeline: chunked observe_batch runs "
        "(default) or the classic per-event loop; the fingerprint is "
        "identical for both",
    )
    engine_run.add_argument(
        "--backend", choices=list(KERNEL_BACKENDS), default=None,
        help="kernel backend for the timestamping stage (numpy is gated "
        "on being importable; stamps are bit-identical across backends)",
    )
    engine_run.add_argument(
        "--rotation", choices=list(ROTATION_STRATEGIES), default=None,
        help="epoch-rotation strategy pinned inside every shard task "
        "(delta = project live stamps on pure retirements, replay = "
        "re-stamp the window; default: the process default, normally "
        "delta).  Execution-only - fingerprints are bit-identical across "
        "strategies",
    )
    engine_run.add_argument(
        "--timestamps", action="store_true",
        help="mint real per-event timestamps per mechanism and carry a "
        "per-label stamp digest under the fingerprint (append-only "
        "mechanisms only)",
    )
    engine_run.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write run telemetry (kernel cache hit rates, per-shard "
        "loads, epoch-rotation latency percentiles, spans) as a metrics "
        "JSON document; the fingerprint is bit-identical with and "
        "without telemetry",
    )
    engine_run.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write run spans in Chrome trace-event format "
        "(chrome://tracing / Perfetto), one lane per shard worker",
    )
    engine_run.add_argument(
        "--metrics-log", default=None, dest="metrics_log", metavar="PATH",
        help="write run telemetry as a JSONL event log (one metric or "
        "span per line)",
    )
    engine_inspect = engine_sub.add_parser(
        "inspect",
        help="summarise a checkpoint directory's manifest and shard progress",
    )
    engine_inspect.add_argument(
        "checkpoint_dir", help="directory written by 'engine run --checkpoint-dir'"
    )
    engine_clean = engine_sub.add_parser(
        "clean",
        help="prune checkpoint files the manifest does not reference "
        "(out-of-range shard ids, orphaned temp files)",
    )
    engine_clean.add_argument(
        "checkpoint_dir", help="directory written by 'engine run --checkpoint-dir'"
    )
    engine_clean.add_argument(
        "--max-age", type=float, default=None, dest="max_age", metavar="SECONDS",
        help="additionally prune referenced shard checkpoints older than "
        "this many seconds (safe: a pruned shard is simply recomputed on "
        "the next resume)",
    )

    lint = subparsers.add_parser(
        "lint",
        help="static determinism & contract checks (AST-based, stdlib-only)",
        description=(
            "Statically enforce the repo's bit-identity invariants: "
            "determinism rules (D1xx: hash-order set iteration, builtin "
            "hash(), global random state, wall-clock reads, unsorted "
            "directory listings, completion-order collection) and contract "
            "rules (C2xx: observe_batch fallback guard, kernel backend "
            "surface, EngineConfig signature membership, scenario seed "
            "threading).  Exit 0 when clean or fully baselined, 1 on "
            "active findings."
        ),
    )
    add_lint_arguments(lint)
    return parser


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------
def _cmd_demo(_: argparse.Namespace) -> int:
    trace = paper_example_trace()
    result = optimal_components_for_computation(trace)
    stamped = result.protocol().timestamp_computation(trace)
    print("Paper running example (Fig. 1):")
    for event in trace:
        print(f"  {event.describe()}")
    print("\nOptimal mixed clock components:", sorted(map(str, result.cover)))
    print(f"Clock size {result.clock_size} vs {trace.num_threads} threads "
          f"/ {trace.num_objects} objects")
    print("\nTimestamps (Fig. 3):")
    print(stamped.format_table())
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    # Resolved through the registry (not the WORKLOADS snapshot) so trace
    # scenarios registered after this module was imported still generate;
    # an unknown name surfaces as a ScenarioError -> clean CLI error.
    trace = REGISTRY.get(args.workload, kind=TRACE).build(args.seed)
    dump_computation(trace, args.out)
    print(f"wrote {trace.num_events} events "
          f"({trace.num_threads} threads, {trace.num_objects} objects) to {args.out}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    trace = load_computation(args.trace)
    result = optimal_components_for_computation(trace)
    summary = result.summary()
    print(f"trace: {args.trace}")
    print(f"  events:            {trace.num_events}")
    print(f"  threads:           {summary['threads']}")
    print(f"  objects:           {summary['objects']}")
    print(f"  graph density:     {summary['density']:.4f}")
    print(f"  optimal clock:     {summary['clock_size']} components "
          f"({summary['thread_components']} threads + {summary['object_components']} objects)")
    print(f"  thread-based size: {summary['threads']}")
    print(f"  object-based size: {summary['objects']}")
    print(f"  saving vs min(n,m): {summary['naive_size'] - summary['clock_size']}")
    print("  components:", ", ".join(sorted(map(str, result.cover))) or "(none)")
    if args.check:
        stamped = result.protocol().timestamp_computation(trace)
        oracle = HappenedBefore(trace)
        mismatches = sum(
            1
            for a in trace
            for b in trace
            if a != b and stamped.happened_before(a, b) != oracle.happened_before(a, b)
        )
        print(f"  oracle check:      {mismatches} mismatching pairs "
              f"out of {trace.num_events * (trace.num_events - 1)}")
        if mismatches:
            return 1
    return 0


def _cmd_engine(args: argparse.Namespace) -> int:
    if args.engine_command == "inspect":
        return _cmd_engine_inspect(args)
    if args.engine_command == "clean":
        return _cmd_engine_clean(args)
    config = EngineConfig(
        scenario=args.scenario,
        num_threads=args.nodes,
        num_objects=args.nodes,
        density=args.density,
        num_events=args.events,
        seed=args.seed,
        num_shards=args.shards,
        chunk_size=args.chunk_size,
        window=args.window,
        epoch_every=args.epoch,
        mechanisms=tuple(
            label.strip() for label in args.mechanisms.split(",") if label.strip()
        ),
        include_offline=not args.no_offline,
        strategy=args.strategy,
        checkpoint_dir=args.checkpoint_dir,
        trajectory_stride=args.stride,
        pipeline=args.pipeline,
        backend=args.backend,
        timestamps=args.timestamps,
        workers=args.workers,
        rotation=args.rotation,
    )
    # One timing mechanism for the whole CLI: a telemetry registry is
    # always installed around the run (its disabled/enabled state never
    # changes a number - the fingerprint identity test pins that), and
    # the elapsed line reads the top-level span instead of a second
    # ad-hoc perf_counter pair.
    registry = MetricsRegistry(origin="engine")
    previous = obs_install(registry)
    schedule = (
        f"workers={args.workers}" if args.workers is not None
        else f"jobs={args.jobs}"
    )
    try:
        with registry.span(
            "cli.engine_run", jobs=args.jobs, scenario=args.scenario
        ) as timer:
            result = run_engine(config, jobs=args.jobs)
    finally:
        obs_install(previous)
    elapsed = timer.duration
    # The report is a pure function of the configuration (the bit-identity
    # contract); wall-clock facts go to stderr so stdout stays comparable
    # across --jobs values.
    print(result.format())
    if args.skew_warn > 0:
        skew = result.shard_skew()
        if skew > args.skew_warn:
            loads = result.shard_loads()
            print(
                f"warning: shard load skew {skew:.1f}x exceeds "
                f"{args.skew_warn:.1f}x (insert counts "
                f"{min(loads.values())}..{max(loads.values())} across "
                f"{len(loads)} shards); consider --strategy round-robin "
                f"or fewer shards",
                file=sys.stderr,
            )
    events = result.inserts + result.expires
    if config.checkpoint_dir:
        # Resumed runs reload completed chunks from checkpoints, so the
        # merged event total over this invocation's elapsed time is not a
        # processing rate; report only what was measured.
        print(
            f"merged {events} events in {elapsed:.2f}s ({schedule}; "
            f"checkpointed chunks reload without reprocessing, so no "
            f"events/s is reported)",
            file=sys.stderr,
        )
    else:
        rate = events / elapsed if elapsed > 0 else float("inf")
        print(
            f"processed {events} events in {elapsed:.2f}s "
            f"({rate:,.0f} events/s, {schedule})",
            file=sys.stderr,
        )
    if args.metrics or args.trace or args.metrics_log:
        from repro.obs import exporters

        if args.metrics:
            path = exporters.write_metrics_json(registry, args.metrics)
            print(f"metrics written to {path}", file=sys.stderr)
        if args.metrics_log:
            path = exporters.write_spans_jsonl(registry, args.metrics_log)
            print(f"metrics log written to {path}", file=sys.stderr)
        if args.trace:
            path = exporters.write_chrome_trace(registry, args.trace)
            print(f"chrome trace written to {path}", file=sys.stderr)
        print(exporters.format_summary(registry), file=sys.stderr)
    return 0


def _cmd_engine_inspect(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.engine import EngineCheckpointManager

    manager = EngineCheckpointManager.open(args.checkpoint_dir)
    signature = manager.signature
    print(f"checkpoint directory: {manager.directory}")
    for key in sorted(signature):
        print(f"  {key}: {signature[key]}")
    rows = manager.describe()
    # Per-shard progress and checkpoint age as obs gauges.  The
    # registry's wall anchor is the one sanctioned wall-clock read (the
    # D104 carve-out lives inside repro.obs), so this command never
    # calls time.time() itself; the age column below is derived from the
    # gauges it just set.
    registry = MetricsRegistry(origin="inspect")
    files = manager.shard_files()
    for row in rows:
        shard = row["shard"]
        registry.gauge(f"checkpoint.shard[{shard}].chunks", row["chunks_done"])
        registry.gauge(f"checkpoint.shard[{shard}].inserts", row["inserts_done"])
        registry.gauge(f"checkpoint.shard[{shard}].bytes", row["bytes"])
        path = files.get(shard)
        if path is not None:
            registry.gauge(
                f"checkpoint.shard[{shard}].age_s",
                max(0.0, registry.wall_epoch - path.stat().st_mtime),
            )
    for row in rows:
        age = registry.gauge_value(f"checkpoint.shard[{row['shard']}].age_s", -1.0)
        row["age_s"] = f"{age:.1f}" if age >= 0 else "-"
    print()
    print(format_table(rows) if rows else "(no shards recorded)")
    total_inserts = sum(row["inserts_done"] for row in rows)
    target = signature.get("num_events")
    if isinstance(target, int) and target > 0:
        print(
            f"\nprogress: {total_inserts}/{target} inserts checkpointed "
            f"({100.0 * total_inserts / target:.1f}%)"
        )
    return 0


def _cmd_engine_clean(args: argparse.Namespace) -> int:
    from repro.engine import EngineCheckpointManager

    manager = EngineCheckpointManager.open(args.checkpoint_dir)
    removed = manager.prune(max_age=args.max_age)
    if removed:
        for path in removed:
            print(f"removed {path}")
    what = (
        "unreferenced/stale" if args.max_age is not None else "unreferenced"
    )
    print(f"pruned {len(removed)} {what} file(s) from {manager.directory}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.axis == "ratio":
        labels = None
        if args.mechanisms:
            labels = [
                label.strip()
                for label in args.mechanisms.split(",")
                if label.strip()
            ]
        # Same unified timing as `engine run`: one installed registry,
        # one top-level span, elapsed read back off the span.
        registry = MetricsRegistry(origin="sweep")
        previous = obs_install(registry)
        try:
            with registry.span("cli.sweep_ratio", jobs=args.jobs) as timer:
                result = ratio_sweep(
                    scenarios=[args.scenario] if args.scenario else None,
                    densities=(
                        [args.density] if args.density is not None else (0.05, 0.2)
                    ),
                    sizes=[args.nodes] if args.nodes is not None else (20, 40),
                    trials=args.trials,
                    window=args.window,
                    burn_in=args.burn_in,
                    tail=args.tail,
                    num_events=args.events,
                    base_seed=args.seed,
                    jobs=args.jobs,
                    epoch=args.epoch,
                    labels=labels,
                    batch_size=args.batch_size,
                    backend=args.backend,
                )
        finally:
            obs_install(previous)
        print(format_ratio_sweep(result))
        print(
            f"ratio sweep completed in {timer.duration:.2f}s "
            f"(jobs={args.jobs})",
            file=sys.stderr,
        )
        if args.metrics:
            from repro.obs import exporters

            path = exporters.write_metrics_json(registry, args.metrics)
            print(f"metrics written to {path}", file=sys.stderr)
            print(exporters.format_summary(registry), file=sys.stderr)
        return 0
    # A stream scenario passed to a graph-family axis fails the registry's
    # kind-constrained lookup inside the sweep, which surfaces as a clean
    # 'error: unknown graph scenario' exit rather than a silent ignore.
    scenario = args.scenario or "uniform"
    if args.axis == "density":
        result = density_sweep(
            [0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5],
            num_threads=args.nodes if args.nodes is not None else 50,
            num_objects=args.nodes if args.nodes is not None else 50,
            scenario=scenario,
            trials=args.trials,
            base_seed=args.seed,
            include_offline=args.offline,
        )
    else:
        result = node_sweep(
            [10, 30, 50, 70, 90, 110],
            density=args.density if args.density is not None else 0.05,
            scenario=scenario,
            trials=args.trials,
            base_seed=args.seed,
            include_offline=args.offline,
        )
    print(format_sweep(result))
    print("\ncrossover vs flat Naive (=n) line:",
          sweep_crossovers(result, baseline="thread_clock"))
    return 0


COMMANDS = {
    "demo": _cmd_demo,
    "generate": _cmd_generate,
    "analyze": _cmd_analyze,
    "sweep": _cmd_sweep,
    "engine": _cmd_engine,
    "lint": cmd_lint,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
