"""Command-line interface.

The package installs no console script (it is primarily a library), but the
module runner exposes the common workflows so that traces can be analysed
and the paper's sweeps regenerated without writing any Python:

```
python -m repro demo                         # the paper's running example
python -m repro generate --workload producer-consumer --out trace.json
python -m repro analyze trace.json           # optimal mixed clock for a trace
python -m repro sweep density --scenario nonuniform --trials 3
python -m repro sweep nodes --density 0.05
```

Every command prints plain text to stdout; ``analyze`` and ``generate``
read/write the JSON trace format of :mod:`repro.computation.serialization`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis import density_sweep, format_sweep, node_sweep, sweep_crossovers
from repro.computation import (
    Computation,
    HappenedBefore,
    lock_hierarchy_trace,
    paper_example_trace,
    pipeline_trace,
    producer_consumer_trace,
    random_trace,
    work_stealing_trace,
)
from repro.computation.serialization import dump_computation, load_computation
from repro.exceptions import ReproError
from repro.offline import optimal_components_for_computation

WORKLOADS = {
    "paper-example": lambda seed: paper_example_trace(),
    "producer-consumer": lambda seed: producer_consumer_trace(seed=seed),
    "work-stealing": lambda seed: work_stealing_trace(seed=seed),
    "lock-hierarchy": lambda seed: lock_hierarchy_trace(seed=seed),
    "pipeline": lambda seed: pipeline_trace(seed=seed),
    "random": lambda seed: random_trace(10, 20, 400, locality=0.5, seed=seed),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimal mixed vector clocks for multithreaded systems "
        "(reproduction of Zheng & Garg, ICDCS 2019).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("demo", help="walk through the paper's running example")

    generate = subparsers.add_parser("generate", help="generate a workload trace as JSON")
    generate.add_argument("--workload", choices=sorted(WORKLOADS), default="producer-consumer")
    generate.add_argument("--seed", type=int, default=2019)
    generate.add_argument("--out", required=True, help="output JSON path")

    analyze = subparsers.add_parser("analyze", help="compute the optimal mixed clock for a trace")
    analyze.add_argument("trace", help="JSON trace produced by 'generate' (or your own tooling)")
    analyze.add_argument(
        "--check",
        action="store_true",
        help="verify the produced timestamps against the happened-before oracle "
        "(quadratic in the number of events; intended for small traces)",
    )

    sweep = subparsers.add_parser("sweep", help="regenerate one of the paper's sweeps")
    sweep.add_argument("axis", choices=["density", "nodes"])
    sweep.add_argument("--scenario", choices=["uniform", "nonuniform"], default="uniform")
    sweep.add_argument("--trials", type=int, default=3)
    sweep.add_argument("--nodes", type=int, default=50, help="nodes per side (density sweep)")
    sweep.add_argument("--density", type=float, default=0.05, help="graph density (nodes sweep)")
    sweep.add_argument("--seed", type=int, default=2019)
    sweep.add_argument(
        "--offline", action="store_true", help="include the offline optimum series (Figs. 6-7)"
    )
    return parser


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------
def _cmd_demo(_: argparse.Namespace) -> int:
    trace = paper_example_trace()
    result = optimal_components_for_computation(trace)
    stamped = result.protocol().timestamp_computation(trace)
    print("Paper running example (Fig. 1):")
    for event in trace:
        print(f"  {event.describe()}")
    print("\nOptimal mixed clock components:", sorted(map(str, result.cover)))
    print(f"Clock size {result.clock_size} vs {trace.num_threads} threads "
          f"/ {trace.num_objects} objects")
    print("\nTimestamps (Fig. 3):")
    print(stamped.format_table())
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    trace = WORKLOADS[args.workload](args.seed)
    dump_computation(trace, args.out)
    print(f"wrote {trace.num_events} events "
          f"({trace.num_threads} threads, {trace.num_objects} objects) to {args.out}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    trace = load_computation(args.trace)
    result = optimal_components_for_computation(trace)
    summary = result.summary()
    print(f"trace: {args.trace}")
    print(f"  events:            {trace.num_events}")
    print(f"  threads:           {summary['threads']}")
    print(f"  objects:           {summary['objects']}")
    print(f"  graph density:     {summary['density']:.4f}")
    print(f"  optimal clock:     {summary['clock_size']} components "
          f"({summary['thread_components']} threads + {summary['object_components']} objects)")
    print(f"  thread-based size: {summary['threads']}")
    print(f"  object-based size: {summary['objects']}")
    print(f"  saving vs min(n,m): {summary['naive_size'] - summary['clock_size']}")
    print("  components:", ", ".join(sorted(map(str, result.cover))) or "(none)")
    if args.check:
        stamped = result.protocol().timestamp_computation(trace)
        oracle = HappenedBefore(trace)
        mismatches = sum(
            1
            for a in trace
            for b in trace
            if a != b and stamped.happened_before(a, b) != oracle.happened_before(a, b)
        )
        print(f"  oracle check:      {mismatches} mismatching pairs "
              f"out of {trace.num_events * (trace.num_events - 1)}")
        if mismatches:
            return 1
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.axis == "density":
        result = density_sweep(
            [0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5],
            num_threads=args.nodes,
            num_objects=args.nodes,
            scenario=args.scenario,
            trials=args.trials,
            base_seed=args.seed,
            include_offline=args.offline,
        )
    else:
        result = node_sweep(
            [10, 30, 50, 70, 90, 110],
            density=args.density,
            scenario=args.scenario,
            trials=args.trials,
            base_seed=args.seed,
            include_offline=args.offline,
        )
    print(format_sweep(result))
    print("\ncrossover vs flat Naive (=n) line:",
          sweep_crossovers(result, baseline="thread_clock"))
    return 0


COMMANDS = {
    "demo": _cmd_demo,
    "generate": _cmd_generate,
    "analyze": _cmd_analyze,
    "sweep": _cmd_sweep,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
