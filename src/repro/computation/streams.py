"""Streaming workloads: lazy event streams with churn and optional expiry.

The trace generators in :mod:`repro.computation.workloads` materialise a
fixed computation up front - the right shape for the paper's
figure-reproduction experiments, the wrong shape for the monitoring
setting the streaming engine targets, where events arrive indefinitely
and old events stop mattering.  This module provides that second shape:

* :class:`StreamEvent` - one revealed ``(thread, object)`` pair, tagged
  ``insert`` (the pair was just observed), ``expire`` (a previously
  observed occurrence of the pair fell out of relevance) or ``epoch``
  (a boundary marker carrying no pair at all: lifecycle-aware consumers
  deliver ``end_epoch`` to their mechanisms, everything else skips it);
* :func:`sliding_window` - an adapter that turns any insert-only stream
  into a windowed one by emitting an expire event for each insert that
  leaves the window of the most recent ``window`` events (epoch markers
  pass through untouched - they occupy no window slot);
* :func:`with_epochs` - an adapter that injects an epoch marker after
  every ``every`` inserts of any stream, for scenarios that do not emit
  their own;
* churn-capable generators, registered as ``stream`` scenarios:
  :func:`thread_churn_stream` (threads arrive and depart, departures
  expire their live edges), :func:`hot_object_drift_stream` (the popular
  object set drifts over time) and :func:`phase_change_stream` (the
  workload alternates between locality regimes, emitting an epoch marker
  at every phase boundary - the natural rotation point for the adaptive
  mechanisms).

Every generator is a true generator function: events are produced one at
a time and nothing proportional to ``num_events`` is ever materialised,
so the online simulator and the ratio sweeps can run mechanisms and the
dynamic offline optimum in a single pass over arbitrarily long streams.
Expiry bookkeeping is multiset-consistent by construction: a generator
never emits more expires for an edge than it has emitted inserts, which
is the contract :class:`~repro.graph.incremental.DynamicMatching`
enforces.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.computation.registry import STREAM, register_scenario
from repro.exceptions import ComputationError
from repro.graph.bipartite import Vertex
from repro.graph.generators import SeedLike, _rng, object_names, thread_names

#: Event kinds.
INSERT = "insert"
EXPIRE = "expire"
EPOCH = "epoch"


@dataclass(frozen=True)
class StreamEvent:
    """One event of a streaming workload.

    ``insert`` events reveal one occurrence of the edge
    ``(thread, obj)``; ``expire`` events retract one previously revealed
    occurrence; ``epoch`` events mark a boundary at which window-aware
    mechanisms may restructure their component set (they carry no pair -
    build them with :func:`epoch_marker`).  Append-only online mechanisms
    only consume inserts (their clocks never shrink); the dynamic offline
    optimum consumes inserts and expires; lifecycle-aware drivers deliver
    all three.
    """

    thread: Optional[Vertex]
    obj: Optional[Vertex]
    kind: str = INSERT

    @property
    def is_insert(self) -> bool:
        return self.kind == INSERT

    @property
    def is_expire(self) -> bool:
        return self.kind == EXPIRE

    @property
    def is_epoch(self) -> bool:
        return self.kind == EPOCH

    @property
    def pair(self) -> Tuple[Vertex, Vertex]:
        if self.kind == EPOCH:
            raise ComputationError("epoch markers carry no (thread, object) pair")
        return (self.thread, self.obj)


#: The single epoch-boundary marker value (markers carry no payload).
_EPOCH_MARKER = StreamEvent(None, None, EPOCH)


def epoch_marker() -> StreamEvent:
    """The epoch-boundary marker event."""
    return _EPOCH_MARKER


#: What stream consumers accept: explicit events or bare insert pairs.
EventLike = Union[StreamEvent, Tuple[Vertex, Vertex]]


def as_stream_event(item: EventLike) -> StreamEvent:
    """Coerce a bare ``(thread, object)`` pair to an insert event."""
    if isinstance(item, StreamEvent):
        return item
    thread, obj = item
    return StreamEvent(thread, obj)


def insert_events(pairs: Iterable[Tuple[Vertex, Vertex]]) -> Iterator[StreamEvent]:
    """Wrap a lazy pair iterable as an insert-only event stream."""
    for thread, obj in pairs:
        yield StreamEvent(thread, obj)


def sliding_window(events: Iterable[EventLike], window: int) -> Iterator[StreamEvent]:
    """Impose a sliding window of the most recent ``window`` inserts.

    Before each insert that would make the window overflow, the oldest
    windowed insert is re-emitted as an expire event (so consumers see
    ``expire`` strictly before the insert that displaced it, matching
    :func:`~repro.graph.incremental.sliding_window_optimum_trajectory`).

    The input must be insert-only: a stream that already manages its own
    expiry (``expires=True`` scenarios) cannot also be windowed, because
    the two expiry sources would retract the same occurrence twice.
    """
    if window < 1:
        raise ComputationError(f"window must be >= 1, got {window}")
    recent: Deque[StreamEvent] = deque()
    for item in events:
        event = as_stream_event(item)
        if event.is_epoch:
            # Boundaries occupy no window slot; they just pass through.
            yield event
            continue
        if event.is_expire:
            raise ComputationError(
                "sliding_window expects an insert-only stream; streams with "
                "explicit expiry manage their own window"
            )
        if len(recent) == window:
            oldest = recent.popleft()
            yield StreamEvent(oldest.thread, oldest.obj, EXPIRE)
        recent.append(event)
        yield event


def with_epochs(events: Iterable[EventLike], every: int) -> Iterator[StreamEvent]:
    """Inject an epoch marker after every ``every`` inserts.

    The adapter for scenarios that do not emit their own boundaries
    (``epochs=False`` in the registry): expire events and pre-existing
    markers pass through and do not advance the insert counter, so an
    epoch always closes a fixed amount of *revealed* work regardless of
    how much churn rode along.
    """
    if every < 1:
        raise ComputationError(f"every must be >= 1, got {every}")
    inserts = 0
    for item in events:
        event = as_stream_event(item)
        yield event
        if event.is_insert:
            inserts += 1
            if inserts % every == 0:
                yield epoch_marker()


def iter_event_batches(
    events: Iterable[EventLike], max_batch: int = 1024
) -> Iterator[Union[List[StreamEvent], StreamEvent]]:
    """Partition a stream into insert runs and individual lifecycle events.

    Yields, in stream order, either a non-empty ``list`` of consecutive
    insert events (at most ``max_batch`` long) or a bare expire / epoch
    :class:`StreamEvent`.  This is the chunking rule of the batched
    execution pipeline: inserts between two lifecycle ticks form one
    batch handed to ``observe_batch``, while the ticks themselves are
    delivered individually, so window-aware consumers see exactly the
    interleaving the per-event loop would have produced.
    """
    if max_batch < 1:
        raise ComputationError(f"max_batch must be >= 1, got {max_batch}")
    run: List[StreamEvent] = []
    for item in events:
        event = as_stream_event(item)
        if event.kind == INSERT:
            run.append(event)
            if len(run) == max_batch:
                yield run
                run = []
        else:
            if run:
                yield run
                run = []
            yield event
    if run:
        yield run


def _candidate_objects(
    rng, objects: List[str], density: float
) -> Tuple[str, ...]:
    """A per-thread accessible-object subset sized by the density knob.

    Density plays the role it plays for the graph families: the expected
    fraction of the object side a single thread can reach.  At least one
    object is always reachable.
    """
    count = max(1, min(len(objects), int(round(density * len(objects)))))
    return tuple(rng.sample(objects, count))


# ---------------------------------------------------------------------------
# Registered stream scenarios
# ---------------------------------------------------------------------------
@register_scenario(
    "thread-churn",
    kind=STREAM,
    description="threads arrive and depart; a departure expires the thread's live edges",
    expires=True,
)
def thread_churn_stream(
    num_threads: int,
    num_objects: int,
    density: float,
    num_events: int,
    seed: SeedLike = None,
    churn_probability: float = 0.08,
) -> Iterator[StreamEvent]:
    """Thread arrival/departure churn with explicit edge expiry.

    Half the thread population starts active.  Before each insert, with
    probability ``churn_probability / 2`` an inactive thread (re)joins,
    and with the same probability an active thread departs - emitting one
    expire event per live occurrence of each of its edges, the way a
    monitoring agent drops state for a thread that exited.  Inserts pick
    a uniformly random active thread and one of the objects it can reach
    (a density-sized subset sampled at first activation).

    ``num_events`` counts *insert* events; expire events ride along as
    churn happens, so the stream's total length varies with the seed.
    """
    if num_events < 0:
        raise ComputationError("num_events must be non-negative")
    rng = _rng(seed)
    threads = thread_names(num_threads)
    objects = object_names(num_objects)
    active = list(threads[: max(1, num_threads // 2)])
    inactive = list(threads[len(active):])
    reachable: Dict[str, Tuple[str, ...]] = {}
    live: Dict[str, Dict[str, int]] = {}
    emitted = 0
    while emitted < num_events:
        # The roll ranges are disjoint so the two rates stay independent:
        # an arrival roll with an empty inactive pool is a no-op rather
        # than falling through to (and doubling) the departure branch.
        roll = rng.random()
        if roll < churn_probability / 2:
            if inactive:
                active.append(inactive.pop(rng.randrange(len(inactive))))
        elif roll < churn_probability and len(active) > 1:
            departing = active.pop(rng.randrange(len(active)))
            for obj, count in sorted(live.pop(departing, {}).items()):
                for _ in range(count):
                    yield StreamEvent(departing, obj, EXPIRE)
            inactive.append(departing)
        thread = rng.choice(active)
        if thread not in reachable:
            reachable[thread] = _candidate_objects(rng, objects, density)
        obj = rng.choice(reachable[thread])
        live.setdefault(thread, {})
        live[thread][obj] = live[thread].get(obj, 0) + 1
        emitted += 1
        yield StreamEvent(thread, obj)


@register_scenario(
    "hot-object-drift",
    kind=STREAM,
    description="a popular object set attracts most accesses and drifts over time",
)
def hot_object_drift_stream(
    num_threads: int,
    num_objects: int,
    density: float,
    num_events: int,
    seed: SeedLike = None,
    hot_fraction: float = 0.1,
    hot_probability: float = 0.6,
    drift_every: int = 0,
) -> Iterator[StreamEvent]:
    """Popularity skew whose hot set rotates through the object space.

    With probability ``hot_probability`` an insert touches the current
    hot set (a ``hot_fraction`` slice of the objects); otherwise the
    thread touches its private density-sized subset.  Every
    ``drift_every`` inserts (default: an eighth of the stream) the hot
    set rotates forward, modelling load shifting between shards.  A
    sliding window over this stream lets the optimum *shrink* after each
    drift - the regime where append-only trajectories mislead.
    """
    if num_events < 0:
        raise ComputationError("num_events must be non-negative")
    rng = _rng(seed)
    threads = thread_names(num_threads)
    objects = object_names(num_objects)
    hot_count = max(1, min(num_objects, int(round(hot_fraction * num_objects))))
    step = drift_every if drift_every > 0 else max(1, num_events // 8)
    reachable: Dict[str, Tuple[str, ...]] = {}
    offset = 0
    for index in range(num_events):
        if index and index % step == 0:
            offset = (offset + hot_count) % num_objects
        thread = rng.choice(threads)
        if rng.random() < hot_probability:
            obj = objects[(offset + rng.randrange(hot_count)) % num_objects]
        else:
            if thread not in reachable:
                reachable[thread] = _candidate_objects(rng, objects, density)
            obj = rng.choice(reachable[thread])
        yield StreamEvent(thread, obj)


@register_scenario(
    "phase-change",
    kind=STREAM,
    description="the workload alternates between private-locality and shared-hotspot phases "
    "(an epoch marker at every phase boundary)",
    epochs=True,
)
def phase_change_stream(
    num_threads: int,
    num_objects: int,
    density: float,
    num_events: int,
    seed: SeedLike = None,
    phases: int = 4,
) -> Iterator[StreamEvent]:
    """Alternating locality regimes (phase changes).

    Even phases are *local*: each thread touches its private
    density-sized object subset, producing a sparse graph where
    thread-side components win.  Odd phases are *shared*: every thread
    hammers one common hot subset, the regime where object-side
    components win.  Mechanisms that commit early during one phase pay
    for it in the next - exactly the burn-in vs steady-state contrast the
    ratio sweeps measure.  Every phase boundary emits an epoch marker
    (the scenario registers with ``epochs=True``): the moment the regime
    flips is exactly when a window-aware mechanism should rebuild.
    """
    if num_events < 0:
        raise ComputationError("num_events must be non-negative")
    if phases < 1:
        raise ComputationError("phases must be >= 1")
    rng = _rng(seed)
    threads = thread_names(num_threads)
    objects = object_names(num_objects)
    shared = tuple(objects[: max(1, min(num_objects, int(round(density * num_objects))))])
    phase_length = max(1, num_events // phases)
    reachable: Dict[str, Tuple[str, ...]] = {}
    for index in range(num_events):
        if index and index % phase_length == 0:
            yield epoch_marker()
        thread = rng.choice(threads)
        if (index // phase_length) % 2 == 0:
            if thread not in reachable:
                reachable[thread] = _candidate_objects(rng, objects, density)
            obj = rng.choice(reachable[thread])
        else:
            obj = rng.choice(shared)
        yield StreamEvent(thread, obj)
