"""The happened-before partial order of a computation.

:class:`HappenedBefore` materialises Lamport's happened-before relation for
a :class:`~repro.computation.trace.Computation` exactly as defined in
Section II of the paper: the smallest transitive relation containing

1. consecutive events of the same thread, and
2. consecutive events on the same object.

It answers reachability ("does ``e`` happen before ``f``?"), concurrency,
and exposes the whole relation as predecessor/successor sets.  The class is
*the independent oracle* the test suite compares every vector clock
implementation against (Theorem 2: ``s → t  ⇔  s.v < t.v``), so it is kept
deliberately simple: an explicit DAG plus a transitive closure computed
with a reverse-topological sweep over the event indices (the interleaving
order is already a linear extension of the partial order, which makes the
sweep a single pass).

For large computations the closure costs ``O(|E|^2 / 64)`` bits of memory
(Python integers used as bitsets); the library's algorithms never need it —
only tests and the analysis tooling do.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

from repro.computation.event import Event
from repro.computation.trace import Computation
from repro.exceptions import ComputationError


class HappenedBefore:
    """Reachability oracle for the happened-before relation of a computation."""

    def __init__(self, computation: Computation):
        self._computation = computation
        self._events = computation.events
        # descendants[i] is a bitmask over event indices j with  i -> j  or i == j.
        self._descendants: List[int] = [0] * len(self._events)
        self._build_closure()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_closure(self) -> None:
        events = self._events
        # The global interleaving order is a linear extension: an event's
        # successors always have larger indices, so one reverse pass suffices.
        for event in reversed(events):
            mask = 1 << event.index
            for successor in self._computation.immediate_successors(event):
                mask |= self._descendants[successor.index]
            self._descendants[event.index] = mask

    # ------------------------------------------------------------------
    # Core queries
    # ------------------------------------------------------------------
    @property
    def computation(self) -> Computation:
        return self._computation

    def happened_before(self, earlier: Event, later: Event) -> bool:
        """``True`` iff ``earlier → later`` (strictly; an event does not
        happen before itself)."""
        self._check(earlier)
        self._check(later)
        if earlier.index == later.index:
            return False
        return bool(self._descendants[earlier.index] >> later.index & 1)

    def causally_related(self, a: Event, b: Event) -> bool:
        """``True`` iff ``a → b`` or ``b → a`` (the paper's "comparable")."""
        return self.happened_before(a, b) or self.happened_before(b, a)

    def concurrent(self, a: Event, b: Event) -> bool:
        """``True`` iff ``a ∥ b``: distinct and causally unrelated."""
        self._check(a)
        self._check(b)
        if a.index == b.index:
            return False
        return not self.causally_related(a, b)

    # ------------------------------------------------------------------
    # Derived sets
    # ------------------------------------------------------------------
    def successors(self, event: Event) -> FrozenSet[Event]:
        """All events ``f`` with ``event → f``."""
        self._check(event)
        mask = self._descendants[event.index] & ~(1 << event.index)
        return frozenset(self._events[i] for i in _bits(mask))

    def predecessors(self, event: Event) -> FrozenSet[Event]:
        """All events ``f`` with ``f → event``."""
        self._check(event)
        target_bit = event.index
        return frozenset(
            self._events[i]
            for i in range(len(self._events))
            if i != target_bit and (self._descendants[i] >> target_bit) & 1
        )

    def concurrent_pairs(self) -> Iterator[Tuple[Event, Event]]:
        """Iterate over all unordered concurrent pairs ``(a, b)`` with ``a.index < b.index``."""
        events = self._events
        for i, a in enumerate(events):
            desc_a = self._descendants[i]
            for j in range(i + 1, len(events)):
                if not (desc_a >> j) & 1:
                    yield (a, events[j])

    def comparable_pairs(self) -> Iterator[Tuple[Event, Event]]:
        """Iterate over all ordered pairs ``(a, b)`` with ``a → b``."""
        events = self._events
        for i, a in enumerate(events):
            desc_a = self._descendants[i] & ~(1 << i)
            for j in _bits(desc_a):
                yield (a, events[j])

    def width_lower_bound(self, sample_antichain: bool = True) -> int:
        """A lower bound on the poset width via a greedy antichain.

        The poset width governs the chain-clock baseline's component count
        (Agarwal-Garg); this greedy bound is only used in reports, never in
        the algorithms themselves.
        """
        best = 0
        taken: List[Event] = []
        for event in self._events:
            if all(not self.causally_related(event, other) for other in taken):
                taken.append(event)
        best = len(taken)
        return best

    # ------------------------------------------------------------------
    # Consistency helpers
    # ------------------------------------------------------------------
    def is_linear_extension(self, order: Iterable[Event]) -> bool:
        """``True`` iff ``order`` lists every event once and respects ``→``."""
        ordered = list(order)
        if sorted(e.index for e in ordered) != list(range(len(self._events))):
            return False
        position = {event.index: pos for pos, event in enumerate(ordered)}
        for a, b in self.comparable_pairs():
            if position[a.index] > position[b.index]:
                return False
        return True

    def _check(self, event: Event) -> None:
        if event.index >= len(self._events) or self._events[event.index] is not event:
            # Allow equal (==) events from a rebuilt trace as well.
            if (
                event.index >= len(self._events)
                or self._events[event.index] != event
            ):
                raise ComputationError(
                    f"event {event} does not belong to this computation"
                )


def _bits(mask: int) -> Iterator[int]:
    """Yield the indices of set bits in ``mask`` (ascending)."""
    index = 0
    while mask:
        if mask & 1:
            yield index
        mask >>= 1
        index += 1
