"""Computations: totally-ordered traces of events with partial-order semantics.

A :class:`Computation` is the library's representation of the paper's
``(E, →)``: a finite set of events produced by sequential threads operating
on serialised objects.  We store the events in one global interleaving
order (the order in which the operations were revealed / executed), which
is strictly more information than the happened-before partial order but is
exactly what an online algorithm observes and what a trace file records.
The partial order itself is recovered by
:class:`~repro.computation.poset.HappenedBefore`.

The class also knows how to project itself onto the thread-object bipartite
graph of Section III-A (:meth:`Computation.bipartite_graph`), which is the
input of the offline algorithm.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.computation.event import Event, ObjectId, Operation, ThreadId
from repro.exceptions import ComputationError
from repro.graph.bipartite import BipartiteGraph


class Computation:
    """An immutable trace of events.

    Build one either from :class:`~repro.computation.event.Operation`
    requests via :meth:`from_operations`, from bare ``(thread, object)``
    pairs via :meth:`from_pairs`, or incrementally with
    :class:`ComputationBuilder` (used by the runtime and the online
    simulator).
    """

    def __init__(self, events: Sequence[Event]):
        self._events: Tuple[Event, ...] = tuple(events)
        self._validate()
        self._by_thread: Dict[ThreadId, List[Event]] = defaultdict(list)
        self._by_object: Dict[ObjectId, List[Event]] = defaultdict(list)
        for event in self._events:
            self._by_thread[event.thread].append(event)
            self._by_object[event.obj].append(event)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_operations(cls, operations: Iterable[Operation]) -> "Computation":
        """Build a computation from an interleaved operation sequence."""
        builder = ComputationBuilder()
        for op in operations:
            builder.append(op.thread, op.obj, label=op.label, is_write=op.is_write)
        return builder.build()

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[ThreadId, ObjectId]]) -> "Computation":
        """Build a computation from bare ``(thread, object)`` pairs."""
        builder = ComputationBuilder()
        for thread, obj in pairs:
            builder.append(thread, obj)
        return builder.build()

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def events(self) -> Tuple[Event, ...]:
        """All events in global (interleaving) order."""
        return self._events

    @property
    def threads(self) -> Tuple[ThreadId, ...]:
        """Threads appearing in the computation, in order of first event."""
        seen: Dict[ThreadId, None] = {}
        for event in self._events:
            seen.setdefault(event.thread, None)
        return tuple(seen)

    @property
    def objects(self) -> Tuple[ObjectId, ...]:
        """Objects appearing in the computation, in order of first event."""
        seen: Dict[ObjectId, None] = {}
        for event in self._events:
            seen.setdefault(event.obj, None)
        return tuple(seen)

    @property
    def num_events(self) -> int:
        return len(self._events)

    @property
    def num_threads(self) -> int:
        return len(self._by_thread)

    @property
    def num_objects(self) -> int:
        return len(self._by_object)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Computation):
            return NotImplemented
        return self._events == other._events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Computation(events={self.num_events}, threads={self.num_threads}, "
            f"objects={self.num_objects})"
        )

    def thread_events(self, thread: ThreadId) -> Tuple[Event, ...]:
        """Events of ``thread`` in program order (a chain of the poset)."""
        if thread not in self._by_thread:
            raise ComputationError(f"unknown thread: {thread!r}")
        return tuple(self._by_thread[thread])

    def object_events(self, obj: ObjectId) -> Tuple[Event, ...]:
        """Events on ``obj`` in serialisation order (a chain of the poset)."""
        if obj not in self._by_object:
            raise ComputationError(f"unknown object: {obj!r}")
        return tuple(self._by_object[obj])

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------
    def bipartite_graph(self) -> BipartiteGraph:
        """The thread-object bipartite graph of this computation (Section III-A).

        An edge ``(t, o)`` exists iff the computation contains at least one
        operation by ``t`` on ``o``; multiplicities are ignored.
        """
        graph = BipartiteGraph(threads=self.threads, objects=self.objects)
        for event in self._events:
            graph.add_edge(event.thread, event.obj)
        return graph

    def access_pairs(self) -> Tuple[Tuple[ThreadId, ObjectId], ...]:
        """The distinct ``(thread, object)`` pairs, in order of first occurrence."""
        seen: Dict[Tuple[ThreadId, ObjectId], None] = {}
        for event in self._events:
            seen.setdefault(event.endpoints(), None)
        return tuple(seen)

    def prefix(self, length: int) -> "Computation":
        """The computation consisting of the first ``length`` events."""
        if length < 0:
            raise ComputationError("prefix length must be non-negative")
        return Computation(self._events[:length])

    def immediate_predecessors(self, event: Event) -> Tuple[Event, ...]:
        """The direct happened-before predecessors of ``event``.

        These are the previous event of the same thread and the previous
        event on the same object (rules 1 and 2 of the happened-before
        definition in Section II).  Either may be absent; if both exist and
        coincide, the single event is returned once.
        """
        predecessors: List[Event] = []
        if event.thread_seq > 0:
            predecessors.append(self._by_thread[event.thread][event.thread_seq - 1])
        if event.object_seq > 0:
            prev_obj = self._by_object[event.obj][event.object_seq - 1]
            if not predecessors or predecessors[0] is not prev_obj:
                predecessors.append(prev_obj)
        return tuple(predecessors)

    def immediate_successors(self, event: Event) -> Tuple[Event, ...]:
        """The direct happened-before successors of ``event``."""
        successors: List[Event] = []
        thread_chain = self._by_thread[event.thread]
        if event.thread_seq + 1 < len(thread_chain):
            successors.append(thread_chain[event.thread_seq + 1])
        object_chain = self._by_object[event.obj]
        if event.object_seq + 1 < len(object_chain):
            nxt = object_chain[event.object_seq + 1]
            if not successors or successors[0] is not nxt:
                successors.append(nxt)
        return tuple(successors)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_pairs(self) -> List[Tuple[ThreadId, ObjectId]]:
        """Flatten back to ``(thread, object)`` pairs in interleaving order."""
        return [event.endpoints() for event in self._events]

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        thread_counts: Dict[ThreadId, int] = defaultdict(int)
        object_counts: Dict[ObjectId, int] = defaultdict(int)
        for position, event in enumerate(self._events):
            if event.index != position:
                raise ComputationError(
                    f"event at position {position} has index {event.index}"
                )
            if event.thread_seq != thread_counts[event.thread]:
                raise ComputationError(
                    f"event {event} has thread_seq {event.thread_seq}, "
                    f"expected {thread_counts[event.thread]}"
                )
            if event.object_seq != object_counts[event.obj]:
                raise ComputationError(
                    f"event {event} has object_seq {event.object_seq}, "
                    f"expected {object_counts[event.obj]}"
                )
            thread_counts[event.thread] += 1
            object_counts[event.obj] += 1


class ComputationBuilder:
    """Incrementally assemble a :class:`Computation` one operation at a time.

    The builder assigns global indices and per-chain sequence numbers, so
    callers only supply ``(thread, object)``.  It is the single place in
    the library where events are minted, which keeps the chain-position
    invariants in one spot.
    """

    def __init__(self) -> None:
        self._events: List[Event] = []
        self._thread_counts: Dict[ThreadId, int] = defaultdict(int)
        self._object_counts: Dict[ObjectId, int] = defaultdict(int)

    def append(
        self,
        thread: ThreadId,
        obj: ObjectId,
        label: str = "",
        is_write: bool = True,
    ) -> Event:
        """Record one operation and return the minted :class:`Event`."""
        event = Event(
            index=len(self._events),
            thread=thread,
            obj=obj,
            thread_seq=self._thread_counts[thread],
            object_seq=self._object_counts[obj],
            label=label,
            is_write=is_write,
        )
        self._events.append(event)
        self._thread_counts[thread] += 1
        self._object_counts[obj] += 1
        return event

    def extend(self, pairs: Iterable[Tuple[ThreadId, ObjectId]]) -> None:
        """Append many bare ``(thread, object)`` operations."""
        for thread, obj in pairs:
            self.append(thread, obj)

    @property
    def num_events(self) -> int:
        return len(self._events)

    def events_so_far(self) -> Tuple[Event, ...]:
        """Snapshot of the events recorded so far (used by the online simulator)."""
        return tuple(self._events)

    def build(self) -> Computation:
        """Finalize into an immutable :class:`Computation`."""
        return Computation(self._events)
