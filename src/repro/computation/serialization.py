"""Saving and loading computations (traces) as JSON.

A reproduction package is only useful downstream if traces can leave the
process: recorded executions need to be archived, shipped to the offline
analyser, and replayed in tests.  This module defines a small, stable JSON
format for :class:`~repro.computation.trace.Computation` objects:

```json
{
  "format": "repro-trace",
  "version": 1,
  "events": [
    {"thread": "T2", "object": "O1", "label": "write", "is_write": true},
    ...
  ]
}
```

Only the interleaving order and the per-event fields are stored; global
indices and chain positions are recomputed on load (they are derived data).
Thread and object identifiers must be JSON-representable (strings are
recommended; integers round-trip as well).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, TextIO, Union

from repro.computation.trace import Computation, ComputationBuilder
from repro.exceptions import ComputationError

FORMAT_NAME = "repro-trace"
FORMAT_VERSION = 1

PathLike = Union[str, Path]


def computation_to_dict(computation: Computation) -> Dict[str, Any]:
    """The JSON-ready dictionary representation of a computation."""
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "events": [
            {
                "thread": event.thread,
                "object": event.obj,
                "label": event.label,
                "is_write": event.is_write,
            }
            for event in computation
        ],
    }


def computation_from_dict(data: Dict[str, Any]) -> Computation:
    """Rebuild a computation from :func:`computation_to_dict` output.

    Raises :class:`ComputationError` on unknown formats/versions or
    malformed event records, so corrupted files fail loudly rather than
    producing a silently different computation.
    """
    if not isinstance(data, dict):
        raise ComputationError("trace document must be a JSON object")
    if data.get("format") != FORMAT_NAME:
        raise ComputationError(
            f"unexpected trace format: {data.get('format')!r} (expected {FORMAT_NAME!r})"
        )
    if data.get("version") != FORMAT_VERSION:
        raise ComputationError(
            f"unsupported trace version: {data.get('version')!r} "
            f"(this library reads version {FORMAT_VERSION})"
        )
    events = data.get("events")
    if not isinstance(events, list):
        raise ComputationError("trace document has no 'events' list")
    builder = ComputationBuilder()
    for position, record in enumerate(events):
        if not isinstance(record, dict) or "thread" not in record or "object" not in record:
            raise ComputationError(f"malformed event record at position {position}: {record!r}")
        builder.append(
            record["thread"],
            record["object"],
            label=record.get("label", ""),
            is_write=bool(record.get("is_write", True)),
        )
    return builder.build()


def dump_computation(computation: Computation, destination: Union[PathLike, TextIO]) -> None:
    """Write a computation to a path or an open text file as JSON."""
    document = computation_to_dict(computation)
    if hasattr(destination, "write"):
        json.dump(document, destination, indent=2)
        return
    Path(destination).write_text(json.dumps(document, indent=2) + "\n")


def load_computation(source: Union[PathLike, TextIO]) -> Computation:
    """Read a computation previously written by :func:`dump_computation`."""
    if hasattr(source, "read"):
        data = json.load(source)
    else:
        try:
            data = json.loads(Path(source).read_text())
        except json.JSONDecodeError as error:
            raise ComputationError(f"trace file is not valid JSON: {error}") from error
    return computation_from_dict(data)


def dumps_computation(computation: Computation) -> str:
    """The JSON text of a computation (convenience wrapper)."""
    return json.dumps(computation_to_dict(computation), indent=2)


def loads_computation(text: str) -> Computation:
    """Parse a computation from JSON text (convenience wrapper)."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise ComputationError(f"trace text is not valid JSON: {error}") from error
    return computation_from_dict(data)
