"""The scenario registry: one table for every workload the repo can run.

Before this module existed, three places kept their own ad-hoc workload
tables: the CLI's ``WORKLOADS`` dict, the experiment harness's
``_scenario_generator`` if/elif chain, and per-benchmark ``GENERATORS``
dicts.  They drifted (a scenario added to one never showed up in the
others, error messages listed different names).  The registry replaces
all of them with a single source of truth; ``--workload`` choices, CLI
help text, sweep scenario lists and error messages are all derived from
it.

Scenarios come in three kinds, one per shape of experiment input:

* ``trace``  - ``factory(seed) -> Computation``: a fixed operation trace
  (the structured runtime workloads and the paper's running example);
* ``graph``  - ``factory(num_threads, num_objects, density, seed) ->
  BipartiteGraph``: a random graph family (Section V's Uniform /
  Nonuniform plus the ablation families);
* ``stream`` - ``factory(num_threads, num_objects, density, num_events,
  seed) -> Iterator[StreamEvent]``: a lazy, possibly unbounded event
  stream with optional expiry (the sliding-window monitoring regime; see
  :mod:`repro.computation.streams`).

Register a scenario where it is defined with the decorator::

    @register_scenario("my-workload", kind=TRACE, description="...")
    def my_workload(seed):
        ...

Registrations live next to the factories (trace scenarios in
:mod:`repro.computation.workloads`, stream scenarios in
:mod:`repro.computation.streams`, graph families at the bottom of this
module), and importing :mod:`repro.computation` populates the registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from repro.exceptions import ScenarioError

#: The three scenario kinds (see module docstring).
TRACE = "trace"
GRAPH = "graph"
STREAM = "stream"

_KINDS = (TRACE, GRAPH, STREAM)


@dataclass(frozen=True)
class Scenario:
    """One registered scenario: a named, described factory of a known kind.

    Attributes
    ----------
    name:
        The public name (CLI ``--workload`` / ``--scenario`` value).
    kind:
        One of :data:`TRACE`, :data:`GRAPH`, :data:`STREAM`.
    factory:
        The callable producing the scenario's input; its signature is
        fixed per kind (see the module docstring).
    description:
        One line for CLI help text and sweep reports.
    expires:
        Stream scenarios only: ``True`` when the stream emits its own
        explicit expire events (churn), in which case drivers must *not*
        impose an additional sliding window on top.
    epochs:
        Stream scenarios only: ``True`` when the stream emits its own
        epoch-boundary markers (e.g. at phase changes).  Drivers deliver
        ``end_epoch`` to mechanisms at every marker; counter-based epoch
        ticks (``--epoch N``) can still be layered on top for scenarios
        without intrinsic boundaries.
    """

    name: str
    kind: str
    factory: Callable[..., Any]
    description: str = ""
    expires: bool = False
    epochs: bool = False

    def build(self, *args: Any, **kwargs: Any) -> Any:
        """Invoke the factory (kind-specific signature)."""
        return self.factory(*args, **kwargs)


class ScenarioRegistry:
    """Name-to-:class:`Scenario` table with per-kind views."""

    def __init__(self) -> None:
        self._scenarios: Dict[str, Scenario] = {}

    def register(self, scenario: Scenario) -> Scenario:
        """Add one scenario; names are unique across all kinds."""
        if scenario.kind not in _KINDS:
            raise ScenarioError(
                f"unknown scenario kind {scenario.kind!r} "
                f"(expected one of {', '.join(_KINDS)})"
            )
        if scenario.name in self._scenarios:
            raise ScenarioError(f"scenario {scenario.name!r} is already registered")
        if scenario.expires and scenario.kind != STREAM:
            raise ScenarioError(
                f"scenario {scenario.name!r}: only stream scenarios can expire events"
            )
        if scenario.epochs and scenario.kind != STREAM:
            raise ScenarioError(
                f"scenario {scenario.name!r}: only stream scenarios can emit epoch markers"
            )
        self._scenarios[scenario.name] = scenario
        return scenario

    def get(self, name: str, kind: Optional[str] = None) -> Scenario:
        """Look up a scenario, optionally constraining its kind.

        The error message lists the valid names so CLI users see the
        choices without a separate help lookup.
        """
        scenario = self._scenarios.get(name)
        if scenario is None or (kind is not None and scenario.kind != kind):
            expected = ", ".join(self.names(kind)) or "(none registered)"
            wanted = f"{kind} scenario" if kind else "scenario"
            raise ScenarioError(
                f"unknown {wanted}: {name!r} (expected one of: {expected})"
            )
        return scenario

    def names(self, kind: Optional[str] = None) -> Tuple[str, ...]:
        """Sorted scenario names, optionally restricted to one kind."""
        return tuple(
            sorted(
                name
                for name, scenario in self._scenarios.items()
                if kind is None or scenario.kind == kind
            )
        )

    def scenarios(self, kind: Optional[str] = None) -> Tuple[Scenario, ...]:
        """Registered scenarios in name order, optionally of one kind."""
        return tuple(self.get(name) for name in self.names(kind))

    def describe(self, kind: Optional[str] = None) -> str:
        """``name: description`` lines, the raw material of CLI help text."""
        return "\n".join(
            f"{scenario.name}: {scenario.description}" if scenario.description
            else scenario.name
            for scenario in self.scenarios(kind)
        )

    def __contains__(self, name: object) -> bool:
        return name in self._scenarios

    def __len__(self) -> int:
        return len(self._scenarios)

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios())


#: The process-wide registry every layer reads from.
REGISTRY = ScenarioRegistry()


def register_scenario(
    name: str,
    kind: str,
    description: str = "",
    expires: bool = False,
    epochs: bool = False,
    registry: Optional[ScenarioRegistry] = None,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator registering ``factory`` under ``name`` (see module docstring).

    Returns the factory unchanged, so decorated functions stay directly
    callable.  ``registry`` overrides the process-wide :data:`REGISTRY`
    (used by tests to register into a scratch table).
    """

    def decorator(factory: Callable[..., Any]) -> Callable[..., Any]:
        (registry if registry is not None else REGISTRY).register(
            Scenario(
                name=name,
                kind=kind,
                factory=factory,
                description=description,
                expires=expires,
                epochs=epochs,
            )
        )
        return factory

    return decorator


# ---------------------------------------------------------------------------
# Graph-family scenarios (Section V + ablations)
# ---------------------------------------------------------------------------
# Registered here rather than in repro.graph.generators because the graph
# subpackage must stay importable without repro.computation (the registry
# lives computation-side; graph is the lower layer).
def _register_graph_families() -> None:
    from repro.graph.generators import (
        clustered_bipartite,
        nonuniform_bipartite,
        powerlaw_bipartite,
        uniform_bipartite,
    )

    for name, factory, description in (
        (
            "uniform",
            uniform_bipartite,
            "Section V Uniform: every pair is an edge with probability = density",
        ),
        (
            "nonuniform",
            nonuniform_bipartite,
            "Section V Nonuniform: a popular minority of vertices attracts most edges",
        ),
        (
            "powerlaw",
            powerlaw_bipartite,
            "ablation: Zipf-weighted degree skew, heavier than Nonuniform",
        ),
        (
            "clustered",
            clustered_bipartite,
            "ablation: community structure, within-cluster edges boosted",
        ),
    ):
        REGISTRY.register(
            Scenario(name=name, kind=GRAPH, factory=factory, description=description)
        )


_register_graph_families()
