"""Workload generators: turn access patterns into operation traces.

The paper's evaluation works directly on random bipartite graphs, but the
vector clock protocols themselves operate on *computations* (sequences of
operations).  This module bridges the two worlds:

* :func:`trace_from_graph` expands a thread-object bipartite graph into a
  concrete interleaved computation whose access pattern is exactly that
  graph (used to exercise the clock protocols on the same graphs the paper
  evaluates).
* :func:`random_trace` generates an operation trace directly by repeatedly
  picking a thread and one of the objects it may access - the setting an
  online algorithm faces.
* Scenario generators (:func:`producer_consumer_trace`,
  :func:`work_stealing_trace`, :func:`lock_hierarchy_trace`,
  :func:`pipeline_trace`) model the kinds of multithreaded programs the
  paper's introduction motivates (debugging, visualisation); they are used
  by the examples and the runtime benchmarks.

Every generator takes a ``seed`` so that experiments are reproducible.

These generators produce *finite, materialised* computations - the input
shape of the figure-reproduction experiments.  Each is also registered as
a ``trace`` scenario in the :mod:`~repro.computation.registry`, which is
where the CLI and the experiment harness look workloads up; the
unbounded/streaming counterparts (event streams with churn and expiry for
the sliding-window monitoring regime) live in
:mod:`repro.computation.streams`.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.computation.event import Operation
from repro.computation.registry import TRACE, register_scenario
from repro.computation.trace import Computation, ComputationBuilder
from repro.exceptions import ComputationError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import SeedLike, object_names, thread_names, _rng


def trace_from_graph(
    graph: BipartiteGraph,
    operations_per_edge: int = 1,
    shuffle: bool = True,
    seed: SeedLike = None,
) -> Computation:
    """Expand a bipartite access pattern into an interleaved computation.

    Each edge ``(t, o)`` contributes ``operations_per_edge`` operations of
    thread ``t`` on object ``o``.  With ``shuffle=True`` (default) the
    resulting operations are interleaved in a random global order, which
    produces non-trivial cross-thread causality through shared objects.

    The returned computation's :meth:`~repro.computation.trace.Computation.bipartite_graph`
    equals ``graph`` up to isolated vertices (vertices with no incident
    edge cannot appear in any operation).
    """
    if operations_per_edge < 1:
        raise ComputationError("operations_per_edge must be >= 1")
    rng = _rng(seed)
    pairs: List[Tuple[object, object]] = []
    for edge in graph.edges():
        pairs.extend([edge] * operations_per_edge)
    if shuffle:
        rng.shuffle(pairs)
    return Computation.from_pairs(pairs)


def random_trace(
    num_threads: int,
    num_objects: int,
    num_events: int,
    locality: float = 0.0,
    seed: SeedLike = None,
) -> Computation:
    """Generate a random operation trace event by event.

    Each event picks a uniformly random thread.  With probability
    ``locality`` the thread re-accesses one of the objects it has already
    touched (if any); otherwise it picks a uniformly random object.  Higher
    locality produces sparser thread-object graphs, which is the regime
    where the paper's mechanisms shine.
    """
    if num_events < 0:
        raise ComputationError("num_events must be non-negative")
    if not (0.0 <= locality <= 1.0):
        raise ComputationError("locality must be in [0, 1]")
    rng = _rng(seed)
    threads = thread_names(num_threads)
    objects = object_names(num_objects)
    touched: Dict[str, List[str]] = {t: [] for t in threads}
    builder = ComputationBuilder()
    for _ in range(num_events):
        thread = rng.choice(threads)
        previously = touched[thread]
        if previously and rng.random() < locality:
            obj = rng.choice(previously)
        else:
            obj = rng.choice(objects)
            if obj not in previously:
                previously.append(obj)
        builder.append(thread, obj)
    return builder.build()


def producer_consumer_trace(
    num_producers: int = 4,
    num_consumers: int = 4,
    num_queues: int = 2,
    items_per_producer: int = 25,
    seed: SeedLike = None,
) -> Computation:
    """A producer/consumer program over shared queues.

    Producers repeatedly write to a (randomly chosen) shared queue object;
    consumers read from queues.  Each thread also touches a private state
    object, so the thread-object graph has a few very popular vertices (the
    queues) and many degree-1 vertices - the Nonuniform regime where a
    mixed clock is much smaller than ``min(n, m)``.
    """
    rng = _rng(seed)
    producers = [f"producer-{i}" for i in range(num_producers)]
    consumers = [f"consumer-{i}" for i in range(num_consumers)]
    queues = [f"queue-{i}" for i in range(num_queues)]
    builder = ComputationBuilder()
    pending: List[Tuple[str, str, str, bool]] = []
    for producer in producers:
        private = f"state-{producer}"
        for item in range(items_per_producer):
            pending.append((producer, private, f"produce-{item}", True))
            pending.append((producer, rng.choice(queues), f"enqueue-{item}", True))
    for consumer in consumers:
        private = f"state-{consumer}"
        expected = (num_producers * items_per_producer) // max(1, num_consumers)
        for item in range(expected):
            pending.append((consumer, rng.choice(queues), f"dequeue-{item}", False))
            pending.append((consumer, private, f"consume-{item}", True))
    # Interleave while preserving each thread's program order.
    per_thread: Dict[str, List[Tuple[str, str, str, bool]]] = {}
    for entry in pending:
        per_thread.setdefault(entry[0], []).append(entry)
    _interleave(builder, per_thread, rng)
    return builder.build()


def work_stealing_trace(
    num_workers: int = 8,
    tasks_per_worker: int = 20,
    steal_probability: float = 0.2,
    seed: SeedLike = None,
) -> Computation:
    """A work-stealing scheduler: each worker owns a deque, thieves steal.

    Most operations stay on the worker's own deque (high locality); with
    probability ``steal_probability`` a worker touches a victim's deque.
    The resulting graph is sparse with mild popularity skew.
    """
    rng = _rng(seed)
    workers = [f"worker-{i}" for i in range(num_workers)]
    deques = {w: f"deque-{i}" for i, w in enumerate(workers)}
    per_thread: Dict[str, List[Tuple[str, str, str, bool]]] = {w: [] for w in workers}
    for worker in workers:
        for task in range(tasks_per_worker):
            if rng.random() < steal_probability and num_workers > 1:
                victim = rng.choice([w for w in workers if w != worker])
                per_thread[worker].append(
                    (worker, deques[victim], f"steal-{task}", True)
                )
            else:
                per_thread[worker].append(
                    (worker, deques[worker], f"pop-{task}", True)
                )
    builder = ComputationBuilder()
    _interleave(builder, per_thread, rng)
    return builder.build()


def lock_hierarchy_trace(
    num_threads: int = 6,
    num_locks: int = 3,
    num_accounts: int = 12,
    transfers_per_thread: int = 15,
    seed: SeedLike = None,
) -> Computation:
    """A bank-transfer program guarded by a small lock hierarchy.

    Every transfer touches one of a few global lock objects plus two account
    objects, so the lock objects dominate the vertex cover - the motivating
    case for mixing objects into the clock.
    """
    rng = _rng(seed)
    threads = [f"teller-{i}" for i in range(num_threads)]
    locks = [f"lock-{i}" for i in range(num_locks)]
    accounts = [f"account-{i}" for i in range(num_accounts)]
    per_thread: Dict[str, List[Tuple[str, str, str, bool]]] = {t: [] for t in threads}
    for thread in threads:
        for transfer in range(transfers_per_thread):
            src, dst = rng.sample(accounts, 2)
            lock = rng.choice(locks)
            per_thread[thread].extend(
                [
                    (thread, lock, f"acquire-{transfer}", True),
                    (thread, src, f"debit-{transfer}", True),
                    (thread, dst, f"credit-{transfer}", True),
                    (thread, lock, f"release-{transfer}", True),
                ]
            )
    builder = ComputationBuilder()
    _interleave(builder, per_thread, rng)
    return builder.build()


def pipeline_trace(
    num_stages: int = 4,
    workers_per_stage: int = 2,
    items: int = 30,
    seed: SeedLike = None,
) -> Computation:
    """A staged pipeline: stage ``i`` reads buffer ``i`` and writes buffer ``i+1``.

    Buffers between stages are the only shared objects, giving a
    banded/clustered bipartite structure.
    """
    rng = _rng(seed)
    buffers = [f"buffer-{i}" for i in range(num_stages + 1)]
    per_thread: Dict[str, List[Tuple[str, str, str, bool]]] = {}
    for stage in range(num_stages):
        for worker in range(workers_per_stage):
            thread = f"stage{stage}-worker{worker}"
            ops: List[Tuple[str, str, str, bool]] = []
            for item in range(items // workers_per_stage):
                ops.append((thread, buffers[stage], f"read-{item}", False))
                ops.append((thread, buffers[stage + 1], f"write-{item}", True))
            per_thread[thread] = ops
    builder = ComputationBuilder()
    _interleave(builder, per_thread, rng)
    return builder.build()


def paper_example_trace() -> Computation:
    """The computation of Fig. 1 in the paper.

    Reading the figure left to right: thread ``T2`` touches ``O1``, ``O2``
    and ``O3``; ``T1`` touches ``O2``; ``T3`` touches ``O3``; ``T4``
    touches ``O2`` and ``O3``.  Every operation involves ``T2``, ``O2`` or
    ``O3``, so the optimal mixed clock has the three components
    ``{T2, O2, O3}``.
    """
    pairs = [
        ("T2", "O1"),
        ("T1", "O2"),
        ("T2", "O2"),
        ("T2", "O3"),
        ("T3", "O3"),
        ("T4", "O2"),
        ("T4", "O3"),
    ]
    return Computation.from_pairs(pairs)


# ---------------------------------------------------------------------------
# Registry entries
# ---------------------------------------------------------------------------
# One adapter per generator pins the configuration the CLI and experiment
# harness run (the registry's trace contract is ``factory(seed)``); the
# generators above stay directly callable with their full signatures.
@register_scenario(
    "paper-example",
    kind=TRACE,
    description="the running example of Fig. 1 (fixed; seed ignored)",
)
def _paper_example_scenario(seed: SeedLike = None) -> Computation:  # repro: noqa[C204] the paper's worked example is constant by definition; the registry contract fixes the factory(seed) shape
    return paper_example_trace()


@register_scenario(
    "producer-consumer",
    kind=TRACE,
    description="producers and consumers sharing a few hot queues",
)
def _producer_consumer_scenario(seed: SeedLike = None) -> Computation:
    return producer_consumer_trace(seed=seed)


@register_scenario(
    "work-stealing",
    kind=TRACE,
    description="per-worker deques with occasional cross-worker steals",
)
def _work_stealing_scenario(seed: SeedLike = None) -> Computation:
    return work_stealing_trace(seed=seed)


@register_scenario(
    "lock-hierarchy",
    kind=TRACE,
    description="bank transfers guarded by a small global lock hierarchy",
)
def _lock_hierarchy_scenario(seed: SeedLike = None) -> Computation:
    return lock_hierarchy_trace(seed=seed)


@register_scenario(
    "pipeline",
    kind=TRACE,
    description="staged pipeline communicating through inter-stage buffers",
)
def _pipeline_scenario(seed: SeedLike = None) -> Computation:
    return pipeline_trace(seed=seed)


@register_scenario(
    "random",
    kind=TRACE,
    description="10 threads x 20 objects, 400 events, locality 0.5",
)
def _random_scenario(seed: SeedLike = None) -> Computation:
    return random_trace(10, 20, 400, locality=0.5, seed=seed)


def _interleave(
    builder: ComputationBuilder,
    per_thread: Dict[str, List[Tuple[str, str, str, bool]]],
    rng: random.Random,
) -> None:
    """Randomly interleave per-thread operation lists, preserving program order."""
    queues = {thread: list(ops) for thread, ops in per_thread.items() if ops}
    while queues:
        thread = rng.choice(list(queues))
        thread_name, obj, label, is_write = queues[thread].pop(0)
        builder.append(thread_name, obj, label=label, is_write=is_write)
        if not queues[thread]:
            del queues[thread]
