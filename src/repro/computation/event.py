"""Events of a thread-object computation.

The paper's system model (Section II) is a set of sequential threads
performing operations on shared objects; every event is an operation by
exactly one thread on exactly one object, and all operations on a single
object are serialised (e.g. by a lock).

:class:`Event` captures one such operation together with the bookkeeping
the rest of the library needs:

* ``thread`` and ``obj`` - the endpoints (``e.thread`` / ``e.object`` in
  the paper's notation);
* ``index`` - the event's global position in the trace (a convenient
  unique identifier; the computation itself is only partially ordered);
* ``thread_seq`` / ``object_seq`` - the event's position within its
  thread's sequence and its object's sequence, which are exactly the two
  chains Lamport's happened-before relation is generated from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional

ThreadId = Hashable
ObjectId = Hashable


@dataclass(frozen=True)
class Operation:
    """A not-yet-scheduled operation request: thread ``thread`` acting on ``obj``.

    Operations are what workload generators and the runtime produce;
    :class:`~repro.computation.trace.Computation` turns an operation
    sequence into :class:`Event` instances with chain positions filled in.
    The optional ``label`` and ``is_write`` fields carry application-level
    meaning (e.g. for the race detector) and do not affect causality.
    """

    thread: ThreadId
    obj: ObjectId
    label: str = ""
    is_write: bool = True


@dataclass(frozen=True, order=False)
class Event:
    """One operation of a computation, with its position in both chains.

    Instances are immutable and hashable, so they can serve as vertices of
    the happened-before poset and as dictionary keys for timestamps.
    """

    index: int
    thread: ThreadId
    obj: ObjectId
    thread_seq: int
    object_seq: int
    label: str = ""
    is_write: bool = True

    def same_thread(self, other: "Event") -> bool:
        """``True`` iff both events were executed by the same thread."""
        return self.thread == other.thread

    def same_object(self, other: "Event") -> bool:
        """``True`` iff both events operated on the same object."""
        return self.obj == other.obj

    def endpoints(self) -> tuple:
        """The ``(thread, object)`` pair, i.e. the bipartite-graph edge."""
        return (self.thread, self.obj)

    def describe(self) -> str:
        """Human-readable one-line description, used by examples and reports."""
        kind = "write" if self.is_write else "read"
        suffix = f" [{self.label}]" if self.label else ""
        return (
            f"e{self.index}: {self.thread} {kind}s {self.obj} "
            f"(thread op #{self.thread_seq}, object op #{self.object_seq}){suffix}"
        )

    def __str__(self) -> str:
        return f"[{self.thread},{self.obj}]#{self.index}"
