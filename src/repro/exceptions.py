"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so that callers
can catch every failure mode of the library with a single ``except`` clause
while still being able to distinguish the individual categories.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """Raised for structural problems in bipartite graphs.

    Examples include adding an edge whose endpoints live on the wrong side
    of the partition, or querying a vertex that was never added.
    """


class UnknownVertexError(GraphError, KeyError):
    """Raised when an operation references a vertex not present in a graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(vertex)
        self.vertex = vertex

    def __str__(self) -> str:  # pragma: no cover - trivial formatting
        return f"unknown vertex: {self.vertex!r}"


class DuplicateVertexError(GraphError):
    """Raised when a vertex is added to both sides of a bipartite graph."""


class MatchingError(ReproError):
    """Raised when a matching is structurally invalid for a given graph."""


class VertexCoverError(ReproError):
    """Raised when a vertex cover is structurally invalid for a given graph."""


class ComputationError(ReproError):
    """Raised for malformed computations (traces of events)."""


class ClockError(ReproError):
    """Raised for invalid vector clock operations.

    The most common cause is timestamping an event whose thread *and*
    object are both missing from the clock's component set, which would
    make the resulting timestamps unable to order that event.
    """


class ComponentError(ClockError):
    """Raised when a component set does not cover a computation."""


class AmbiguousTimestampError(ClockError):
    """Raised when two distinct events carry identical timestamps.

    This only happens when a protocol ran with ``strict=False`` and left
    events uncovered (merge-only, no increment): the timestamps of such
    events cannot answer causality queries, and pretending the events are
    "equal" would be silently wrong.
    """


class RetimestampingError(ClockError):
    """Raised when an epoch rotation fails its re-timestamping invariant.

    Rotating a clock kernel to a new component set replays the live
    window's events; the replayed timestamps must reference only the new
    epoch's components and must preserve every happened-before /
    concurrent verdict among live events.  A violation means the new
    component set does not cover the live window (or the caller replayed
    the wrong events) - continuing would silently corrupt causality
    queries, so the rotation is aborted instead.
    """


class OnlineMechanismError(ReproError):
    """Raised when an online mechanism is misused (e.g. reused across runs)."""


class RuntimeSystemError(ReproError):
    """Raised by the simulated concurrent runtime for invalid programs."""


class ExperimentError(ReproError):
    """Raised by the experiment harness for inconsistent configurations."""


class ScenarioError(ReproError):
    """Raised by the scenario registry for unknown or conflicting scenarios."""


class LintError(ReproError):
    """Raised by the static lint pass for usage errors.

    Covers unknown rule selectors, unreadable paths, and malformed
    baseline files - conditions where the lint run itself cannot
    proceed, as opposed to findings, which are ordinary results.
    """


class EngineError(ReproError):
    """Raised by the sharded execution engine for invalid configurations.

    Covers misconfigured runs (non-positive shard counts, unknown
    mechanism labels), non-mergeable partial results (overlapping or
    non-contiguous series fragments), and checkpoint directories whose
    recorded run signature does not match the resuming configuration.
    """
