"""Sharded, resumable execution engine for million-event streaming runs.

The engine scales the streaming evaluation past what one process and one
pass can hold: a :class:`~repro.engine.sharding.StreamSharder` partitions
any registered stream scenario into thread-affine shards, a
:class:`~repro.engine.executor.WorkerPool` (behind
:class:`~repro.engine.executor.ShardExecutor`) runs the shard tasks
serially or on a persistent spawn pool, each shard's metrics travel as
mergeable :class:`~repro.engine.results.PartialResult` objects, and
chunk-boundary checkpoints (:mod:`repro.engine.checkpoint`) make
interrupted runs resumable.  Two scheduling modes share that machinery:
the original one-task-per-shard ``jobs`` mode, and the worker-pooled
``workers`` mode, where :func:`~repro.engine.sharding.plan_shard_groups`
deals the shards into contiguous :class:`~repro.engine.sharding.ShardGroup`\\ s
and :func:`~repro.engine.runner.run_shard_group` drives each group
through ONE stream pass.  ``python -m repro engine run`` is the CLI
surface; :func:`~repro.engine.runner.run_engine` is the library one.

The load-bearing guarantee, asserted by the test suite: a run's merged
result is a pure function of its :class:`~repro.engine.runner.EngineConfig`
- bit-identical across ``jobs`` counts, ``workers`` counts, backends,
and interrupt/resume cycles.
"""

from repro.engine.checkpoint import EngineCheckpointManager, ShardCheckpoint
from repro.engine.executor import ShardExecutor, WorkerPool, execute_tasks
from repro.engine.results import (
    OFFLINE_LABEL,
    EngineResult,
    PartialResult,
    SeriesFragment,
    merge_partials,
)
from repro.engine.runner import (
    EngineConfig,
    EngineInterrupted,
    run_engine,
    run_shard,
    run_shard_group,
    run_shard_group_task,
    run_shard_task,
)
from repro.engine.sharding import (
    HASH,
    ROUND_ROBIN,
    STRATEGIES,
    ShardGroup,
    StreamSharder,
    plan_shard_groups,
    stable_vertex_hash,
)

__all__ = [
    "EngineCheckpointManager",
    "EngineConfig",
    "EngineInterrupted",
    "EngineResult",
    "HASH",
    "OFFLINE_LABEL",
    "PartialResult",
    "ROUND_ROBIN",
    "STRATEGIES",
    "SeriesFragment",
    "ShardCheckpoint",
    "ShardExecutor",
    "ShardGroup",
    "StreamSharder",
    "WorkerPool",
    "execute_tasks",
    "merge_partials",
    "plan_shard_groups",
    "run_engine",
    "run_shard",
    "run_shard_group",
    "run_shard_group_task",
    "run_shard_task",
    "stable_vertex_hash",
]
