"""Sharded, resumable execution engine for million-event streaming runs.

The engine scales the streaming evaluation past what one process and one
pass can hold: a :class:`~repro.engine.sharding.StreamSharder` partitions
any registered stream scenario into thread-affine shards, a
:class:`~repro.engine.executor.ShardExecutor` runs the shards serially or
on a multiprocess pool, each shard's metrics travel as mergeable
:class:`~repro.engine.results.PartialResult` objects, and chunk-boundary
checkpoints (:mod:`repro.engine.checkpoint`) make interrupted runs
resumable.  ``python -m repro engine run`` is the CLI surface;
:func:`~repro.engine.runner.run_engine` is the library one.

The load-bearing guarantee, asserted by the test suite: a run's merged
result is a pure function of its :class:`~repro.engine.runner.EngineConfig`
- bit-identical across ``jobs`` counts, backends, and interrupt/resume
cycles.
"""

from repro.engine.checkpoint import EngineCheckpointManager, ShardCheckpoint
from repro.engine.executor import ShardExecutor, execute_tasks
from repro.engine.results import (
    OFFLINE_LABEL,
    EngineResult,
    PartialResult,
    SeriesFragment,
    merge_partials,
)
from repro.engine.runner import (
    EngineConfig,
    EngineInterrupted,
    run_engine,
    run_shard,
    run_shard_task,
)
from repro.engine.sharding import (
    HASH,
    ROUND_ROBIN,
    STRATEGIES,
    StreamSharder,
    stable_vertex_hash,
)

__all__ = [
    "EngineCheckpointManager",
    "EngineConfig",
    "EngineInterrupted",
    "EngineResult",
    "HASH",
    "OFFLINE_LABEL",
    "PartialResult",
    "ROUND_ROBIN",
    "STRATEGIES",
    "SeriesFragment",
    "ShardCheckpoint",
    "ShardExecutor",
    "StreamSharder",
    "execute_tasks",
    "merge_partials",
    "run_engine",
    "run_shard",
    "run_shard_task",
    "stable_vertex_hash",
]
