"""Cross-process telemetry plumbing for the sharded engine.

Engine workers are spawned processes: the parent's installed
:class:`~repro.obs.registry.MetricsRegistry` does not exist over there,
and nothing about worker scheduling may leak into the merged telemetry
(the same discipline the result merge follows).  The bridge:

* :func:`run_shard_task_with_metrics` wraps the normal shard task.  It
  installs a fresh per-shard registry (origin ``shard-N``), runs the
  shard, restores whatever was installed before, and returns the
  partial *plus* a picklable snapshot of everything the shard observed.
  Because the wrapper runs identically in-process (``--jobs 1``) and in
  a worker, the merged telemetry's structure is independent of the
  worker count - only the latencies themselves differ.
* :func:`absorb_snapshots` folds the snapshots into the parent registry
  in the order given; :func:`~repro.engine.runner.run_engine` passes
  them in shard-id order, mirroring the result merge tree.

This module is the engine's one sanctioned reader of telemetry state:
lint rule C206 forbids snapshot/merge calls in result-path modules and
exempts exactly this file (see ``TELEMETRY_BRIDGE_MODULES`` in
:mod:`repro.lint.contracts`).  The exemption is safe because nothing
here feeds a value derived from telemetry back into the shard run - the
snapshot is taken after ``run_shard`` returns and travels strictly
outward.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.engine.results import PartialResult
from repro.engine.runner import EngineConfig, run_shard, run_shard_group
from repro.obs.registry import MetricsRegistry, MetricsSnapshot, install

__all__ = [
    "absorb_snapshots",
    "run_shard_group_task_with_metrics",
    "run_shard_task_with_metrics",
]


def run_shard_task_with_metrics(
    task: Tuple[EngineConfig, int],
) -> Tuple[PartialResult, MetricsSnapshot]:
    """Run one shard under a fresh per-shard registry; return both outputs.

    Module-level and picklable, like
    :func:`~repro.engine.runner.run_shard_task`, so the process pool can
    ship it by name.  The previous registry (the parent's, on the
    in-process path; ``None`` in a spawned worker) is restored in a
    ``finally`` so an interrupt cannot leave shard telemetry installed.
    """
    config, shard_id = task
    registry = MetricsRegistry(origin=f"shard-{shard_id}")
    previous = install(registry)
    try:
        partial = run_shard(config, shard_id)
    finally:
        install(previous)
    return partial, registry.snapshot()


def run_shard_group_task_with_metrics(
    task: Tuple[EngineConfig, Tuple[int, ...]],
) -> Tuple[Dict[int, PartialResult], MetricsSnapshot]:
    """Run one shard group under a fresh registry; return both outputs.

    The worker-pool analogue of :func:`run_shard_task_with_metrics`: one
    registry per *group task* (origin ``shards-A-B``, or ``shard-A`` for
    a one-shard group, matching the per-shard wrapper), because the
    group - not the shard - is the unit a pool worker executes.  All
    per-shard series (``engine.shard[i].*`` gauges, per-shard chunk
    spans) still land inside it keyed by shard id, so absorbing group
    snapshots in group order yields shard telemetry in shard-id order -
    groups are contiguous and ascending by construction.
    """
    config, shard_ids = task
    first, last = shard_ids[0], shard_ids[-1]
    origin = f"shard-{first}" if first == last else f"shards-{first}-{last}"
    registry = MetricsRegistry(origin=origin)
    previous = install(registry)
    try:
        partials = run_shard_group(config, shard_ids)
    finally:
        install(previous)
    return partials, registry.snapshot()


def absorb_snapshots(
    registry: MetricsRegistry, snapshots: Iterable[MetricsSnapshot]
) -> None:
    """Fold worker snapshots into ``registry`` in the order given.

    The caller fixes the order (the engine uses shard-id order), so the
    combined registry - like the merged result - never depends on which
    worker finished first.
    """
    for snapshot in snapshots:
        registry.merge_snapshot(snapshot)
