"""Mergeable partial results: the unit of exchange of the sharded engine.

A sharded run produces metrics in pieces - one piece per (shard, chunk) -
and the pieces must recombine into exactly the result a serial run would
have produced.  Everything here is built around that requirement:

* :class:`SeriesFragment` - the metrics of one mechanism (or the offline
  optimum) over one contiguous range of a shard's inserts: the clock-size
  samples (optionally strided), the final size, and the mergeable moment
  statistics of the pointwise competitive ratios;
* :class:`PartialResult` - a set of fragments keyed by ``(shard, label)``
  plus global event counts.  ``merge`` is the engine's only combining
  operation: fragments of *different* keys union (shards are
  independent), fragments of the *same* key concatenate (chunks of one
  shard), ordered by their start index so the operation is commutative.
  It is associative over every bracketing that only joins
  chunk-contiguous pieces - which every merge order the engine uses
  (chunks in order within a worker, shards in id order at the end)
  satisfies by construction;
* :class:`EngineResult` - the fully merged run: convenience accessors,
  a deterministic text rendering, and a :meth:`EngineResult.fingerprint`
  (SHA-256 over a canonical serialisation) that the CLI prints and the
  tests compare to assert ``--jobs 1`` / ``--jobs N`` bit-identity.

Trajectory samples are taken at shard-local insert indices ``i`` with
``i % stride == 0``.  Sampling is keyed to the *global* shard index, not
the chunk-local one, so fragment concatenation is stride-correct across
chunk boundaries regardless of how the run was chunked.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.analysis.metrics import MergeableStats
from repro.exceptions import EngineError

#: Key under which the dynamic offline optimum's fragments are stored.
OFFLINE_LABEL = "offline"

SeriesKey = Tuple[int, str]


@dataclass(frozen=True)
class SeriesFragment:
    """Metrics of one label over one contiguous insert range of one shard.

    ``start`` and ``count`` are in shard-local insert coordinates:
    the fragment covers inserts ``start .. start + count - 1`` of its
    shard's sub-stream.  ``samples`` holds the clock sizes at the covered
    indices divisible by ``stride``; ``final_size`` is the size after the
    last covered insert (carried forward unchanged by empty fragments).
    ``ratios`` summarises the pointwise online/offline ratios of the
    covered inserts (empty for the offline label itself, and when the
    run disabled the optimum).
    """

    start: int
    count: int
    stride: int
    final_size: int
    samples: Tuple[int, ...] = ()
    ratios: MergeableStats = field(default_factory=MergeableStats)

    @property
    def end(self) -> int:
        """One past the last covered shard-local insert index."""
        return self.start + self.count

    def merge(self, other: "SeriesFragment") -> "SeriesFragment":
        """Concatenate two fragments of the same (shard, label) key.

        Order-insensitive: the fragment with the smaller start index is
        treated as the earlier chunk.  Raises :class:`EngineError` when
        the two ranges are not contiguous (a merge tree that skipped a
        chunk is a driver bug, and silently producing a gapped series
        would poison every downstream statistic).
        """
        earlier, later = (self, other) if self.start <= other.start else (other, self)
        if earlier.stride != later.stride:
            raise EngineError(
                f"cannot merge fragments with strides {earlier.stride} and "
                f"{later.stride}"
            )
        if earlier.end != later.start:
            raise EngineError(
                f"cannot merge non-contiguous fragments: [{earlier.start}, "
                f"{earlier.end}) then [{later.start}, {later.end})"
            )
        return SeriesFragment(
            start=earlier.start,
            count=earlier.count + later.count,
            stride=earlier.stride,
            final_size=later.final_size if later.count else earlier.final_size,
            samples=earlier.samples + later.samples,
            ratios=earlier.ratios.merge(later.ratios),
        )


@dataclass(frozen=True)
class PartialResult:
    """The mergeable metrics of any subset of a run's (shard, chunk) grid.

    ``series`` maps ``(shard_id, label)`` to that pair's fragment;
    ``inserts`` / ``expires`` count the stream events the subset covered.
    Treat instances as immutable: ``merge`` returns a new object and
    never mutates either operand's mapping.
    """

    inserts: int = 0
    expires: int = 0
    series: Mapping[SeriesKey, SeriesFragment] = field(default_factory=dict)

    def merge(self, other: "PartialResult") -> "PartialResult":
        """Combine two partials (see the module docstring for the algebra)."""
        merged: Dict[SeriesKey, SeriesFragment] = dict(self.series)
        for key, fragment in other.series.items():
            existing = merged.get(key)
            merged[key] = fragment if existing is None else existing.merge(fragment)
        return PartialResult(
            inserts=self.inserts + other.inserts,
            expires=self.expires + other.expires,
            series=merged,
        )

    def shard_ids(self) -> Tuple[int, ...]:
        return tuple(sorted({shard for shard, _ in self.series}))

    def labels(self) -> Tuple[str, ...]:
        return tuple(sorted({label for _, label in self.series}))

    def fragment(self, shard_id: int, label: str) -> SeriesFragment:
        try:
            return self.series[(shard_id, label)]
        except KeyError:
            raise EngineError(
                f"no series recorded for shard {shard_id}, label {label!r}"
            ) from None


def merge_partials(partials: List[PartialResult]) -> PartialResult:
    """Left-fold ``partials`` in list order into one result."""
    merged = PartialResult()
    for partial in partials:
        merged = merged.merge(partial)
    return merged


@dataclass(frozen=True)
class EngineResult:
    """A fully merged sharded run, plus the configuration that shaped it.

    The identity of a run's numbers is exactly ``(scenario parameters,
    root seed, shard structure, chunk size, window, mechanisms)`` - and
    deliberately *not* the worker count or executor backend, which is the
    engine's central determinism guarantee.  :meth:`fingerprint` distils
    the merged metrics into one hex digest so that guarantee is cheap to
    assert from tests and visible from the CLI.
    """

    scenario: str
    num_shards: int
    strategy: str
    seed: int
    window: Optional[int]
    chunk_size: int
    mechanisms: Tuple[str, ...]
    partial: PartialResult

    @property
    def inserts(self) -> int:
        return self.partial.inserts

    @property
    def expires(self) -> int:
        return self.partial.expires

    def final_sizes(self, label: str) -> Dict[int, int]:
        """Final clock size per shard for one mechanism label."""
        return {
            shard: fragment.final_size
            for (shard, lbl), fragment in self.partial.series.items()
            if lbl == label
        }

    def pooled_ratios(self, label: str) -> MergeableStats:
        """Competitive-ratio statistics pooled over every shard."""
        pooled = MergeableStats()
        for shard in self.partial.shard_ids():
            key = (shard, label)
            if key in self.partial.series:
                pooled = pooled.merge(self.partial.series[key].ratios)
        return pooled

    def _canonical_lines(self) -> List[str]:
        """One line per series, in sorted key order (the fingerprint input).

        Floats are rendered with ``repr`` (shortest exact round-trip), so
        two results fingerprint equal iff their metrics are bit-identical.
        """
        lines = [
            f"scenario={self.scenario} shards={self.num_shards} "
            f"strategy={self.strategy} seed={self.seed} window={self.window} "
            f"chunk={self.chunk_size} inserts={self.inserts} "
            f"expires={self.expires}"
        ]
        for (shard, label), frag in sorted(self.partial.series.items()):
            stats = frag.ratios
            lines.append(
                f"shard={shard} label={label} start={frag.start} "
                f"count={frag.count} stride={frag.stride} "
                f"final={frag.final_size} samples={frag.samples!r} "
                f"ratio_count={stats.count} ratio_mean={stats.mean!r} "
                f"ratio_m2={stats.m2!r} ratio_min={stats.minimum!r} "
                f"ratio_max={stats.maximum!r}"
            )
        return lines

    def fingerprint(self) -> str:
        """SHA-256 hex digest of the canonical metric serialisation."""
        digest = hashlib.sha256()
        for line in self._canonical_lines():
            digest.update(line.encode("utf-8"))
            digest.update(b"\n")
        return digest.hexdigest()

    def format(self) -> str:
        """Deterministic text report: per-mechanism pooled metrics + shards."""
        from repro.analysis.report import format_table

        header = (
            f"engine run: scenario={self.scenario} shards={self.num_shards} "
            f"({self.strategy}) seed={self.seed} "
            f"window={self.window if self.window is not None else '-'} "
            f"chunk={self.chunk_size}\n"
            f"events: {self.inserts} inserts, {self.expires} expires"
        )
        rows: List[Dict[str, object]] = []
        for label in self.partial.labels():
            finals = self.final_sizes(label)
            stats = self.pooled_ratios(label)
            row: Dict[str, object] = {
                "series": label,
                "final(sum)": sum(finals.values()),
                "final(max)": max(finals.values()) if finals else 0,
            }
            if stats.count:
                row["ratio mean"] = f"{stats.mean:.3f}"
                row["ratio max"] = f"{stats.maximum:.3f}"
            else:
                row["ratio mean"] = "-"
                row["ratio max"] = "-"
            rows.append(row)
        shard_rows: List[Dict[str, object]] = []
        for shard in self.partial.shard_ids():
            fragments = {
                label: self.partial.series[(shard, label)]
                for label in self.partial.labels()
                if (shard, label) in self.partial.series
            }
            # Every label's fragment covers the same inserts of its shard,
            # so any one of them carries the shard's insert count.
            shard_row: Dict[str, object] = {
                "shard": shard,
                "inserts": next(iter(fragments.values())).count,
            }
            for label, fragment in fragments.items():
                shard_row[label] = fragment.final_size
            shard_rows.append(shard_row)
        return (
            header
            + "\n\n"
            + format_table(rows)
            + "\n\n"
            + format_table(shard_rows)
            + f"\n\nfingerprint: {self.fingerprint()}"
        )
