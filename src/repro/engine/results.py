"""Mergeable partial results: the unit of exchange of the sharded engine.

A sharded run produces metrics in pieces - one piece per (shard, chunk) -
and the pieces must recombine into exactly the result a serial run would
have produced.  Everything here is built around that requirement:

* :class:`SeriesFragment` - the metrics of one mechanism (or the offline
  optimum) over one contiguous range of a shard's inserts: the clock-size
  samples (optionally strided), the final size, the cumulative
  component-retirement count, and - for the pointwise competitive ratios
  - both the mergeable moment statistics and a mergeable
  :class:`~repro.analysis.metrics.QuantileSketch`, which restores
  median / tail percentiles across shards at million-event scale;
* :class:`PartialResult` - a set of fragments keyed by ``(shard, label)``
  plus global event counts.  ``merge`` is the engine's only combining
  operation: fragments of *different* keys union (shards are
  independent), fragments of the *same* key concatenate (chunks of one
  shard), ordered by their start index so the operation is commutative.
  It is associative over every bracketing that only joins
  chunk-contiguous pieces - which every merge order the engine uses
  (chunks in order within a worker, shards in id order at the end)
  satisfies by construction;
* :class:`EngineResult` - the fully merged run: convenience accessors,
  a deterministic text rendering, and a :meth:`EngineResult.fingerprint`
  (SHA-256 over a canonical serialisation) that the CLI prints and the
  tests compare to assert ``--jobs 1`` / ``--jobs N`` bit-identity.

Trajectory samples are taken at shard-local insert indices ``i`` with
``i % stride == 0``.  Sampling is keyed to the *global* shard index, not
the chunk-local one, so fragment concatenation is stride-correct across
chunk boundaries regardless of how the run was chunked.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.analysis.metrics import MergeableStats, QuantileSketch
from repro.exceptions import EngineError

#: Key under which the dynamic offline optimum's fragments are stored.
OFFLINE_LABEL = "offline"

SeriesKey = Tuple[int, str]


@dataclass(frozen=True)
class SeriesFragment:
    """Metrics of one label over one contiguous insert range of one shard.

    ``start`` and ``count`` are in shard-local insert coordinates:
    the fragment covers inserts ``start .. start + count - 1`` of its
    shard's sub-stream.  ``samples`` holds the clock sizes at the covered
    indices divisible by ``stride``; ``final_size`` is the clock size at
    the fragment's end (after its last covered insert *and* any trailing
    expire / epoch ticks the producing chunk delivered).
    ``ratios`` summarises the pointwise online/offline ratios of the
    covered inserts (empty for the offline label itself, and when the
    run disabled the optimum); ``sketch`` is the mergeable quantile
    companion of the same samples, restoring median / tail percentiles
    across shards (``None`` when no ratios were recorded).  ``retired``
    is the label's *cumulative* component-retirement count as of the
    fragment's end, 0 forever for append-only mechanisms.

    A fragment with ``count == 0`` is a *lifecycle-update* record: a
    chunk that covered no inserts but whose expire / epoch ticks moved
    the mechanism's clock (a window-aware mechanism retiring between
    inserts, an epoch rebuild on an otherwise idle shard).  It
    contributes no samples or ratios; its ``final_size`` / ``retired``
    are the state at its range end, which merging carries forward.

    ``stamp_digest`` is the cumulative 64-bit timestamp digest as of the
    fragment's end (see :func:`repro.core.kernel.fold_stamp_values`),
    recorded only by runs with the timestamping stage enabled
    (``EngineConfig.timestamps``); like ``retired`` it is cumulative, so
    merging carries the temporally later fragment's value.  ``None``
    fragments (the offline series, timestamp-less runs) contribute
    nothing to the fingerprint, keeping it unchanged for existing runs.
    """

    start: int
    count: int
    stride: int
    final_size: int
    samples: Tuple[int, ...] = ()
    ratios: MergeableStats = field(default_factory=MergeableStats)
    sketch: Optional[QuantileSketch] = None
    retired: int = 0
    stamp_digest: Optional[int] = None

    @property
    def end(self) -> int:
        """One past the last covered shard-local insert index."""
        return self.start + self.count

    def merge(self, other: "SeriesFragment") -> "SeriesFragment":
        """Concatenate two fragments of the same (shard, label) key.

        Order-insensitive: the fragment with the smaller start index is
        treated as the earlier chunk.  Raises :class:`EngineError` when
        the two ranges are not contiguous (a merge tree that skipped a
        chunk is a driver bug, and silently producing a gapped series
        would poison every downstream statistic).
        """
        earlier, later = (self, other) if self.start <= other.start else (other, self)
        if earlier.stride != later.stride:
            raise EngineError(
                f"cannot merge fragments with strides {earlier.stride} and "
                f"{later.stride}"
            )
        if earlier.end != later.start:
            raise EngineError(
                f"cannot merge non-contiguous fragments: [{earlier.start}, "
                f"{earlier.end}) then [{later.start}, {later.end})"
            )
        if earlier.sketch is None:
            sketch = later.sketch
        elif later.sketch is None:
            sketch = earlier.sketch
        else:
            sketch = earlier.sketch.merge(later.sketch)
        # Contiguity makes ``later`` temporally last, so its carried
        # state (final size, cumulative retirements, cumulative stamp
        # digest) wins even when it is a count-0 lifecycle-update
        # fragment.
        return SeriesFragment(
            start=earlier.start,
            count=earlier.count + later.count,
            stride=earlier.stride,
            final_size=later.final_size,
            samples=earlier.samples + later.samples,
            ratios=earlier.ratios.merge(later.ratios),
            sketch=sketch,
            retired=later.retired,
            stamp_digest=(
                later.stamp_digest
                if later.stamp_digest is not None
                else earlier.stamp_digest
            ),
        )


@dataclass(frozen=True)
class PartialResult:
    """The mergeable metrics of any subset of a run's (shard, chunk) grid.

    ``series`` maps ``(shard_id, label)`` to that pair's fragment;
    ``inserts`` / ``expires`` / ``epochs`` count the stream events and
    epoch boundaries the subset covered (epochs sum across shards: each
    shard ticks its own).  Treat instances as immutable: ``merge``
    returns a new object and never mutates either operand's mapping.
    """

    inserts: int = 0
    expires: int = 0
    epochs: int = 0
    series: Mapping[SeriesKey, SeriesFragment] = field(default_factory=dict)

    def merge(self, other: "PartialResult") -> "PartialResult":
        """Combine two partials (see the module docstring for the algebra)."""
        merged: Dict[SeriesKey, SeriesFragment] = dict(self.series)
        for key, fragment in other.series.items():
            existing = merged.get(key)
            merged[key] = fragment if existing is None else existing.merge(fragment)
        return PartialResult(
            inserts=self.inserts + other.inserts,
            expires=self.expires + other.expires,
            epochs=self.epochs + other.epochs,
            series=merged,
        )

    def shard_ids(self) -> Tuple[int, ...]:
        return tuple(sorted({shard for shard, _ in self.series}))

    def labels(self) -> Tuple[str, ...]:
        return tuple(sorted({label for _, label in self.series}))

    def fragment(self, shard_id: int, label: str) -> SeriesFragment:
        try:
            return self.series[(shard_id, label)]
        except KeyError:
            raise EngineError(
                f"no series recorded for shard {shard_id}, label {label!r}"
            ) from None


def merge_partials(partials: List[PartialResult]) -> PartialResult:
    """Left-fold ``partials`` in list order into one result."""
    merged = PartialResult()
    for partial in partials:
        merged = merged.merge(partial)
    return merged


@dataclass(frozen=True)
class EngineResult:
    """A fully merged sharded run, plus the configuration that shaped it.

    The identity of a run's numbers is exactly ``(scenario parameters,
    root seed, shard structure, chunk size, window, mechanisms)`` - and
    deliberately *not* the worker count or executor backend, which is the
    engine's central determinism guarantee.  :meth:`fingerprint` distils
    the merged metrics into one hex digest so that guarantee is cheap to
    assert from tests and visible from the CLI.
    """

    scenario: str
    num_shards: int
    strategy: str
    seed: int
    window: Optional[int]
    chunk_size: int
    mechanisms: Tuple[str, ...]
    partial: PartialResult

    @property
    def inserts(self) -> int:
        return self.partial.inserts

    @property
    def expires(self) -> int:
        return self.partial.expires

    @property
    def epochs(self) -> int:
        return self.partial.epochs

    def final_sizes(self, label: str) -> Dict[int, int]:
        """Final clock size per shard for one mechanism label."""
        return {
            shard: fragment.final_size
            for (shard, lbl), fragment in self.partial.series.items()
            if lbl == label
        }

    def retired_components(self, label: str) -> int:
        """Total components retired by one label, summed over shards."""
        return sum(
            fragment.retired
            for (_, lbl), fragment in self.partial.series.items()
            if lbl == label
        )

    def pooled_ratios(self, label: str) -> MergeableStats:
        """Competitive-ratio statistics pooled over every shard."""
        pooled = MergeableStats()
        for shard in self.partial.shard_ids():
            key = (shard, label)
            if key in self.partial.series:
                pooled = pooled.merge(self.partial.series[key].ratios)
        return pooled

    def pooled_ratio_sketch(self, label: str) -> Optional[QuantileSketch]:
        """Mergeable quantile sketch of the ratios, pooled over shards.

        Folded in shard-id order (the fixed merge tree), so the result -
        and the percentiles derived from it - is identical across
        ``--jobs`` values.  ``None`` when no shard recorded ratios for
        the label (the offline series, or optimum-less runs).
        """
        pooled: Optional[QuantileSketch] = None
        for shard in self.partial.shard_ids():
            fragment = self.partial.series.get((shard, label))
            if fragment is None or fragment.sketch is None:
                continue
            pooled = fragment.sketch if pooled is None else pooled.merge(fragment.sketch)
        return pooled

    def shard_loads(self) -> Dict[int, int]:
        """Insert count per shard, including shards that received nothing.

        (An empty shard freezes no fragment, so it would be invisible in
        ``partial.series``; the skew check needs to see its zero.)
        """
        loads: Dict[int, int] = {shard: 0 for shard in range(self.num_shards)}
        for (shard, _), fragment in self.partial.series.items():
            loads[shard] = fragment.count
        return loads

    def shard_skew(self) -> float:
        """Max/min shard load ratio (``inf`` when a shard got nothing).

        The hash strategy can skew badly when the thread population is
        tiny relative to the shard count; the CLI warns when this ratio
        exceeds its ``--skew-warn`` bound.  1.0 for runs with at most one
        shard or no inserts at all.
        """
        loads = self.shard_loads()
        if len(loads) <= 1:
            return 1.0
        heaviest = max(loads.values())
        lightest = min(loads.values())
        if heaviest == 0:
            return 1.0
        if lightest == 0:
            return math.inf
        return heaviest / lightest

    def _canonical_lines(self) -> List[str]:
        """One line per series, in sorted key order (the fingerprint input).

        Floats are rendered with ``repr`` (shortest exact round-trip), so
        two results fingerprint equal iff their metrics are bit-identical.
        """
        lines = [
            f"scenario={self.scenario} shards={self.num_shards} "
            f"strategy={self.strategy} seed={self.seed} window={self.window} "
            f"chunk={self.chunk_size} inserts={self.inserts} "
            f"expires={self.expires} epochs={self.epochs}"
        ]
        for (shard, label), frag in sorted(self.partial.series.items()):
            stats = frag.ratios
            sketch = frag.sketch
            if sketch is not None and sketch.count:
                quantiles = (
                    f"{sketch.percentile(50.0)!r}/{sketch.percentile(95.0)!r}"
                )
            else:
                quantiles = "-"
            # The stamp-digest suffix appears only when the timestamping
            # stage ran, so fingerprints of existing (timestamp-less)
            # configurations are byte-identical to previous releases.
            digest_suffix = (
                f" stamps={frag.stamp_digest:#018x}"
                if frag.stamp_digest is not None
                else ""
            )
            lines.append(
                f"shard={shard} label={label} start={frag.start} "
                f"count={frag.count} stride={frag.stride} "
                f"final={frag.final_size} retired={frag.retired} "
                f"samples={frag.samples!r} "
                f"ratio_count={stats.count} ratio_mean={stats.mean!r} "
                f"ratio_m2={stats.m2!r} ratio_min={stats.minimum!r} "
                f"ratio_max={stats.maximum!r} ratio_p50_p95={quantiles}"
                + digest_suffix
            )
        return lines

    def fingerprint(self) -> str:
        """SHA-256 hex digest of the canonical metric serialisation."""
        digest = hashlib.sha256()
        for line in self._canonical_lines():
            digest.update(line.encode("utf-8"))
            digest.update(b"\n")
        return digest.hexdigest()

    def format(self) -> str:
        """Deterministic text report: per-mechanism pooled metrics + shards."""
        from repro.analysis.report import format_table

        header = (
            f"engine run: scenario={self.scenario} shards={self.num_shards} "
            f"({self.strategy}) seed={self.seed} "
            f"window={self.window if self.window is not None else '-'} "
            f"chunk={self.chunk_size}\n"
            f"events: {self.inserts} inserts, {self.expires} expires, "
            f"{self.epochs} epoch boundaries"
        )
        rows: List[Dict[str, object]] = []
        for label in self.partial.labels():
            finals = self.final_sizes(label)
            stats = self.pooled_ratios(label)
            sketch = self.pooled_ratio_sketch(label)
            row: Dict[str, object] = {
                "series": label,
                "final(sum)": sum(finals.values()),
                "final(max)": max(finals.values()) if finals else 0,
                "retired": self.retired_components(label),
            }
            if stats.count:
                row["ratio mean"] = f"{stats.mean:.3f}"
                row["ratio max"] = f"{stats.maximum:.3f}"
            else:
                row["ratio mean"] = "-"
                row["ratio max"] = "-"
            if sketch is not None and sketch.count:
                row["ratio p50"] = f"{sketch.percentile(50.0):.3f}"
                row["ratio p95"] = f"{sketch.percentile(95.0):.3f}"
            else:
                row["ratio p50"] = "-"
                row["ratio p95"] = "-"
            rows.append(row)
        shard_rows: List[Dict[str, object]] = []
        for shard in self.partial.shard_ids():
            fragments = {
                label: self.partial.series[(shard, label)]
                for label in self.partial.labels()
                if (shard, label) in self.partial.series
            }
            # Every label's fragment covers the same inserts of its shard,
            # so any one of them carries the shard's insert count.
            shard_row: Dict[str, object] = {
                "shard": shard,
                "inserts": next(iter(fragments.values())).count,
            }
            for label, fragment in fragments.items():
                shard_row[label] = fragment.final_size
            shard_rows.append(shard_row)
        return (
            header
            + "\n\n"
            + format_table(rows)
            + "\n\n"
            + format_table(shard_rows)
            + f"\n\nfingerprint: {self.fingerprint()}"
        )
