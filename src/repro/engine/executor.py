"""Task execution backends: serial in-process, or a persistent worker pool.

The engine's unit of physical parallelism is a *task* - one shard (or
shard group) of an engine run, or one cell-trial of a ratio sweep.
Tasks are pure functions of their (picklable) arguments, so the only
thing a backend may influence is wall-clock time: results are returned
in task order no matter which worker finished first, and every consumer
folds them in that order.  That discipline - deterministic task
decomposition plus order-preserving collection - is what makes
``--jobs N`` (and ``--workers N``) bit-identical to serial.

Two backends:

* **serial** (``jobs <= 1``): a plain in-process loop.  This is also the
  backend the test suite exercises most, because it produces *the same
  partial-result structure* as the pool (same chunks, same merge order) -
  the parallel path differs only in where the work ran;
* **pooled** (``jobs > 1``): :class:`WorkerPool`, a persistent pool of
  ``spawn`` processes.  Workers are created **once** per :meth:`map`
  call and then fed tasks over a queue until a sentinel retires them, so
  the interpreter spawn + package re-import cost is paid per *worker*,
  not per *task* - the amortisation that the old spawn-per-task
  ``concurrent.futures`` backend lacked, and the reason ``--jobs 2`` on
  a many-shard run used to measure *slower* than serial.  ``spawn`` is
  still chosen over ``fork`` deliberately: workers re-import the package
  from a clean interpreter (no inherited mutable module state to diverge
  on) and behave identically on Linux/macOS/Windows.

The pool's telemetry (active-registry runs only) makes the amortisation
measurable: ``pool.worker_spawn_s`` observes each worker's spawn-to-ready
latency, ``pool.tasks_per_worker`` the final task distribution, and
``pool.task_wait_s`` the time each task sat queued before a worker
picked it up; the ``executor.pool`` span brackets the whole
spawn + compute + retire window.  All of it flows through gauges,
histograms and spans - never counters - so merged counter telemetry
stays bit-identical across worker counts.

The task callable must be a module-level function (picklable by
qualified name) and every task argument and result must be picklable -
properties of the engine's frozen config dataclasses and mergeable
partials by construction.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as queue_module
import traceback
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from repro.exceptions import EngineError
from repro.obs.registry import active as _metrics_active

Task = TypeVar("Task")
Result = TypeVar("Result")

#: How long the collector blocks on the result queue before checking
#: worker liveness (a crashed worker never sends a result, so without
#: this the parent would wait forever on an empty queue).
LIVENESS_INTERVAL_S = 1.0

#: Grace period for a retiring worker to drain and exit before the pool
#: escalates to termination.
JOIN_TIMEOUT_S = 10.0

_PENDING = object()

#: Message kinds on the result queue (worker -> parent).
_READY = "ready"
_DONE = "done"
_ERROR = "error"


def _shippable_error(error: BaseException) -> BaseException:
    """``error`` if it survives pickling, else a faithful stand-in.

    The worker's exception must cross a process boundary with its type
    intact when possible - :class:`~repro.engine.runner.EngineInterrupted`
    carries resume semantics the parent's callers match on.  Exceptions
    whose state defeats pickling degrade to an :class:`EngineError`
    carrying the formatted traceback, so the failure is never silently
    replaced by a queue serialisation error.
    """
    try:
        pickle.loads(pickle.dumps(error))
    except Exception:
        detail = "".join(
            traceback.format_exception(type(error), error, error.__traceback__)
        )
        return EngineError(f"worker task failed (unpicklable exception):\n{detail}")
    return error


def _pool_worker(worker_id: int, task_queue, result_queue) -> None:
    """The worker loop: announce readiness, then drain tasks to a sentinel.

    Runs in a spawned child.  Each message back to the parent carries the
    worker id and the time the worker spent blocked waiting for that item
    (the parent folds the waits into ``pool.task_wait_s``); results and
    errors are made shippable before they hit the queue.
    """
    result_queue.put((_READY, worker_id, None, 0.0))
    while True:
        waited_from = perf_counter()
        item = task_queue.get()
        waited = perf_counter() - waited_from
        if item is None:
            break
        index, fn, task = item
        try:
            result = fn(task)
        except BaseException as error:  # ship it, whatever it was
            result_queue.put((_ERROR, worker_id, (index, _shippable_error(error)), waited))
        else:
            try:
                result_queue.put((_DONE, worker_id, (index, result), waited))
            except Exception as error:
                result_queue.put(
                    (_ERROR, worker_id, (index, _shippable_error(error)), waited)
                )


class WorkerPool:
    """A persistent pool of spawn workers fed over a task queue.

    One :meth:`map` call spawns ``min(workers, len(tasks))`` processes
    *once*, queues every task (then one retirement sentinel per worker),
    and collects results as workers finish - re-ordered to task order
    before returning, so scheduling can never leak into a merge.  A
    worker that raises ships its exception back (original type when
    picklable); the pool then terminates the remaining workers and
    re-raises in the parent.  A worker that *dies* - OOM kill, segfault -
    can never send a result, so the collector polls liveness every
    :data:`LIVENESS_INTERVAL_S` and raises :class:`EngineError` once no
    live worker remains while tasks are still owed.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise EngineError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def map(self, fn: Callable[[Task], Result], tasks: Sequence[Task]) -> List[Result]:
        """Run ``fn`` over ``tasks`` on the pool; results in task order."""
        tasks = list(tasks)
        if self.workers <= 1 or len(tasks) <= 1:
            return [fn(task) for task in tasks]
        return self._map_pooled(fn, tasks)

    def _map_pooled(
        self, fn: Callable[[Task], Result], tasks: List[Task]
    ) -> List[Result]:
        registry = _metrics_active()
        worker_count = min(self.workers, len(tasks))
        context = multiprocessing.get_context("spawn")
        task_queue = context.Queue()
        result_queue = context.Queue()
        for index, task in enumerate(tasks):
            task_queue.put((index, fn, task))
        for _ in range(worker_count):
            task_queue.put(None)
        pool_started = perf_counter()
        if registry is not None:
            registry.gauge("pool.workers", worker_count)
            # Kept under the historical key too, so existing dashboards
            # reading the spawn-per-task era's gauge keep working.
            registry.gauge("executor.workers", worker_count)
        processes = []
        spawn_started: Dict[int, float] = {}
        for worker_id in range(worker_count):
            process = context.Process(
                target=_pool_worker,
                args=(worker_id, task_queue, result_queue),
                daemon=True,
            )
            spawn_started[worker_id] = perf_counter()
            process.start()
            processes.append(process)
        results: List[object] = [_PENDING] * len(tasks)
        tasks_done: Dict[int, int] = {worker_id: 0 for worker_id in range(worker_count)}
        pending = len(tasks)
        failure: Optional[BaseException] = None
        try:
            while pending:
                try:
                    kind, worker_id, payload, waited = result_queue.get(
                        timeout=LIVENESS_INTERVAL_S
                    )
                except queue_module.Empty:
                    # Workers retire only after a sentinel, which sits
                    # *behind* every task - so an early exit with work
                    # still owed means siblings drained the queue while
                    # this one crashed.  Only the all-dead case is
                    # conclusive: its claimed task can no longer arrive.
                    if all(not process.is_alive() for process in processes):
                        raise EngineError(
                            f"worker pool died with {pending} task(s) "
                            f"unfinished (a worker was killed before "
                            f"returning its result)"
                        )
                    continue
                if kind == _READY:
                    if registry is not None:
                        registry.observe(
                            "pool.worker_spawn_s",
                            perf_counter() - spawn_started[worker_id],
                        )
                    continue
                if registry is not None:
                    registry.observe("pool.task_wait_s", waited)
                if kind == _ERROR:
                    _index, failure = payload
                    break
                index, result = payload
                results[index] = result
                tasks_done[worker_id] += 1
                pending -= 1
        finally:
            self._drain_ready(result_queue, registry, spawn_started)
            self._shutdown(processes, abandon=pending > 0)
            task_queue.close()
            result_queue.close()
        if failure is not None:
            raise failure
        if registry is not None:
            for worker_id in range(worker_count):
                registry.observe("pool.tasks_per_worker", tasks_done[worker_id])
            registry.record_span(
                "executor.pool",
                pool_started,
                perf_counter() - pool_started,
                (("tasks", len(tasks)), ("workers", worker_count)),
            )
        return results  # type: ignore[return-value]

    @staticmethod
    def _drain_ready(result_queue, registry, spawn_started: Dict[int, float]) -> None:
        """Consume any late ``ready`` announcements still queued.

        A worker spawned slowly enough that its siblings finished the
        whole task list still reports readiness; draining keeps the
        spawn histogram complete and the queue's feeder thread happy.
        """
        while True:
            try:
                kind, worker_id, _payload, _waited = result_queue.get_nowait()
            except (queue_module.Empty, OSError, ValueError):
                return
            if kind == _READY and registry is not None:
                registry.observe(
                    "pool.worker_spawn_s",
                    perf_counter() - spawn_started[worker_id],
                )

    @staticmethod
    def _shutdown(processes, abandon: bool) -> None:
        """Retire the pool: join politely, terminate whatever won't go.

        ``abandon`` (an error or interrupt left tasks unfinished) skips
        straight to termination - the queued sentinels may never be
        reached behind abandoned tasks, so a polite join could hang.
        """
        if abandon:
            for process in processes:
                if process.is_alive():
                    process.terminate()
        for process in processes:
            process.join(timeout=JOIN_TIMEOUT_S)
        for process in processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=JOIN_TIMEOUT_S)


def execute_tasks(
    fn: Callable[[Task], Result],
    tasks: Sequence[Task],
    jobs: int = 1,
) -> List[Result]:
    """Run ``fn`` over ``tasks``, returning results in task order.

    ``jobs <= 1`` runs serially in-process; ``jobs > 1`` rides a
    :class:`WorkerPool` of at most ``min(jobs, len(tasks))`` workers.
    Either way the result list index ``i`` corresponds to ``tasks[i]``,
    so downstream merges are independent of scheduling.
    """
    if jobs < 0:
        raise EngineError(f"jobs must be >= 0, got {jobs}")
    tasks = list(tasks)
    if jobs <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    return WorkerPool(jobs).map(fn, tasks)


class ShardExecutor:
    """A reusable backend selection: ``jobs`` workers over shard tasks.

    Thin by design - the determinism story lives in the task
    decomposition and the order-preserving :func:`execute_tasks`, not
    here - but it gives the runner and the ratio sweep one shared knob
    and one place to validate it.
    """

    def __init__(self, jobs: int = 1) -> None:
        if jobs < 0:
            raise EngineError(f"jobs must be >= 0, got {jobs}")
        self.jobs = jobs

    @property
    def is_serial(self) -> bool:
        return self.jobs <= 1

    def map(
        self, fn: Callable[[Task], Result], tasks: Sequence[Task]
    ) -> List[Result]:
        """Execute ``tasks`` on this backend; results in task order."""
        return execute_tasks(fn, tasks, jobs=self.jobs)
