"""Task execution backends: serial in-process, or a multiprocess pool.

The engine's unit of physical parallelism is a *task* - one shard of an
engine run, or one cell-trial of a ratio sweep.  Tasks are pure
functions of their (picklable) arguments, so the only thing a backend
may influence is wall-clock time: results are returned in task order no
matter which worker finished first, and every consumer folds them in
that order.  That discipline - deterministic task decomposition plus
order-preserving collection - is what makes ``--jobs N`` bit-identical
to ``--jobs 1``.

Two backends:

* **serial** (``jobs <= 1``): a plain in-process loop.  This is also the
  backend the test suite exercises most, because it produces *the same
  partial-result structure* as the pool (same chunks, same merge order) -
  the parallel path differs only in where the work ran;
* **multiprocess** (``jobs > 1``): a ``concurrent.futures``
  process pool over the ``spawn`` start method.  ``spawn`` is chosen over
  ``fork`` deliberately: workers re-import the package from a clean
  interpreter (no inherited mutable module state to diverge on), it
  behaves identically on Linux/macOS/Windows, and the re-import is
  amortised over chunked million-event shards.

The task callable must be a module-level function (picklable by
qualified name) and every task argument must be picklable - both are
properties of the engine's frozen config dataclasses by construction.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from time import perf_counter
from typing import Callable, List, Sequence, TypeVar

from repro.exceptions import EngineError
from repro.obs.registry import active as _metrics_active

Task = TypeVar("Task")
Result = TypeVar("Result")


def execute_tasks(
    fn: Callable[[Task], Result],
    tasks: Sequence[Task],
    jobs: int = 1,
) -> List[Result]:
    """Run ``fn`` over ``tasks``, returning results in task order.

    ``jobs <= 1`` runs serially in-process; ``jobs > 1`` uses a spawn
    process pool of at most ``min(jobs, len(tasks))`` workers.  Either
    way the result list index ``i`` corresponds to ``tasks[i]``, so
    downstream merges are independent of scheduling.
    """
    if jobs < 0:
        raise EngineError(f"jobs must be >= 0, got {jobs}")
    tasks = list(tasks)
    if jobs <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    context = multiprocessing.get_context("spawn")
    workers = min(jobs, len(tasks))
    registry = _metrics_active()
    if registry is None:
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            return list(pool.map(fn, tasks))
    # The pool span brackets spawn + compute + teardown; together with
    # the per-task spans recorded inside the workers it makes the spawn
    # overhead (the gap between the two) visible in the trace export.
    registry.gauge("executor.workers", workers)
    started = perf_counter()
    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
        results = list(pool.map(fn, tasks))
    registry.record_span(
        "executor.pool",
        started,
        perf_counter() - started,
        (("tasks", len(tasks)), ("workers", workers)),
    )
    return results


class ShardExecutor:
    """A reusable backend selection: ``jobs`` workers over shard tasks.

    Thin by design - the determinism story lives in the task
    decomposition and the order-preserving :func:`execute_tasks`, not
    here - but it gives the runner and the ratio sweep one shared knob
    and one place to validate it.
    """

    def __init__(self, jobs: int = 1) -> None:
        if jobs < 0:
            raise EngineError(f"jobs must be >= 0, got {jobs}")
        self.jobs = jobs

    @property
    def is_serial(self) -> bool:
        return self.jobs <= 1

    def map(
        self, fn: Callable[[Task], Result], tasks: Sequence[Task]
    ) -> List[Result]:
        """Execute ``tasks`` on this backend; results in task order."""
        return execute_tasks(fn, tasks, jobs=self.jobs)
