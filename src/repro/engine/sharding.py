"""Stream sharding: split one event stream into affinity-preserving shards.

The execution engine parallelises a streaming run by partitioning its
event stream into ``num_shards`` sub-streams and running the mechanisms
and the dynamic offline optimum independently per shard (see
:mod:`repro.engine.runner` for why per-shard independence is the unit of
parallelism).  The partitioning must satisfy two contracts:

**Affinity.**  Every event is routed by its *thread* vertex, so all
inserts and expires of one thread land on the same shard, in stream
order.  Because stream generators never emit more expires for an edge
than inserts (the multiset contract of
:mod:`repro.computation.streams`), each shard's sub-stream inherits that
consistency: a shard-local :class:`~repro.graph.incremental.DynamicMatching`
never sees an expire-before-insert.  Routing by thread also keeps each
shard's revealed graph a genuine thread-object bipartite graph - threads
are partitioned, objects may appear on several shards (they are the
monitoring analogue of broadcast state).

**Determinism.**  Shard assignment depends only on ``(num_shards,
strategy, the stream itself)`` - never on Python's randomised ``hash()``,
process identity, worker count, or timing.  Concretely:

* ``hash`` strategy: the shard of thread ``t`` is an FNV-1a hash of the
  ``(type name, repr)`` canonical form of ``t`` (the same
  canonicalisation :func:`repro.online.simulator.reveal_order` uses for
  its sort keys), reduced modulo ``num_shards``.  This is stateless: two
  workers in different processes agree on every assignment without
  communicating, which is what lets each worker re-derive its own shard
  by filtering a regenerated stream.
* ``round-robin`` strategy: threads are assigned to shards cyclically in
  order of *first appearance* in the stream.  This balances shards
  perfectly when thread populations are skewed, at the cost of being
  stateful: an assignment is only reproducible by replaying the stream
  prefix that precedes it.  Workers do exactly that (they scan the full
  stream and keep their shard), so the fallback stays deterministic.

Both strategies therefore guarantee: for a fixed generated stream, the
multiset of (shard, event) pairs - and the order of events within each
shard - is a pure function of the sharder configuration.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Tuple, Union

from repro.computation.streams import INSERT, EventLike, StreamEvent, as_stream_event
from repro.exceptions import EngineError
from repro.graph.bipartite import Vertex
from repro.obs.registry import active as _metrics_active
from repro.seeds import stable_hash

#: The two partitioning strategies (see module docstring).
HASH = "hash"
ROUND_ROBIN = "round-robin"

STRATEGIES = (HASH, ROUND_ROBIN)


def stable_vertex_hash(vertex: Vertex) -> int:
    """A 64-bit hash of a vertex that is stable across processes and runs.

    Delegates to :func:`repro.seeds.stable_hash` - the one FNV-1a fold
    over the ``(type name, repr)`` canonical form that both seed
    derivation and shard placement share, so the two can never drift
    apart.  The determinism caveat is the simulator's: vertices whose
    types define a discriminating ``__repr__`` hash reproducibly
    everywhere.
    """
    return stable_hash(vertex)


class StreamSharder:
    """Route stream events to shards by thread affinity.

    One instance observes one stream (the ``round-robin`` strategy is
    stateful); create a fresh sharder per pass.  The ``hash`` strategy is
    stateless, so reusing an instance is harmless there, but the uniform
    rule keeps call sites strategy-agnostic.
    """

    def __init__(self, num_shards: int, strategy: str = HASH) -> None:
        if num_shards < 1:
            raise EngineError(f"num_shards must be >= 1, got {num_shards}")
        if strategy not in STRATEGIES:
            raise EngineError(
                f"unknown sharding strategy {strategy!r} "
                f"(expected one of: {', '.join(STRATEGIES)})"
            )
        self.num_shards = num_shards
        self.strategy = strategy
        self._round_robin: Dict[Vertex, int] = {}
        # Hash-strategy assignments memoised per thread: the FNV fold
        # runs over the thread's repr, which costs more than the rest of
        # the routing put together on million-event streams.  Purely a
        # cache of a pure function, so the determinism contract is
        # untouched.
        self._hash_cache: Dict[Vertex, int] = {}

    def shard_of(self, thread: Vertex) -> int:
        """The shard owning ``thread`` (assigning it first, if round-robin)."""
        if self.strategy == HASH:
            shard = self._hash_cache.get(thread)
            if shard is None:
                shard = stable_vertex_hash(thread) % self.num_shards
                self._hash_cache[thread] = shard
            return shard
        shard = self._round_robin.get(thread)
        if shard is None:
            shard = len(self._round_robin) % self.num_shards
            self._round_robin[thread] = shard
        return shard

    def split(self, events: Iterable[EventLike]) -> Iterator[Tuple[int, StreamEvent]]:
        """Lazily tag every event of ``events`` with its shard id.

        The stream is consumed exactly once; relative order is preserved
        (and hence preserved within every shard).  Bare ``(thread,
        object)`` pairs are coerced to insert events, as everywhere else.
        Epoch markers carry no thread, so they are *broadcast*: one
        tagged copy per shard, in shard-id order - an epoch boundary is a
        global tick, and every per-shard monitoring agent must observe
        it.  (The broadcast is part of the deterministic replay: resumed
        runs fast-forward by counting tagged events, markers included.)
        """
        for item in events:
            event = as_stream_event(item)
            if event.is_epoch:
                for shard in range(self.num_shards):
                    yield shard, event
                continue
            yield self.shard_of(event.thread), event

    def split_runs(
        self,
        events: Iterable[EventLike],
        shard_id: int,
        cap: Callable[[], int],
        skip: int = 0,
    ) -> Iterator[Tuple[int, Union[List[Tuple[Vertex, Vertex]], StreamEvent, None]]]:
        """One shard's sub-stream as whole insert runs plus boundary events.

        The batched pipeline's replacement for ``split()`` + a per-event
        consumer loop: the routing, filtering and run accumulation all
        happen inside this generator's single loop, so the driver
        resumes once per *run* instead of paying a ``next()`` dispatch
        and a tuple unpack per tagged event.  Yields ``(consumed,
        item)`` where ``item`` is one of:

        * a non-empty ``list`` of ``(thread, object)`` pairs - a run of
          consecutive inserts owned by ``shard_id``, cut at lifecycle
          events, at ``cap()`` (re-evaluated at each run's first insert,
          so the driver's chunk/epoch arithmetic is always current), and
          at end of stream;
        * a :class:`StreamEvent` - an epoch marker or expire owned by
          this shard, preceded by the flush of any open run;
        * ``None`` - the end-of-stream tick, so the driver's final
          ``consumed`` covers the whole stream.

        ``consumed`` counts *tagged* events exactly as a ``split()``
        loop would have (epoch markers are broadcast, one count per
        shard), which keeps checkpoints interchangeable between the
        per-event and batched pipelines.  A run flushed because its cap
        was reached reports the count through its own last insert; runs
        flushed by a boundary event report the count *before* that
        event, whose own yield then accounts for it.

        ``skip`` fast-forwards a resumed shard: that many tagged events
        are consumed - routed through the assignment table, which must
        replay identically - but not yielded.  Raises
        :class:`~repro.exceptions.EngineError` when the stream is
        shorter than ``skip`` (the checkpoint does not match).
        """
        if not (0 <= shard_id < self.num_shards):
            raise EngineError(
                f"shard_id {shard_id} out of range for {self.num_shards} shards"
            )
        num_shards = self.num_shards
        shard_of = self.shard_of
        consumed = 0
        run: List[Tuple[Vertex, Vertex]] = []
        room = 0
        # Per-shard load telemetry: events this shard actually owns
        # (fast-forwarded ones excluded - their loads were counted by the
        # original pass).  One key per shard id, so snapshots merged
        # across workers never collide.  Disabled cost: one local ``is
        # not None`` check per owned event.
        registry = _metrics_active()
        own_events = 0
        try:
            for item in events:
                event = as_stream_event(item)
                if event.is_epoch:
                    before = consumed
                    consumed += num_shards
                    # This shard's copy of the broadcast is the
                    # (shard_id+1)-th; a checkpoint taken after it covers it.
                    if before + shard_id + 1 <= skip:
                        continue
                    if registry is not None:
                        own_events += 1
                    if run:
                        yield before, run
                        run = []
                    yield consumed, event
                    continue
                consumed += 1
                thread = event.thread
                if consumed <= skip:
                    # Keep the round-robin table identical to the original
                    # pass; the consumers' state already covers this event.
                    shard_of(thread)
                    continue
                if shard_of(thread) != shard_id:
                    continue
                if registry is not None:
                    own_events += 1
                if event.kind == INSERT:
                    if not run:
                        room = cap()
                    run.append((thread, event.obj))
                    if len(run) >= room:
                        yield consumed, run
                        run = []
                    continue
                if run:
                    yield consumed - 1, run
                    run = []
                yield consumed, event
            if consumed < skip:
                raise EngineError(
                    f"stream exhausted while fast-forwarding shard {shard_id} to "
                    f"event {skip}; the checkpoint does not match this stream"
                )
            if run:
                yield consumed, run
            yield consumed, None
        finally:
            if registry is not None and own_events:
                registry.add(f"sharder.shard[{shard_id}].events", own_events)

    def select(
        self, events: Iterable[EventLike], shard_id: int
    ) -> Iterator[StreamEvent]:
        """The sub-stream of one shard.

        Scans the whole input (the round-robin assignment table must see
        every thread's first appearance), yielding only events owned by
        ``shard_id``.  This is how a worker re-derives its shard from a
        regenerated stream without any cross-process communication.
        """
        if not (0 <= shard_id < self.num_shards):
            raise EngineError(
                f"shard_id {shard_id} out of range for {self.num_shards} shards"
            )
        for shard, event in self.split(events):
            if shard == shard_id:
                yield event
