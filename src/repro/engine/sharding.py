"""Stream sharding: split one event stream into affinity-preserving shards.

The execution engine parallelises a streaming run by partitioning its
event stream into ``num_shards`` sub-streams and running the mechanisms
and the dynamic offline optimum independently per shard (see
:mod:`repro.engine.runner` for why per-shard independence is the unit of
parallelism).  The partitioning must satisfy two contracts:

**Affinity.**  Every event is routed by its *thread* vertex, so all
inserts and expires of one thread land on the same shard, in stream
order.  Because stream generators never emit more expires for an edge
than inserts (the multiset contract of
:mod:`repro.computation.streams`), each shard's sub-stream inherits that
consistency: a shard-local :class:`~repro.graph.incremental.DynamicMatching`
never sees an expire-before-insert.  Routing by thread also keeps each
shard's revealed graph a genuine thread-object bipartite graph - threads
are partitioned, objects may appear on several shards (they are the
monitoring analogue of broadcast state).

**Determinism.**  Shard assignment depends only on ``(num_shards,
strategy, the stream itself)`` - never on Python's randomised ``hash()``,
process identity, worker count, or timing.  Concretely:

* ``hash`` strategy: the shard of thread ``t`` is an FNV-1a hash of the
  ``(type name, repr)`` canonical form of ``t`` (the same
  canonicalisation :func:`repro.online.simulator.reveal_order` uses for
  its sort keys), reduced modulo ``num_shards``.  This is stateless: two
  workers in different processes agree on every assignment without
  communicating, which is what lets each worker re-derive its own shard
  by filtering a regenerated stream.
* ``round-robin`` strategy: threads are assigned to shards cyclically in
  order of *first appearance* in the stream.  This balances shards
  perfectly when thread populations are skewed, at the cost of being
  stateful: an assignment is only reproducible by replaying the stream
  prefix that precedes it.  Workers do exactly that (they scan the full
  stream and keep their shard), so the fallback stays deterministic.

Both strategies therefore guarantee: for a fixed generated stream, the
multiset of (shard, event) pairs - and the order of events within each
shard - is a pure function of the sharder configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.computation.streams import INSERT, EventLike, StreamEvent, as_stream_event
from repro.exceptions import EngineError
from repro.graph.bipartite import Vertex
from repro.obs.registry import active as _metrics_active
from repro.seeds import stable_hash

#: The two partitioning strategies (see module docstring).
HASH = "hash"
ROUND_ROBIN = "round-robin"

STRATEGIES = (HASH, ROUND_ROBIN)


@dataclass(frozen=True)
class ShardGroup:
    """A contiguous block of shard ids owned by one worker.

    The worker-pooled engine's scheduling unit: a worker that owns a
    group generates the base stream *once* and routes events to every
    owned shard in a single pass (see
    :meth:`StreamSharder.split_runs_group`), instead of paying one full
    stream regeneration per shard the way per-shard tasks do.  Groups
    are purely physical - which shards share a pass never changes any
    shard's event sequence, so the merged result is bit-identical across
    group plans.
    """

    group_id: int
    shard_ids: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.shard_ids:
            raise EngineError("a shard group must own at least one shard")
        if list(self.shard_ids) != sorted(set(self.shard_ids)):
            raise EngineError(
                f"group shard ids must be strictly increasing, "
                f"got {self.shard_ids!r}"
            )


def plan_shard_groups(num_shards: int, workers: int) -> Tuple[ShardGroup, ...]:
    """Partition ``num_shards`` shard ids into ``workers`` contiguous groups.

    Deterministic balanced round-robin: group sizes differ by at most
    one, the ``num_shards % workers`` oversized groups are dealt to the
    lowest group ids in order, and shard ids stay contiguous and
    ascending within (and across) groups - so flattening the plan's
    groups in group-id order recovers ``0 .. num_shards - 1`` exactly,
    which is what keeps the engine's shard-id-sorted merge tree intact.
    ``workers`` above ``num_shards`` clamps (a worker with no shards
    would idle); the plan is a pure function of ``(num_shards,
    workers)``.
    """
    if num_shards < 1:
        raise EngineError(f"num_shards must be >= 1, got {num_shards}")
    if workers < 1:
        raise EngineError(f"workers must be >= 1, got {workers}")
    workers = min(workers, num_shards)
    base, extra = divmod(num_shards, workers)
    groups: List[ShardGroup] = []
    start = 0
    for group_id in range(workers):
        size = base + (1 if group_id < extra else 0)
        groups.append(
            ShardGroup(group_id, tuple(range(start, start + size)))
        )
        start += size
    return tuple(groups)


def stable_vertex_hash(vertex: Vertex) -> int:
    """A 64-bit hash of a vertex that is stable across processes and runs.

    Delegates to :func:`repro.seeds.stable_hash` - the one FNV-1a fold
    over the ``(type name, repr)`` canonical form that both seed
    derivation and shard placement share, so the two can never drift
    apart.  The determinism caveat is the simulator's: vertices whose
    types define a discriminating ``__repr__`` hash reproducibly
    everywhere.
    """
    return stable_hash(vertex)


class StreamSharder:
    """Route stream events to shards by thread affinity.

    One instance observes one stream (the ``round-robin`` strategy is
    stateful); create a fresh sharder per pass.  The ``hash`` strategy is
    stateless, so reusing an instance is harmless there, but the uniform
    rule keeps call sites strategy-agnostic.
    """

    def __init__(self, num_shards: int, strategy: str = HASH) -> None:
        if num_shards < 1:
            raise EngineError(f"num_shards must be >= 1, got {num_shards}")
        if strategy not in STRATEGIES:
            raise EngineError(
                f"unknown sharding strategy {strategy!r} "
                f"(expected one of: {', '.join(STRATEGIES)})"
            )
        self.num_shards = num_shards
        self.strategy = strategy
        self._round_robin: Dict[Vertex, int] = {}
        # Hash-strategy assignments memoised per thread: the FNV fold
        # runs over the thread's repr, which costs more than the rest of
        # the routing put together on million-event streams.  Purely a
        # cache of a pure function, so the determinism contract is
        # untouched.
        self._hash_cache: Dict[Vertex, int] = {}

    def shard_of(self, thread: Vertex) -> int:
        """The shard owning ``thread`` (assigning it first, if round-robin)."""
        if self.strategy == HASH:
            shard = self._hash_cache.get(thread)
            if shard is None:
                shard = stable_vertex_hash(thread) % self.num_shards
                self._hash_cache[thread] = shard
            return shard
        shard = self._round_robin.get(thread)
        if shard is None:
            shard = len(self._round_robin) % self.num_shards
            self._round_robin[thread] = shard
        return shard

    def split(self, events: Iterable[EventLike]) -> Iterator[Tuple[int, StreamEvent]]:
        """Lazily tag every event of ``events`` with its shard id.

        The stream is consumed exactly once; relative order is preserved
        (and hence preserved within every shard).  Bare ``(thread,
        object)`` pairs are coerced to insert events, as everywhere else.
        Epoch markers carry no thread, so they are *broadcast*: one
        tagged copy per shard, in shard-id order - an epoch boundary is a
        global tick, and every per-shard monitoring agent must observe
        it.  (The broadcast is part of the deterministic replay: resumed
        runs fast-forward by counting tagged events, markers included.)
        """
        for item in events:
            event = as_stream_event(item)
            if event.is_epoch:
                for shard in range(self.num_shards):
                    yield shard, event
                continue
            yield self.shard_of(event.thread), event

    def split_runs(
        self,
        events: Iterable[EventLike],
        shard_id: int,
        cap: Callable[[], int],
        skip: int = 0,
    ) -> Iterator[Tuple[int, Union[List[Tuple[Vertex, Vertex]], StreamEvent, None]]]:
        """One shard's sub-stream as whole insert runs plus boundary events.

        The batched pipeline's replacement for ``split()`` + a per-event
        consumer loop: the routing, filtering and run accumulation all
        happen inside this generator's single loop, so the driver
        resumes once per *run* instead of paying a ``next()`` dispatch
        and a tuple unpack per tagged event.  Yields ``(consumed,
        item)`` where ``item`` is one of:

        * a non-empty ``list`` of ``(thread, object)`` pairs - a run of
          consecutive inserts owned by ``shard_id``, cut at lifecycle
          events, at ``cap()`` (re-evaluated at each run's first insert,
          so the driver's chunk/epoch arithmetic is always current), and
          at end of stream;
        * a :class:`StreamEvent` - an epoch marker or expire owned by
          this shard, preceded by the flush of any open run;
        * ``None`` - the end-of-stream tick, so the driver's final
          ``consumed`` covers the whole stream.

        ``consumed`` counts *tagged* events exactly as a ``split()``
        loop would have (epoch markers are broadcast, one count per
        shard), which keeps checkpoints interchangeable between the
        per-event and batched pipelines.  A run flushed because its cap
        was reached reports the count through its own last insert; runs
        flushed by a boundary event report the count *before* that
        event, whose own yield then accounts for it.

        ``skip`` fast-forwards a resumed shard: that many tagged events
        are consumed - routed through the assignment table, which must
        replay identically - but not yielded.  Raises
        :class:`~repro.exceptions.EngineError` when the stream is
        shorter than ``skip`` (the checkpoint does not match).

        Implemented as the single-shard projection of
        :meth:`split_runs_group`, so the per-shard and group-owned
        drivers can never drift apart on consumed-count or skip
        semantics.
        """
        for _, consumed, item in self.split_runs_group(
            events, (shard_id,), {shard_id: cap}, {shard_id: skip}
        ):
            yield consumed, item

    def split_runs_group(
        self,
        events: Iterable[EventLike],
        shard_ids: Sequence[int],
        caps: Mapping[int, Callable[[], int]],
        skips: Optional[Mapping[int, int]] = None,
    ) -> Iterator[
        Tuple[int, int, Union[List[Tuple[Vertex, Vertex]], StreamEvent, None]]
    ]:
        """Several owned shards' sub-streams, routed in ONE pass.

        The worker-pooled engine's replacement for one ``split_runs``
        pass per shard: a worker that owns ``shard_ids`` consumes the
        base stream once, and every event is routed to (at most) one
        owned shard's accumulation - so stream generation and routing
        are paid once per *worker*, not once per shard.  Yields
        ``(shard_id, consumed, item)`` triples where ``item`` has
        exactly the :meth:`split_runs` meaning (a run of that shard's
        consecutive inserts cut at lifecycle events and at
        ``caps[shard_id]()``; a boundary :class:`StreamEvent`; or the
        shard's ``None`` end-of-stream tick).

        Per-shard semantics are *identical* to a dedicated
        ``split_runs`` pass - same run boundaries, same ``consumed``
        values, same skip arithmetic - which is what keeps checkpoints
        interchangeable between per-shard tasks and group-owned workers
        (a run checkpointed at one ``workers`` count resumes at any
        other).  In particular:

        * ``consumed`` counts tagged events of the *whole* stream (an
          insert owned by a sibling shard still advances every shard's
          count; epoch markers count once per shard of the sharder, not
          of the group), exactly as each shard's own pass would have
          counted them;
        * epoch markers are broadcast to every owned shard in shard-id
          order, each delivery preceded by the flush of that shard's
          open run, and each shard's skip check uses its *own* copy
          position ``before + shard_id + 1`` - so a group resuming
          shards whose checkpoints straddle a broadcast delivers the
          marker only to the shards whose checkpoints do not already
          cover their copy;
        * ``skips[shard_id]`` (default 0) fast-forwards that shard
          independently; the routing table replays for every event
          regardless, because routing *is* the pass.

        End of stream flushes every shard's open run and yields every
        shard's ``None`` tick in shard-id order.  Raises
        :class:`~repro.exceptions.EngineError` when the stream is
        shorter than any shard's skip.
        """
        owned: Tuple[int, ...] = tuple(shard_ids)
        if not owned:
            raise EngineError("split_runs_group needs at least one shard id")
        if list(owned) != sorted(set(owned)):
            raise EngineError(
                f"group shard ids must be strictly increasing, got {owned!r}"
            )
        for shard_id in owned:
            if not (0 <= shard_id < self.num_shards):
                raise EngineError(
                    f"shard_id {shard_id} out of range for "
                    f"{self.num_shards} shards"
                )
            if shard_id not in caps:
                raise EngineError(f"no cap callable for shard {shard_id}")
        skip_of: Dict[int, int] = {
            shard_id: (skips.get(shard_id, 0) if skips is not None else 0)
            for shard_id in owned
        }
        num_shards = self.num_shards
        shard_of = self.shard_of
        own_set = frozenset(owned)
        consumed = 0
        runs: Dict[int, List[Tuple[Vertex, Vertex]]] = {
            shard_id: [] for shard_id in owned
        }
        rooms: Dict[int, int] = {shard_id: 0 for shard_id in owned}
        # Per-shard load telemetry: events each shard actually owns
        # (fast-forwarded ones excluded - their loads were counted by the
        # original pass).  One key per shard id, so snapshots merged
        # across workers never collide.  Disabled cost: one local ``is
        # not None`` check per owned event.
        registry = _metrics_active()
        own_events: Dict[int, int] = {shard_id: 0 for shard_id in owned}
        try:
            for item in events:
                event = as_stream_event(item)
                if event.is_epoch:
                    before = consumed
                    consumed += num_shards
                    for shard_id in owned:
                        # This shard's copy of the broadcast is the
                        # (shard_id+1)-th; a checkpoint taken after it
                        # covers it.
                        if before + shard_id + 1 <= skip_of[shard_id]:
                            continue
                        if registry is not None:
                            own_events[shard_id] += 1
                        run = runs[shard_id]
                        if run:
                            yield shard_id, before, run
                            runs[shard_id] = []
                        yield shard_id, consumed, event
                    continue
                consumed += 1
                thread = event.thread
                shard = shard_of(thread)
                if shard not in own_set:
                    continue
                if consumed <= skip_of[shard]:
                    # The consumers' state already covers this event; the
                    # routing above replayed the assignment table.
                    continue
                if registry is not None:
                    own_events[shard] += 1
                if event.kind == INSERT:
                    run = runs[shard]
                    if not run:
                        rooms[shard] = caps[shard]()
                    run.append((thread, event.obj))
                    if len(run) >= rooms[shard]:
                        yield shard, consumed, run
                        runs[shard] = []
                    continue
                run = runs[shard]
                if run:
                    yield shard, consumed - 1, run
                    runs[shard] = []
                yield shard, consumed, event
            for shard_id in owned:
                if consumed < skip_of[shard_id]:
                    raise EngineError(
                        f"stream exhausted while fast-forwarding shard "
                        f"{shard_id} to event {skip_of[shard_id]}; the "
                        f"checkpoint does not match this stream"
                    )
            for shard_id in owned:
                run = runs[shard_id]
                if run:
                    yield shard_id, consumed, run
                yield shard_id, consumed, None
        finally:
            if registry is not None:
                for shard_id in owned:
                    if own_events[shard_id]:
                        registry.add(
                            f"sharder.shard[{shard_id}].events",
                            own_events[shard_id],
                        )

    def select(
        self, events: Iterable[EventLike], shard_id: int
    ) -> Iterator[StreamEvent]:
        """The sub-stream of one shard.

        Scans the whole input (the round-robin assignment table must see
        every thread's first appearance), yielding only events owned by
        ``shard_id``.  This is how a worker re-derives its shard from a
        regenerated stream without any cross-process communication.
        """
        if not (0 <= shard_id < self.num_shards):
            raise EngineError(
                f"shard_id {shard_id} out of range for {self.num_shards} shards"
            )
        for shard, event in self.split(events):
            if shard == shard_id:
                yield event
