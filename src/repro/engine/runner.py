"""The sharded execution engine: chunked per-shard runs, merged results.

This is the driver that takes any registered ``stream`` scenario from
thousands of events (where the one-pass
:func:`~repro.online.simulator.compare_mechanisms_on_stream` is fine) to
millions (where one process is not).  The design splits the classic
single pass along two axes:

* **shards** - the *logical* partition.  A
  :class:`~repro.engine.sharding.StreamSharder` routes every event by
  thread affinity to one of ``num_shards`` sub-streams, and each shard
  runs its own mechanisms and its own dynamic offline optimum over its
  sub-stream, exactly as a per-shard monitoring agent would.  Shards are
  the semantic unit: results are a function of ``num_shards``, never of
  worker count;
* **chunks** - the *checkpoint* partition.  Within a shard, inserts are
  processed ``chunk_size`` at a time; each chunk boundary freezes the
  chunk's metrics into a mergeable
  :class:`~repro.engine.results.PartialResult` and (when a checkpoint
  directory is configured) persists the shard's full consumer state, so
  an interrupted run resumes from the last completed chunk instead of
  replaying hours of matching work.

Workers never receive events over IPC.  Each worker regenerates the base
stream from the run's root seed (generation is a cheap pure function of
the seed; the matching and mechanism work dominates) and filters it down
to its own shards, which makes tasks pure functions of ``(config,
shard ids)`` - the property the executor needs for
scheduling-independent results.

Two scheduling modes share the per-shard machinery:

* **per-shard tasks** (``jobs``, the original mode): one task per shard,
  so ``num_shards`` tasks each regenerate and re-route the full stream.
  Fine when shards are few and fat; ruinous when ``shards >> jobs``,
  because the fixed per-pass cost (generation + routing) is paid once
  per *shard*;
* **shard-group tasks** (``workers``): :func:`plan_shard_groups` deals
  the shards into ``workers`` contiguous groups, each group becomes one
  task owned by one pool worker, and :func:`run_shard_group` generates
  the stream **once** and routes events to every owned shard in a
  single pass (:meth:`~repro.engine.sharding.StreamSharder.split_runs_group`).
  The fixed per-pass cost is paid once per *worker* - the difference
  between ``--jobs 2`` measuring 0.1x serial and ``--workers 2``
  actually scaling.

Determinism contract (the one the acceptance tests assert): for a fixed
``EngineConfig``, the merged :class:`~repro.engine.results.EngineResult`
is bit-identical across ``jobs`` values, ``workers`` values (including
``None``), executor backends, and interrupt/resume cycles - checkpoints
written under one scheduling mode resume under any other.  Every source
of variation is keyed by :func:`repro.seeds.derive_seed` paths (stream,
per-shard per-mechanism seeds), and every float accumulation follows one
fixed merge tree (chunks in order within a shard, shards in id order at
the end).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.experiments import EXTENDED_MECHANISMS
from repro.analysis.metrics import QuantileSketch, RunningStats
from repro.computation.registry import REGISTRY, STREAM
from repro.computation.streams import EPOCH
from repro.core.components import ClockComponents
from repro.core.kernel import ClockKernel, resolve_backend
from repro.core.timestamping import (
    default_rotation_override,
    resolve_rotation,
    set_default_rotation,
)
from repro.engine.checkpoint import EngineCheckpointManager, ShardCheckpoint
from repro.engine.executor import ShardExecutor
from repro.engine.results import (
    OFFLINE_LABEL,
    EngineResult,
    PartialResult,
    SeriesFragment,
    merge_partials,
)
from repro.engine.sharding import HASH, STRATEGIES, StreamSharder, plan_shard_groups
from repro.exceptions import ClockError, EngineError, ScenarioError
from repro.graph.incremental import DynamicMatching
from repro.obs.registry import active as _metrics_active
from repro.obs.registry import span as _metrics_span
from repro.online.base import THREAD, OnlineMechanism
from repro.online.simulator import seed_mechanism_factories
from repro.seeds import derive_seed

#: Execution pipelines: how events flow through the consumers.  Never part
#: of a run's identity - the merged result is bit-identical across them.
BATCHED = "batched"
PER_EVENT = "per-event"
PIPELINES = (BATCHED, PER_EVENT)

#: Upper bound on one insert run handed to ``observe_batch`` /
#: ``advance_batch`` (bounds working memory; flushing early never changes
#: results, so this is not part of a run's identity either).
MAX_BATCH_EVENTS = 4096


#: EngineConfig fields *deliberately* absent from :meth:`EngineConfig.signature`.
#: Lint rule C203 requires every field to appear either here or as a string
#: key inside ``signature()`` - adding a field without deciding its identity
#: status is the ``timestamps``-in-signature class of bug from PR 5.
NON_SIGNATURE_FIELDS = (
    "checkpoint_dir",        # where state lives, not what is computed
    "max_chunks_per_shard",  # an interrupted run and its resumption are the same run
    "pipeline",              # bit-identical across pipelines by contract
    "backend",               # bit-identical across kernel backends by contract
    "trajectory_stride",     # identity enters via the resolved "stride" key
    "workers",               # physical shard-group scheduling only: the merged
                             # result is bit-identical across worker counts and
                             # to the per-shard jobs mode, so checkpoints cross
                             # worker counts freely (asserted by the tests)
    "rotation",              # execution-only: delta and replay rotation are
                             # verdict- and digest-identical by construction,
                             # and the engine's own timestamping kernels are
                             # append-only so rotation never fires in-shard
)


class EngineInterrupted(EngineError):
    """A run stopped at a chunk boundary before finishing.

    Raised by the ``max_chunks_per_shard`` hook, which exists so tests
    (and operators rehearsing recovery) can interrupt a checkpointed run
    at a deterministic point; a killed process leaves the same on-disk
    state, just less politely.
    """


@dataclass(frozen=True)
class EngineConfig:
    """One sharded run, fully specified.

    Everything that shapes the numbers lives here; everything that only
    shapes the wall-clock (worker count, backend) deliberately does not.
    ``trajectory_stride=0`` means auto: sample roughly a thousand points
    over the whole run so million-event trajectories stay plottable
    without carrying millions of samples per label.  ``epoch_every``
    delivers a shard-local epoch boundary to every mechanism after that
    many of the shard's inserts (on top of any markers the scenario
    emits); it is part of the run's identity - window-aware mechanisms
    restructure their clocks at boundaries - so it lives in the
    signature, unlike ``--jobs``.

    Three fields shape the hot path without (``pipeline``, ``backend``)
    or with (``timestamps``) shaping the numbers:

    * ``pipeline`` - ``"batched"`` (default) consumes each shard's
      inserts in runs cut at lifecycle ticks and chunk/epoch boundaries,
      feeding ``observe_batch`` / ``advance_batch``; ``"per-event"`` is
      the classic one-call-per-event loop.  Bit-identical results; the
      fingerprint proves it.
    * ``backend`` - the kernel backend (``python`` / ``numpy``) for the
      timestamping stage; ``None`` resolves the process default.  The
      numpy backend is gated on numpy importing and never changes a
      single stamp value.
    * ``timestamps`` - when ``True``, every shard actually *mints* a
      timestamp per insert per mechanism label (the monitoring system's
      real output, driven through a per-label :class:`ClockKernel` that
      follows the mechanism's component additions) and folds the stamps
      into a per-label digest carried under the fingerprint.  Part of
      the signature: it adds digest lines to the canonical result.
      Restricted to append-only mechanisms - retirement would require a
      per-shard rotation/replay story, which stays with
      :class:`~repro.online.adaptive.LifecycleClockDriver`.

    ``workers`` selects the shard-group scheduling mode: ``None`` (the
    default) keeps one task per shard driven by ``run_engine``'s
    ``jobs`` argument; an integer deals the shards into that many
    contiguous groups (:func:`plan_shard_groups`), runs each group as
    one pool-worker task that generates the stream once for all its
    shards, and forbids ``jobs > 1`` (the pool is sized by ``workers``).
    Like ``jobs`` it is wall-clock only - the merged result, and every
    checkpoint, is bit-identical across ``workers`` values.

    ``rotation`` pins the process-default epoch-rotation strategy
    (``"delta"`` / ``"replay"``, see
    :func:`repro.core.timestamping.set_default_rotation`) inside every
    shard task, restoring the prior default afterwards.  Execution-only:
    the two strategies are verdict- and digest-identical by
    construction, and the engine's own timestamping kernels are
    append-only, so this knob exists to let benchmarks and operators
    force the replay baseline through one flag rather than the
    environment.
    """

    scenario: str
    num_threads: int = 50
    num_objects: int = 50
    density: float = 0.1
    num_events: int = 20_000
    seed: int = 2019
    num_shards: int = 8
    chunk_size: int = 10_000
    window: Optional[int] = None
    epoch_every: Optional[int] = None
    mechanisms: Tuple[str, ...] = ("naive", "random", "popularity")
    include_offline: bool = True
    strategy: str = HASH
    checkpoint_dir: Optional[str] = None
    trajectory_stride: int = 0
    max_chunks_per_shard: Optional[int] = None
    pipeline: str = BATCHED
    backend: Optional[str] = None
    timestamps: bool = False
    workers: Optional[int] = None
    rotation: Optional[str] = None

    def validate(self) -> None:
        try:
            scenario = REGISTRY.get(self.scenario, kind=STREAM)
        except ScenarioError as error:
            raise EngineError(str(error)) from None
        if self.num_threads < 1 or self.num_objects < 1:
            raise EngineError("num_threads and num_objects must be >= 1")
        if not (0.0 <= self.density <= 1.0):
            raise EngineError(f"density must be in [0, 1], got {self.density}")
        if self.num_events < 0:
            raise EngineError("num_events must be non-negative")
        if self.num_shards < 1:
            raise EngineError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.chunk_size < 1:
            raise EngineError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.window is not None:
            if self.window < 1:
                raise EngineError(f"window must be >= 1, got {self.window}")
            if scenario.expires:
                raise EngineError(
                    f"scenario {self.scenario!r} emits its own expire events; "
                    f"a sliding window cannot be imposed on top"
                )
        if self.epoch_every is not None and self.epoch_every < 1:
            raise EngineError(
                f"epoch_every must be >= 1, got {self.epoch_every}"
            )
        if self.strategy not in STRATEGIES:
            raise EngineError(
                f"unknown sharding strategy {self.strategy!r} "
                f"(expected one of: {', '.join(STRATEGIES)})"
            )
        if not self.mechanisms:
            raise EngineError("at least one mechanism label is required")
        for label in self.mechanisms:
            if label == OFFLINE_LABEL:
                raise EngineError(
                    f"{OFFLINE_LABEL!r} is reserved for the optimum series"
                )
            if label not in EXTENDED_MECHANISMS:
                raise EngineError(
                    f"unknown mechanism {label!r} (expected one of: "
                    f"{', '.join(sorted(EXTENDED_MECHANISMS))})"
                )
        if self.trajectory_stride < 0:
            raise EngineError("trajectory_stride must be >= 0")
        if self.max_chunks_per_shard is not None and self.max_chunks_per_shard < 1:
            raise EngineError("max_chunks_per_shard must be >= 1")
        if self.pipeline not in PIPELINES:
            raise EngineError(
                f"unknown pipeline {self.pipeline!r} "
                f"(expected one of: {', '.join(PIPELINES)})"
            )
        if self.backend is not None:
            try:
                resolve_backend(self.backend)
            except ClockError as error:
                raise EngineError(str(error)) from None
        if self.timestamps:
            for label in self.mechanisms:
                if EXTENDED_MECHANISMS[label](0).window_aware:
                    raise EngineError(
                        f"timestamps=True is limited to append-only "
                        f"mechanisms; {label!r} retires components, which "
                        f"would require per-shard epoch rotation (use "
                        f"LifecycleClockDriver for that)"
                    )
        if self.workers is not None and self.workers < 1:
            raise EngineError(f"workers must be >= 1, got {self.workers}")
        if self.rotation is not None:
            try:
                resolve_rotation(self.rotation)
            except ClockError as error:
                raise EngineError(str(error)) from None

    @property
    def stride(self) -> int:
        """The resolved trajectory sampling stride (see class docstring)."""
        if self.trajectory_stride > 0:
            return self.trajectory_stride
        return max(1, self.num_events // 1024)

    def signature(self) -> Dict[str, object]:
        """The JSON-safe identity of this run's numbers.

        Two configurations with equal signatures produce bit-identical
        merged metrics, so this is what the checkpoint manifest records.
        ``max_chunks_per_shard`` is excluded on purpose: an interrupted
        run and its resumption are the *same* run - and so are
        ``pipeline``, ``backend`` and ``workers``, which by contract
        never change a number (a run checkpointed under one may resume
        under another).  ``timestamps`` *is* identity - it adds digest
        series - but the key is recorded only when set, so checkpoint
        directories written before the timestamping stage existed (whose
        semantics are unchanged) stay resumable.
        """
        signature = {
            "scenario": self.scenario,
            "num_threads": self.num_threads,
            "num_objects": self.num_objects,
            "density": self.density,
            "num_events": self.num_events,
            "seed": self.seed,
            "num_shards": self.num_shards,
            "chunk_size": self.chunk_size,
            "window": self.window,
            "epoch_every": self.epoch_every,
            "mechanisms": list(self.mechanisms),
            "include_offline": self.include_offline,
            "strategy": self.strategy,
            "stride": self.stride,
        }
        if self.timestamps:
            signature["timestamps"] = True
        return signature


@dataclass
class _ShardConsumers:
    """The picklable per-shard run state (what a checkpoint snapshots).

    ``clocks`` / ``stamp_folds`` exist only for timestamping runs: one
    :class:`ClockKernel` per mechanism label (its component set follows
    the mechanism's decisions) and the label's cumulative stamp digest.
    Kernels pickle with their backend reduced to its name, so a resumed
    run can re-pin them to its own ``--backend``.
    """

    mechanisms: Dict[str, OnlineMechanism]
    engine: Optional[DynamicMatching]
    live_window: Optional[Deque[Tuple[object, object]]]
    clocks: Optional[Dict[str, ClockKernel]] = None
    stamp_folds: Optional[Dict[str, int]] = None


class _ChunkBuffers:
    """Accumulators of the chunk in progress, frozen at the boundary."""

    def __init__(self, labels: Tuple[str, ...], start: int, stride: int,
                 include_offline: bool) -> None:
        self.start = start
        self.stride = stride
        self.inserts = 0
        self.expires = 0
        self.epochs = 0
        self.samples: Dict[str, List[int]] = {label: [] for label in labels}
        self.final: Dict[str, int] = {}
        self.retired: Dict[str, int] = {label: 0 for label in labels}
        self.ratios: Dict[str, RunningStats] = {label: RunningStats() for label in labels}
        # The quantile companion of the moment statistics; the offline
        # series has no ratios, so it carries no sketch either.
        self.sketches: Dict[str, QuantileSketch] = (
            {label: QuantileSketch() for label in labels} if include_offline else {}
        )
        if include_offline:
            self.samples[OFFLINE_LABEL] = []
            self.ratios[OFFLINE_LABEL] = RunningStats()

    def freeze(
        self,
        shard_id: int,
        stamp_folds: Optional[Dict[str, int]] = None,
    ) -> PartialResult:
        """The chunk as a mergeable partial.

        Chunks covering no inserts can still carry facts: expire and
        epoch ticks update ``final`` / ``retired`` (a window-aware
        mechanism shrinks between inserts), so a label with recorded
        state freezes to a count-0 *lifecycle-update* fragment - the
        merge algebra takes the temporally later fragment's carried
        values, so a trailing expire-only chunk is not lost.  A label
        with no recorded state (e.g. the offline series of an
        insert-less chunk) freezes to nothing.

        ``stamp_folds`` (timestamping runs) is the per-label cumulative
        digest as of this chunk boundary; it rides on each mechanism
        fragment like the other carried-forward facts.
        """
        series: Dict[Tuple[int, str], SeriesFragment] = {}
        for label, samples in self.samples.items():
            if label not in self.final:
                continue
            series[(shard_id, label)] = SeriesFragment(
                start=self.start,
                count=self.inserts,
                stride=self.stride,
                final_size=self.final[label],
                samples=tuple(samples),
                ratios=self.ratios[label].freeze(),
                sketch=self.sketches.get(label),
                retired=self.retired.get(label, 0),
                stamp_digest=(
                    stamp_folds.get(label) if stamp_folds is not None else None
                ),
            )
        return PartialResult(
            inserts=self.inserts, expires=self.expires, epochs=self.epochs,
            series=series,
        )


def _fresh_consumers(config: EngineConfig, shard_id: int,
                     scenario_expires: bool) -> _ShardConsumers:
    # One root per shard, one child per mechanism label - the same
    # splitting discipline the ratio sweep uses, so a mechanism's
    # randomness depends on *what* it computes, never on worker placement.
    shard_root = derive_seed(config.seed, config.scenario, "shard", shard_id)
    factories = seed_mechanism_factories(
        {label: EXTENDED_MECHANISMS[label] for label in config.mechanisms},
        shard_root,
    )
    mechanisms: Dict[str, OnlineMechanism] = {
        label: factories[label]() for label in config.mechanisms
    }
    engine = (
        DynamicMatching(record_trajectory=False) if config.include_offline else None
    )
    live_window = (
        deque() if (config.window is not None and not scenario_expires) else None
    )
    clocks = None
    stamp_folds = None
    if config.timestamps:
        # One kernel per label, born empty: the mechanism's first
        # decisions extend it before the triggering events are stamped,
        # so every stamped event is covered and strict mode holds.
        clocks = {
            label: ClockKernel(
                ClockComponents(), strict=True, backend=config.backend
            )
            for label in config.mechanisms
        }
        stamp_folds = {label: 0 for label in config.mechanisms}
    return _ShardConsumers(
        mechanisms=mechanisms, engine=engine, live_window=live_window,
        clocks=clocks, stamp_folds=stamp_folds,
    )


def _extend_clock(kernel: ClockKernel, decision) -> None:
    """Mirror one component addition onto a label's kernel."""
    if decision.choice == THREAD:
        kernel.extend_components(thread_components=(decision.component,))
    else:
        kernel.extend_components(object_components=(decision.component,))


def _timed_stream(stream: Iterable, reg) -> Iterator:
    """Yield ``stream`` unchanged, accumulating generator-side time.

    Stream generation is lazy, so its cost is interleaved with
    consumption and invisible to coarse spans; this wrapper meters the
    time spent *inside* the generator's ``next`` and observes the total
    as the ``engine.stream_gen_s`` histogram (one observation per pass,
    flushed even when the pass is abandoned mid-stream).  Only installed
    when telemetry is active - untimed runs never pay the per-event
    clock reads - and, like all telemetry, never read back into any
    result.
    """
    total = 0.0
    iterator = iter(stream)
    try:
        while True:
            began = perf_counter()
            try:
                event = next(iterator)
            except StopIteration:
                break
            finally:
                total += perf_counter() - began
            yield event
    finally:
        reg.observe("engine.stream_gen_s", total)


class _ShardRun:
    """One shard's live execution state and transitions.

    The per-shard half of the engine driver, shared verbatim by the
    single-shard task path (:func:`run_shard`) and the group-owned
    worker path (:func:`run_shard_group`): consumer state (loaded from a
    checkpoint or fresh), the chunk clock, the batched timestamping
    accumulation, and the chunk-boundary checkpoint/telemetry plumbing.
    Because both paths drive shards through these same methods in the
    same per-shard event order, a shard's partial - and its checkpoint
    bytes - cannot depend on which scheduling mode ran it.
    """

    def __init__(self, config: EngineConfig, shard_id: int, scenario,
                 manager: Optional[EngineCheckpointManager], reg) -> None:
        self.config = config
        self.shard_id = shard_id
        self.manager = manager
        self.reg = reg
        self.chunk_started = perf_counter() if reg is not None else 0.0
        checkpoint = None
        if manager is not None:
            with _metrics_span("engine.checkpoint.load", shard=shard_id):
                checkpoint = manager.load(shard_id)
        if checkpoint is not None:
            self.consumers = checkpoint.consumers
            self.partial = checkpoint.partial
            self.raw_consumed = checkpoint.raw_events_consumed
            self.inserts_done = checkpoint.inserts_done
            self.chunks_done = checkpoint.chunks_done
            if config.timestamps and self.consumers.clocks is not None:
                # The pickled kernels carry the backend they ran under; the
                # resuming configuration wins (backends are bit-identical by
                # contract, so this is purely a wall-clock choice).
                for kernel in self.consumers.clocks.values():
                    kernel.set_backend(config.backend)
        else:
            self.consumers = _fresh_consumers(config, shard_id, scenario.expires)
            self.partial = PartialResult()
            self.raw_consumed = 0
            self.inserts_done = 0
            self.chunks_done = 0
        self.mechanisms = self.consumers.mechanisms
        self.engine = self.consumers.engine
        self.live_window = self.consumers.live_window
        self.clocks = self.consumers.clocks
        self.stamp_folds = self.consumers.stamp_folds
        self.chunk = _ChunkBuffers(
            config.mechanisms, self.inserts_done, config.stride,
            config.include_offline,
        )
        # Own-shard load telemetry on the per-event path (split_runs_group
        # counts it sharder-side on the batched path).
        self.shard_events = 0
        # The timestamping stage's own, longer accumulation (batched
        # pipeline): the per-label kernels consume *inserts only*
        # (append-only clocks ignore expiry), so their runs are cut by
        # chunk boundaries and the memory cap - not by the lifecycle
        # ticks that cut mechanism runs.  This is what amortises the
        # backends' working-state setup over thousands of events even on
        # churn-heavy streams.
        self.kernel_pending: List[Tuple[object, object]] = []
        self.kernel_start = self.inserts_done
        self.decision_cursor: Dict[str, int] = (
            {
                label: mechanism.decision_count
                for label, mechanism in self.mechanisms.items()
            }
            if self.clocks is not None
            else {}
        )

    # -- chunk / lifecycle transitions ----------------------------------
    def complete_chunk(self) -> None:
        self.partial = self.partial.merge(
            self.chunk.freeze(self.shard_id, self.stamp_folds)
        )
        self.chunks_done += 1
        reg = self.reg
        if reg is not None:
            now = perf_counter()
            reg.add("engine.chunks")
            reg.observe("engine.chunk_s", now - self.chunk_started)
            reg.record_span(
                "engine.chunk",
                self.chunk_started,
                now - self.chunk_started,
                (("chunk", self.chunks_done), ("shard", self.shard_id)),
            )
            self.chunk_started = now
        if self.manager is not None:
            with _metrics_span("engine.checkpoint.save", shard=self.shard_id):
                self.manager.save(
                    ShardCheckpoint(
                        shard_id=self.shard_id,
                        chunks_done=self.chunks_done,
                        raw_events_consumed=self.raw_consumed,
                        inserts_done=self.inserts_done,
                        expires_done=self.partial.expires,
                        consumers=self.consumers,
                        partial=self.partial,
                    )
                )
        self.chunk = _ChunkBuffers(
            self.config.mechanisms, self.inserts_done, self.config.stride,
            self.config.include_offline,
        )

    def interrupt_if_due(self) -> None:
        if (
            self.config.max_chunks_per_shard is not None
            and self.chunks_done >= self.config.max_chunks_per_shard
        ):
            raise EngineInterrupted(
                f"shard {self.shard_id} stopped after {self.chunks_done} "
                f"chunks ({self.inserts_done} inserts checkpointed)"
            )

    def deliver_epoch(self) -> None:
        """One epoch boundary: every mechanism may restructure its clock."""
        chunk = self.chunk
        chunk.epochs += 1
        reg = self.reg
        for label, mechanism in self.mechanisms.items():
            if reg is None:
                mechanism.end_epoch()
            else:
                began = perf_counter()
                mechanism.end_epoch()
                reg.observe("engine.epoch_rotation_s", perf_counter() - began)
            # A rebuild changes the clock between inserts; keep the
            # carried-forward facts current so a chunk ending right after
            # a boundary freezes the post-boundary state.
            chunk.final[label] = mechanism.clock_size
            chunk.retired[label] = mechanism.retired_total

    def deliver_expire(self, thread, obj) -> None:
        """One expiry: mechanisms may retire, the optimum retracts the edge."""
        chunk = self.chunk
        for label, mechanism in self.mechanisms.items():
            mechanism.expire(thread, obj)
            chunk.final[label] = mechanism.clock_size
            chunk.retired[label] = mechanism.retired_total
        if self.engine is not None:
            self.engine.remove_edge(thread, obj)
        chunk.expires += 1

    # -- per-event pipeline ---------------------------------------------
    def observe_insert(self, thread, obj) -> None:
        """One insert through every consumer (the classic per-event body)."""
        config = self.config
        chunk = self.chunk
        if self.live_window is not None:
            if config.window is not None and len(self.live_window) == config.window:
                old_thread, old_obj = self.live_window.popleft()
                self.deliver_expire(old_thread, old_obj)
            self.live_window.append((thread, obj))
        offline_size = 0
        if self.engine is not None:
            self.engine.add_edge(thread, obj)
            offline_size = self.engine.size
        sample_point = self.inserts_done % config.stride == 0
        clocks = self.clocks
        stamp_folds = self.stamp_folds
        for label, mechanism in self.mechanisms.items():
            if clocks is None:
                mechanism.observe(thread, obj)
            else:
                decisions_before = mechanism.decision_count
                mechanism.observe(thread, obj)
                kernel = clocks[label]
                if mechanism.decision_count != decisions_before:
                    _extend_clock(
                        kernel,
                        mechanism.decisions_since(decisions_before)[0],
                    )
                stamp = kernel.observe(thread, obj)
                stamp_folds[label] = kernel.fold_event(
                    stamp_folds[label], stamp, thread, obj
                )
            size = mechanism.clock_size
            chunk.final[label] = size
            chunk.retired[label] = mechanism.retired_total
            if sample_point:
                chunk.samples[label].append(size)
            if offline_size:
                chunk.ratios[label].update(size / offline_size)
                chunk.sketches[label].update(size / offline_size)
        if self.engine is not None:
            chunk.final[OFFLINE_LABEL] = offline_size
            if sample_point:
                chunk.samples[OFFLINE_LABEL].append(offline_size)
        self.inserts_done += 1
        chunk.inserts += 1
        if (
            config.epoch_every is not None
            and self.inserts_done % config.epoch_every == 0
        ):
            self.deliver_epoch()
        if chunk.inserts == config.chunk_size:
            self.complete_chunk()
            self.interrupt_if_due()

    # -- batched pipeline -----------------------------------------------
    def run_cap(self) -> int:
        """Largest run that cannot overshoot a chunk/epoch boundary."""
        config = self.config
        cap = config.chunk_size - self.chunk.inserts
        if config.epoch_every is not None:
            cap = min(
                cap,
                config.epoch_every - self.inserts_done % config.epoch_every,
            )
        return min(cap, MAX_BATCH_EVENTS)

    def flush_stamps(self) -> None:
        """Advance every label's kernel over the accumulated inserts.

        Sub-runs are cut exactly where the mechanism's decision log
        says a component was added, each addition extending the
        kernel *before* its triggering event is stamped - the same
        order the per-event loop produces, hence the same digest.
        """
        kernel_pending = self.kernel_pending
        if not kernel_pending:
            return
        clocks = self.clocks
        stamp_folds = self.stamp_folds
        decision_cursor = self.decision_cursor
        kernel_start = self.kernel_start
        for label, mechanism in self.mechanisms.items():
            kernel = clocks[label]
            fold = stamp_folds[label]
            cursor_offset = 0
            for decision in mechanism.decisions_since(decision_cursor[label]):
                offset = decision.event_index - kernel_start
                if offset > cursor_offset:
                    fold = kernel.advance_batch(
                        kernel_pending[cursor_offset:offset], fold
                    )
                    cursor_offset = offset
                _extend_clock(kernel, decision)
            decision_cursor[label] = mechanism.decision_count
            if cursor_offset:
                fold = kernel.advance_batch(
                    kernel_pending[cursor_offset:], fold
                )
            else:
                fold = kernel.advance_batch(kernel_pending, fold)
            stamp_folds[label] = fold
        self.kernel_start += len(kernel_pending)
        kernel_pending.clear()

    def flush_inserts(self, run: List[Tuple[object, object]]) -> None:
        """One whole insert run through every consumer (the batched body)."""
        chunk = self.chunk
        count = len(run)
        reg = self.reg
        if reg is not None:
            reg.observe("engine.batch_size", count)
        start = self.inserts_done
        stride = self.config.stride
        offline_sizes: Optional[List[int]] = None
        engine = self.engine
        if engine is not None:
            offline_sizes = []
            add_edge = engine.add_edge
            append_offline = offline_sizes.append
            for thread, obj in run:
                add_edge(thread, obj)
                append_offline(engine.size)
        sample_offsets = range((-start) % stride, count, stride)
        for label, mechanism in self.mechanisms.items():
            sizes = mechanism.observe_batch(run)
            samples = chunk.samples[label]
            for offset in sample_offsets:
                samples.append(sizes[offset])
            chunk.final[label] = sizes[-1]
            chunk.retired[label] = mechanism.retired_total
            if offline_sizes is not None:
                update_stats = chunk.ratios[label].update
                update_sketch = chunk.sketches[label].update
                for size, offline_size in zip(sizes, offline_sizes):
                    ratio = size / offline_size
                    update_stats(ratio)
                    update_sketch(ratio)
        if offline_sizes is not None:
            chunk.final[OFFLINE_LABEL] = offline_sizes[-1]
            offline_samples = chunk.samples[OFFLINE_LABEL]
            for offset in sample_offsets:
                offline_samples.append(offline_sizes[offset])
        if self.clocks is not None:
            self.kernel_pending.extend(run)
            if len(self.kernel_pending) >= MAX_BATCH_EVENTS:
                self.flush_stamps()
        self.inserts_done += count
        chunk.inserts += count

    # -- completion ------------------------------------------------------
    def finish(self) -> PartialResult:
        """Freeze any trailing chunk, flush telemetry; the shard's partial."""
        if self.clocks is not None:
            self.flush_stamps()
        chunk = self.chunk
        if chunk.inserts or chunk.expires or chunk.epochs:
            self.complete_chunk()
        reg = self.reg
        if reg is not None:
            if self.shard_events:
                reg.add(
                    f"sharder.shard[{self.shard_id}].events", self.shard_events
                )
            shard_id = self.shard_id
            reg.gauge(f"engine.shard[{shard_id}].inserts", self.partial.inserts)
            reg.gauge(f"engine.shard[{shard_id}].expires", self.partial.expires)
            reg.gauge(f"engine.shard[{shard_id}].epochs", self.partial.epochs)
            reg.gauge(f"engine.shard[{shard_id}].chunks", self.chunks_done)
        return self.partial


def run_shard_group(
    config: EngineConfig, shard_ids: Sequence[int]
) -> Dict[int, PartialResult]:
    """Pin ``config.rotation`` (if set) around :func:`_run_shard_group`.

    The strategy is installed as the process default for the duration of
    the task and the previous *override* (not the resolved name) is
    restored in a ``finally``, so a surrounding environment-variable
    default survives the scope - the same discipline the ratio sweep
    applies to kernel backends.  Runs in the pool worker process when
    the engine is worker-pooled, which is exactly where the pin must
    live.
    """
    if config.rotation is None:
        return _run_shard_group(config, shard_ids)
    saved = default_rotation_override()
    set_default_rotation(config.rotation)
    try:
        return _run_shard_group(config, shard_ids)
    finally:
        set_default_rotation(saved)


def _run_shard_group(
    config: EngineConfig, shard_ids: Sequence[int]
) -> Dict[int, PartialResult]:
    """Run a contiguous group of shards to completion in ONE stream pass.

    The worker-pooled engine's task body: the base stream is regenerated
    *once* and every event routed to the owning shard's consumers in a
    single pass, so a worker that owns four shards pays the fixed
    per-pass cost (generation + routing) once instead of four times.
    Each owned shard's consumer state, chunk clock and checkpoints
    evolve exactly as a dedicated :func:`run_shard` pass would evolve
    them - per-shard resume skips included - which is what makes
    checkpoints (and the merged fingerprint) interchangeable across
    ``workers`` counts and with the per-shard ``jobs`` mode.

    Returns the per-shard partials keyed by shard id.  Raises
    :class:`EngineInterrupted` when any owned shard hits the
    ``max_chunks_per_shard`` hook; sibling shards keep whatever chunk
    checkpoints they had already completed, and the next invocation
    resumes every shard from its own last boundary.
    """
    config.validate()
    owned: Tuple[int, ...] = tuple(shard_ids)
    if not owned:
        raise EngineError("a shard group must own at least one shard")
    if list(owned) != sorted(set(owned)):
        raise EngineError(
            f"group shard ids must be strictly increasing, got {owned!r}"
        )
    for shard_id in owned:
        if not (0 <= shard_id < config.num_shards):
            raise EngineError(
                f"shard_id {shard_id} out of range for "
                f"{config.num_shards} shards"
            )
    scenario = REGISTRY.get(config.scenario, kind=STREAM)
    manager = (
        EngineCheckpointManager(config.checkpoint_dir, config.signature())
        if config.checkpoint_dir
        else None
    )
    # Telemetry handle, bound once per group pass: every observation below
    # guards on ``reg is not None`` so the disabled cost is this single
    # global read.  Nothing read from the registry (or any clock feeding
    # it) influences the partials - telemetry is observed, never
    # observed-from.
    reg = _metrics_active()
    group_started = perf_counter() if reg is not None else 0.0
    runs: Dict[int, _ShardRun] = {
        shard_id: _ShardRun(config, shard_id, scenario, manager, reg)
        for shard_id in owned
    }
    stream = scenario.build(
        config.num_threads,
        config.num_objects,
        config.density,
        config.num_events,
        seed=derive_seed(config.seed, config.scenario, "stream"),
    )
    if reg is not None:
        stream = _timed_stream(stream, reg)
    sharder = StreamSharder(config.num_shards, config.strategy)

    if config.pipeline == PER_EVENT or any(
        run.live_window is not None for run in runs.values()
    ):
        # ------------------------------------------------------------------
        # The classic loop: one consumer call per event.  An *imposed*
        # sliding window also lands here regardless of config.pipeline:
        # once the window fills, every insert is preceded by an expire
        # tick, so insert runs degenerate to single events and the
        # batched loop would only add flush bookkeeping per event.
        # (Scenario-emitted expiry - churn bursts - batches fine and
        # stays on the batched path.)  Results are identical either way.
        # ------------------------------------------------------------------
        # Per-shard fast-forward: each shard skips the prefix its own
        # checkpoint already covers (the sharder's assignment table
        # replays regardless, because split() routes every event).
        skips = {shard_id: runs[shard_id].raw_consumed for shard_id in owned}
        consumed = 0
        for shard, event in sharder.split(stream):
            consumed += 1
            shard_run = runs.get(shard)
            if shard_run is None:
                continue
            if consumed <= skips[shard]:
                continue
            shard_run.raw_consumed = consumed
            if reg is not None:
                shard_run.shard_events += 1
            if event.is_epoch:
                shard_run.deliver_epoch()
                continue
            if event.is_expire:
                shard_run.deliver_expire(event.thread, event.obj)
                continue
            shard_run.observe_insert(event.thread, event.obj)
        for shard_id in owned:
            if consumed < skips[shard_id]:
                raise EngineError(
                    f"stream exhausted while fast-forwarding shard "
                    f"{shard_id} to event {skips[shard_id]}; the checkpoint "
                    f"does not match this stream"
                )
            runs[shard_id].raw_consumed = consumed
    else:
        # ------------------------------------------------------------------
        # The batched pipeline: runs of consecutive inserts, cut at
        # lifecycle ticks and chunk / epoch boundaries, flow through
        # observe_batch (mechanisms) and advance_batch (kernels) so the
        # per-event Python dispatch is paid once per run, not per event.
        # The runs arrive whole - and already routed to their owning
        # shard - from StreamSharder.split_runs_group, so this driver
        # resumes once per run / boundary event instead of once per
        # tagged event.  Identical interleaving per shard, identical
        # numbers - the fingerprint equality with the per-event loop and
        # with every other scheduling mode is asserted in CI.
        # ------------------------------------------------------------------
        caps = {shard_id: runs[shard_id].run_cap for shard_id in owned}
        skips = {shard_id: runs[shard_id].raw_consumed for shard_id in owned}
        # Boundary checks run after *every* flushed run, but only a
        # cap-sized run can actually land on a chunk/epoch boundary: the
        # sharder re-evaluates run_cap() at each run's first insert, so
        # a run cut short by a lifecycle event (or end of stream) always
        # stops strictly before one.
        for shard, consumed, item in sharder.split_runs_group(
            stream, owned, caps, skips
        ):
            shard_run = runs[shard]
            shard_run.raw_consumed = consumed
            if item is None:
                continue
            if type(item) is list:
                shard_run.flush_inserts(item)
                if (
                    config.epoch_every is not None
                    and shard_run.inserts_done % config.epoch_every == 0
                ):
                    shard_run.deliver_epoch()
                if shard_run.chunk.inserts == config.chunk_size:
                    # The chunk's frozen digest must be current, so the
                    # kernels catch up right before the boundary.
                    shard_run.flush_stamps()
                    shard_run.complete_chunk()
                    shard_run.interrupt_if_due()
                continue
            if item.kind == EPOCH:
                shard_run.deliver_epoch()
            else:
                shard_run.deliver_expire(item.thread, item.obj)

    partials = {shard_id: runs[shard_id].finish() for shard_id in owned}
    if reg is not None:
        if len(owned) == 1:
            reg.record_span(
                "engine.shard",
                group_started,
                perf_counter() - group_started,
                (("pipeline", config.pipeline), ("shard", owned[0])),
            )
        else:
            reg.record_span(
                "engine.group",
                group_started,
                perf_counter() - group_started,
                (
                    ("pipeline", config.pipeline),
                    ("shards", f"{owned[0]}-{owned[-1]}"),
                ),
            )
    return partials


def run_shard(config: EngineConfig, shard_id: int) -> PartialResult:
    """Run one shard to completion (or to the interrupt hook).

    Regenerates the base stream from the root seed, filters it to this
    shard, and advances the shard's mechanisms and dynamic optimum in
    chunks, checkpointing at every chunk boundary when configured.  The
    single-shard projection of :func:`run_shard_group`.
    """
    return run_shard_group(config, (shard_id,))[shard_id]


def run_shard_task(task: Tuple[EngineConfig, int]) -> PartialResult:
    """Module-level task entry point (picklable for the process pool)."""
    config, shard_id = task
    return run_shard(config, shard_id)


def run_shard_group_task(
    task: Tuple[EngineConfig, Tuple[int, ...]],
) -> Dict[int, PartialResult]:
    """Module-level group-task entry point (picklable for the pool)."""
    config, shard_ids = task
    return run_shard_group(config, shard_ids)


def run_engine(config: EngineConfig, jobs: int = 1) -> EngineResult:
    """Run every shard of ``config`` and merge, on one of two schedules.

    ``config.workers`` set: the shards are dealt into that many
    contiguous :class:`~repro.engine.sharding.ShardGroup`\\ s and each
    group runs as one task - on a persistent worker pool when the plan
    has more than one group, in-process otherwise - with the stream
    generated once per worker.  ``config.workers`` unset: the original
    one-task-per-shard decomposition driven by ``jobs``.

    Either way the merge folds shard partials in shard-id order - the
    fixed merge tree that keeps results independent of scheduling.  With
    a checkpoint directory configured, completed shards short-circuit
    through their checkpoints, so re-invoking after an interruption (or
    an :class:`EngineInterrupted`) finishes the remaining work only -
    and the resuming invocation may use any ``workers``/``jobs``
    combination, not the interrupted one's.
    """
    config.validate()
    if config.checkpoint_dir:
        # Fail fast in the parent on a manifest mismatch, before any
        # worker is spawned.
        EngineCheckpointManager(config.checkpoint_dir, config.signature())
    registry = _metrics_active()
    if config.workers is not None:
        if jobs > 1:
            raise EngineError(
                f"config.workers={config.workers} owns the worker pool; "
                f"leave jobs at 1 (got {jobs}) - the two are alternative "
                f"scheduling modes"
            )
        groups = plan_shard_groups(config.num_shards, config.workers)
        executor = ShardExecutor(len(groups) if config.workers > 1 else 1)
        group_tasks = [(config, group.shard_ids) for group in groups]
        if registry is None:
            grouped = executor.map(run_shard_group_task, group_tasks)
        else:
            # Deferred import: the telemetry bridge imports this module back.
            from repro.engine.telemetry import (
                absorb_snapshots,
                run_shard_group_task_with_metrics,
            )

            registry.gauge("engine.workers", len(groups))
            registry.gauge("engine.num_shards", config.num_shards)
            with registry.span(
                "engine.map", workers=len(groups), shards=config.num_shards
            ):
                outcomes = executor.map(
                    run_shard_group_task_with_metrics, group_tasks
                )
            grouped = [partials for partials, _snapshot in outcomes]
            # Group-id order == shard-id order (groups are contiguous and
            # ascending), mirroring the result merge tree.
            absorb_snapshots(
                registry, [snapshot for _partials, snapshot in outcomes]
            )
        partials = [
            grouped[index][shard_id]
            for index, group in enumerate(groups)
            for shard_id in group.shard_ids
        ]
    else:
        executor = ShardExecutor(jobs)
        tasks = [(config, shard_id) for shard_id in range(config.num_shards)]
        if registry is None:
            partials = executor.map(run_shard_task, tasks)
        else:
            # Deferred import: the telemetry bridge imports this module back.
            from repro.engine.telemetry import (
                absorb_snapshots,
                run_shard_task_with_metrics,
            )

            registry.gauge("engine.jobs", jobs)
            registry.gauge("engine.num_shards", config.num_shards)
            with registry.span("engine.map", jobs=jobs, shards=config.num_shards):
                outcomes = executor.map(run_shard_task_with_metrics, tasks)
            partials = [partial for partial, _snapshot in outcomes]
            # Shard-id order, the same fixed tree the result merge uses, so
            # the combined telemetry is independent of worker scheduling.
            absorb_snapshots(registry, [snapshot for _partial, snapshot in outcomes])
    with _metrics_span("engine.merge"):
        merged = merge_partials(partials)
    return EngineResult(
        scenario=config.scenario,
        num_shards=config.num_shards,
        strategy=config.strategy,
        seed=config.seed,
        window=config.window,
        chunk_size=config.chunk_size,
        mechanisms=config.mechanisms,
        partial=merged,
    )
