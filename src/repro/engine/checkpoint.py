"""Chunk-boundary checkpointing for interrupted million-event runs.

This is the engine-side sibling of
:class:`repro.runtime.snapshots.CheckpointManager`: that class rolls a
*monitored computation* back to a recovery line (the largest consistent
cut respecting per-thread checkpoints); this one rolls a *monitoring run*
back to the last completed chunk of every shard.  The two share the same
correctness shape - a checkpoint set is restorable iff it is closed under
the dependencies between the checkpointed units - but the engine gets the
hard part for free: shards are causally independent by construction
(thread-affinity sharding routes every event of a thread to one shard),
so any per-shard vector of completed chunks is already a consistent
recovery line, with no domino effect to propagate.

Mechanics:

* a checkpoint directory holds one ``manifest.json`` recording the run's
  configuration signature, plus one ``shard-<id>.pickle`` per shard;
* shard files are written atomically (temp file + ``os.replace``) so a
  kill mid-write leaves the previous chunk's checkpoint intact - the
  invariant that makes "resume from the last *completed* chunk" true
  under arbitrary interruption;
* resuming validates the manifest against the resuming run's signature
  and refuses on mismatch: silently mixing partial metrics of two
  different configurations is the one unrecoverable corruption.

The pickled payload is the shard's full consumer state - the online
mechanisms (including their :mod:`random` state), the dynamic matching
engine, the sliding-window deque and the accumulated
:class:`~repro.engine.results.PartialResult` - so a resumed run replays
*nothing*: it fast-forwards the regenerated stream past the consumed
prefix (generation is cheap; matching is not) and continues exactly where
the interrupted run left off.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from repro.exceptions import EngineError

MANIFEST_NAME = "manifest.json"


@dataclass
class ShardCheckpoint:
    """Everything needed to continue one shard from a chunk boundary.

    ``raw_events_consumed`` counts events of the *full* base stream (the
    fast-forward distance); ``inserts_done`` counts this shard's inserts
    (the chunk clock); ``consumers`` is the picklable shard state object
    defined by the runner.
    """

    shard_id: int
    chunks_done: int
    raw_events_consumed: int
    inserts_done: int
    expires_done: int
    consumers: Any
    partial: Any


class EngineCheckpointManager:
    """Per-shard chunk checkpoints under one run directory."""

    def __init__(self, directory: str, signature: Mapping[str, Any]) -> None:
        self._directory = Path(directory)
        self._signature = dict(signature)
        self._directory.mkdir(parents=True, exist_ok=True)
        manifest = self._directory / MANIFEST_NAME
        if manifest.exists():
            recorded = self._read_manifest(manifest)
            if recorded != self._signature:
                raise EngineError(
                    f"checkpoint directory {directory} belongs to a different "
                    f"run configuration; refusing to mix partial results "
                    f"(recorded {recorded!r}, resuming {self._signature!r})"
                )
        else:
            self._atomic_write(manifest, json.dumps(self._signature, sort_keys=True))

    @classmethod
    def open(cls, directory: str) -> "EngineCheckpointManager":
        """Attach to an *existing* checkpoint directory, whatever its run.

        The manifest's own recorded signature is adopted, so no mismatch
        is possible - the entry point for inspection and maintenance
        tooling (``engine inspect`` / ``engine clean``), which must work
        without re-deriving the original :class:`EngineConfig`.
        """
        manifest = Path(directory) / MANIFEST_NAME
        if not manifest.exists():
            raise EngineError(
                f"{directory} is not a checkpoint directory "
                f"(no {MANIFEST_NAME})"
            )
        return cls(directory, cls._read_manifest(manifest))

    @staticmethod
    def _read_manifest(manifest: Path) -> Dict[str, Any]:
        try:
            recorded = json.loads(manifest.read_text())
        except (OSError, ValueError) as error:
            raise EngineError(
                f"unreadable checkpoint manifest {manifest}: {error}"
            ) from None
        if not isinstance(recorded, dict):
            raise EngineError(
                f"checkpoint manifest {manifest} does not record a "
                f"configuration signature"
            )
        return recorded

    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def signature(self) -> Dict[str, Any]:
        """The run-configuration signature this directory belongs to."""
        return dict(self._signature)

    def _shard_path(self, shard_id: int) -> Path:
        return self._directory / f"shard-{shard_id}.pickle"

    def _atomic_write(self, path: Path, text_or_bytes) -> None:
        """Write via a sibling temp file + ``os.replace`` (atomic on POSIX)."""
        mode = "wb" if isinstance(text_or_bytes, bytes) else "w"
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.name + ".", dir=str(self._directory)
        )
        try:
            with os.fdopen(fd, mode) as handle:
                handle.write(text_or_bytes)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def load(self, shard_id: int) -> Optional[ShardCheckpoint]:
        """The shard's last completed-chunk checkpoint, or ``None``."""
        path = self._shard_path(shard_id)
        if not path.exists():
            return None
        try:
            with path.open("rb") as handle:
                checkpoint = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError) as error:
            raise EngineError(
                f"corrupt shard checkpoint {path}: {error}"
            ) from None
        if checkpoint.shard_id != shard_id:
            raise EngineError(
                f"checkpoint {path} records shard {checkpoint.shard_id}, "
                f"expected {shard_id}"
            )
        return checkpoint

    def save(self, checkpoint: ShardCheckpoint) -> None:
        """Atomically persist one shard's chunk-boundary state."""
        self._atomic_write(
            self._shard_path(checkpoint.shard_id),
            pickle.dumps(checkpoint, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def shard_files(self) -> Dict[int, Path]:
        """Existing shard checkpoint files, keyed by shard id."""
        files: Dict[int, Path] = {}
        for path in sorted(self._directory.glob("shard-*.pickle")):
            stem = path.stem.split("-", 1)[1]
            if stem.isdigit():
                files[int(stem)] = path
        return files

    def clear(self) -> None:
        """Delete every shard checkpoint (keeps the manifest)."""
        for path in self.shard_files().values():
            try:
                path.unlink()
            except OSError:
                pass

    def describe(self) -> List[Dict[str, Any]]:
        """Per-shard progress summary for every shard the manifest expects.

        One row per shard id in ``0 .. num_shards - 1`` (shards without a
        checkpoint file report zero progress), each with the checkpoint's
        chunk / insert / expire counters and the file size on disk.
        """
        num_shards = int(self._signature.get("num_shards", 0))
        files = self.shard_files()
        rows: List[Dict[str, Any]] = []
        for shard_id in range(num_shards):
            path = files.get(shard_id)
            if path is None:
                rows.append(
                    {
                        "shard": shard_id,
                        "chunks_done": 0,
                        "inserts_done": 0,
                        "expires_done": 0,
                        "raw_events_consumed": 0,
                        "bytes": 0,
                    }
                )
                continue
            checkpoint = self.load(shard_id)
            rows.append(
                {
                    "shard": shard_id,
                    "chunks_done": checkpoint.chunks_done,
                    "inserts_done": checkpoint.inserts_done,
                    "expires_done": checkpoint.expires_done,
                    "raw_events_consumed": checkpoint.raw_events_consumed,
                    "bytes": path.stat().st_size,
                }
            )
        return rows

    def prune(self, max_age: Optional[float] = None) -> List[Path]:
        """Remove files the manifest does not account for; returns them.

        Prunable files are (a) shard checkpoints whose id falls outside
        the manifest's ``num_shards`` range - leftovers of an earlier,
        differently-sharded run in a reused directory - and (b) orphaned
        temp files from interrupted atomic writes (``<name>.<random>``
        siblings of the manifest or a shard file).  Nothing else is
        touched: a file this manager did not plausibly create is not this
        manager's to delete.

        ``max_age`` (seconds) additionally prunes *stale but referenced*
        shard checkpoints: in-range shard files whose modification time
        is older than ``max_age`` seconds.  Deleting one is always safe -
        :meth:`load` returns ``None`` for the missing shard and the next
        run recomputes it from the stream - so age-based pruning trades
        recomputation for disk space on long-abandoned runs.  The
        manifest itself is kept (it is the directory's identity).
        """
        if max_age is not None and max_age < 0:
            raise EngineError(f"max_age must be non-negative, got {max_age}")
        num_shards = int(self._signature.get("num_shards", 0))
        doomed: List[Path] = []
        cutoff = None if max_age is None else time.time() - max_age  # repro: noqa[D104] age-based pruning is wall-clock by definition; never under the fingerprint
        for shard_id, path in self.shard_files().items():
            if not (0 <= shard_id < num_shards):
                doomed.append(path)
            elif cutoff is not None:
                try:
                    stale = path.stat().st_mtime < cutoff
                except OSError:
                    stale = False
                if stale:
                    doomed.append(path)
        for path in sorted(self._directory.glob(MANIFEST_NAME + ".*")):
            doomed.append(path)
        for path in sorted(self._directory.glob("shard-*.pickle.*")):
            doomed.append(path)
        removed: List[Path] = []
        for path in sorted(doomed):
            try:
                path.unlink()
                removed.append(path)
            except OSError:
                pass
        return removed
