"""Online mechanisms (Section IV) and the online simulation driver."""

from repro.online.adaptive import (
    EpochRotatingHybridMechanism,
    LifecycleClockDriver,
    WindowedPopularityMechanism,
)
from repro.online.base import (
    OBJECT,
    THREAD,
    Decision,
    OnlineMechanism,
    Retirement,
    popularity_choice,
)
from repro.online.hybrid import HybridMechanism
from repro.online.naive import NaiveMechanism
from repro.online.popularity import PopularityMechanism
from repro.online.protocol import OnlineClockProtocol, SparseTimestamp
from repro.online.random_choice import RandomMechanism
from repro.online.sensitivity import (
    SensitivityResult,
    compare_order_sensitivity,
    order_sensitivity,
)
from repro.online.simulator import (
    OFFLINE_LABEL,
    OnlineRunResult,
    compare_mechanisms,
    compare_mechanisms_on_stream,
    offline_optimum_result,
    reveal_order,
    run_mechanism,
    run_mechanism_on_computation,
    run_mechanism_on_graph,
    seed_mechanism_factories,
)

__all__ = [
    "Decision",
    "EpochRotatingHybridMechanism",
    "HybridMechanism",
    "LifecycleClockDriver",
    "NaiveMechanism",
    "OBJECT",
    "OFFLINE_LABEL",
    "OnlineClockProtocol",
    "OnlineMechanism",
    "OnlineRunResult",
    "PopularityMechanism",
    "RandomMechanism",
    "Retirement",
    "SensitivityResult",
    "SparseTimestamp",
    "THREAD",
    "WindowedPopularityMechanism",
    "compare_mechanisms",
    "compare_mechanisms_on_stream",
    "compare_order_sensitivity",
    "offline_optimum_result",
    "order_sensitivity",
    "popularity_choice",
    "reveal_order",
    "run_mechanism",
    "run_mechanism_on_computation",
    "run_mechanism_on_graph",
    "seed_mechanism_factories",
]
