"""Online simulation driver: reveal a computation or graph edge by edge.

The evaluation in Section V feeds random bipartite graphs to the online
mechanisms "as we reveal the edge of the graph one by one".  This module
provides that driver:

* :func:`reveal_order` turns a bipartite graph into a random edge-reveal
  order (each edge is one event, matching the paper's setup where repeated
  operations on the same pair change nothing);
* :func:`run_mechanism` feeds a pair sequence to a mechanism and records
  the clock-size trajectory;
* :func:`compare_mechanisms` runs several mechanisms (and optionally the
  offline optimum) on identical reveal orders and returns one
  :class:`OnlineRunResult` per mechanism - the raw material of Figs. 4-7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.computation.trace import Computation
from repro.graph.bipartite import BipartiteGraph, Vertex
from repro.graph.generators import SeedLike, _rng
from repro.offline.algorithm import optimal_clock_size
from repro.online.base import OnlineMechanism

Pair = Tuple[Vertex, Vertex]
MechanismFactory = Callable[[], OnlineMechanism]


@dataclass(frozen=True)
class OnlineRunResult:
    """Outcome of running one mechanism over one reveal order.

    ``size_trajectory[i]`` is the clock size after the ``i``-th revealed
    event (so the final clock size is ``size_trajectory[-1]``, also exposed
    as :attr:`final_size`).
    """

    mechanism_name: str
    final_size: int
    size_trajectory: Tuple[int, ...]
    thread_components: int
    object_components: int
    events_revealed: int

    @property
    def sizes(self) -> Tuple[int, ...]:
        return self.size_trajectory


def reveal_order(graph: BipartiteGraph, seed: SeedLike = None) -> List[Pair]:
    """A random order in which to reveal the edges of ``graph``.

    Each edge appears exactly once; the shuffle models the unpredictability
    of the online setting while keeping the final revealed graph equal to
    ``graph``.
    """
    rng = _rng(seed)
    edges = sorted(graph.edges(), key=str)
    rng.shuffle(edges)
    return edges


def run_mechanism(
    mechanism: OnlineMechanism, pairs: Iterable[Pair]
) -> OnlineRunResult:
    """Feed ``pairs`` to ``mechanism`` and record its clock-size trajectory."""
    trajectory: List[int] = []
    for thread, obj in pairs:
        mechanism.observe(thread, obj)
        trajectory.append(mechanism.clock_size)
    return OnlineRunResult(
        mechanism_name=mechanism.name,
        final_size=mechanism.clock_size,
        size_trajectory=tuple(trajectory),
        thread_components=len(mechanism.thread_components),
        object_components=len(mechanism.object_components),
        events_revealed=mechanism.events_seen,
    )


def run_mechanism_on_graph(
    mechanism: OnlineMechanism, graph: BipartiteGraph, seed: SeedLike = None
) -> OnlineRunResult:
    """Reveal ``graph``'s edges in a random order to ``mechanism``."""
    return run_mechanism(mechanism, reveal_order(graph, seed=seed))


def run_mechanism_on_computation(
    mechanism: OnlineMechanism, computation: Computation
) -> OnlineRunResult:
    """Reveal a computation's operations (in interleaving order) to ``mechanism``."""
    return run_mechanism(mechanism, computation.to_pairs())


def compare_mechanisms(
    graph: BipartiteGraph,
    factories: Dict[str, MechanismFactory],
    seed: SeedLike = None,
    include_offline: bool = False,
) -> Dict[str, OnlineRunResult]:
    """Run several mechanisms on the *same* reveal order of ``graph``.

    Parameters
    ----------
    factories:
        Mapping from a label to a zero-argument callable producing a fresh
        mechanism (mechanisms are single-use).
    include_offline:
        When ``True``, an entry ``"offline"`` is added whose ``final_size``
        is the offline optimum (minimum vertex cover size) of ``graph``;
        its trajectory is a constant line, matching how Figs. 6-7 plot it.
    """
    order = reveal_order(graph, seed=seed)
    results: Dict[str, OnlineRunResult] = {}
    for label, factory in factories.items():
        results[label] = run_mechanism(factory(), order)
    if include_offline:
        optimum = optimal_clock_size(graph)
        results["offline"] = OnlineRunResult(
            mechanism_name="offline-optimal",
            final_size=optimum,
            size_trajectory=tuple([optimum] * len(order)),
            thread_components=-1,
            object_components=-1,
            events_revealed=len(order),
        )
    return results
