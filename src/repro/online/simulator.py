"""Online simulation driver: reveal a computation or graph edge by edge.

The evaluation in Section V feeds random bipartite graphs to the online
mechanisms "as we reveal the edge of the graph one by one".  This module
provides that driver:

* :func:`reveal_order` turns a bipartite graph into a random edge-reveal
  order (each edge is one event, matching the paper's setup where repeated
  operations on the same pair change nothing).  Before shuffling, edges
  are canonicalised by a ``(type name, repr)`` sort key per endpoint, so
  graphs mixing vertex types (e.g. the int ``1`` and the str ``"1"``)
  still reveal deterministically for a given seed;
* :func:`run_mechanism` feeds a pair sequence to a mechanism and records
  the clock-size trajectory;
* :func:`compare_mechanisms` runs several mechanisms (and optionally the
  offline optimum) on identical reveal orders and returns one
  :class:`OnlineRunResult` per mechanism - the raw material of Figs. 4-7.
  The ``"offline"`` entry is a true per-event optimum trajectory: the
  minimum-vertex-cover size of every revealed prefix, maintained by
  :class:`~repro.graph.incremental.IncrementalMatching` in one pass.
  Dividing an online trajectory by it pointwise gives the
  competitive-ratio-over-time series (:func:`competitive_ratio_trajectory`
  in :mod:`repro.analysis.metrics`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.computation.trace import Computation
from repro.graph.bipartite import BipartiteGraph, Vertex
from repro.graph.generators import SeedLike, _rng
from repro.graph.incremental import incremental_optimum_trajectory
from repro.online.base import OnlineMechanism

Pair = Tuple[Vertex, Vertex]
MechanismFactory = Callable[[], OnlineMechanism]


@dataclass(frozen=True)
class OnlineRunResult:
    """Outcome of running one mechanism over one reveal order.

    ``size_trajectory[i]`` is the clock size after the ``i``-th revealed
    event (so the final clock size is ``size_trajectory[-1]``, also exposed
    as :attr:`final_size`).
    """

    mechanism_name: str
    final_size: int
    size_trajectory: Tuple[int, ...]
    thread_components: int
    object_components: int
    events_revealed: int

    @property
    def sizes(self) -> Tuple[int, ...]:
        return self.size_trajectory


def _vertex_sort_key(vertex: Vertex) -> Tuple[str, str]:
    """An ordering key for arbitrary vertices: ``(type name, repr)``.

    Sorting by ``str`` alone conflates distinct vertices whose printed
    forms collide across types (``1`` vs ``"1"``, ``1`` vs ``1.0`` inside
    a tuple, enum members vs their values); this key keeps the types
    apart.  Same-type vertices with *identical* reprs (e.g. instances of
    a class with a static ``__repr__``) still tie, and their relative
    pre-shuffle order falls back to the stable sort's input order - give
    such classes a discriminating ``__repr__`` if exact cross-run
    reproducibility matters.
    """
    return (type(vertex).__name__, repr(vertex))


def _edge_sort_key(edge: Pair) -> Tuple[Tuple[str, str], Tuple[str, str]]:
    thread, obj = edge
    return (_vertex_sort_key(thread), _vertex_sort_key(obj))


def reveal_order(graph: BipartiteGraph, seed: SeedLike = None) -> List[Pair]:
    """A random order in which to reveal the edges of ``graph``.

    Each edge appears exactly once; the shuffle models the unpredictability
    of the online setting while keeping the final revealed graph equal to
    ``graph``.  The edges are canonically sorted (by the key above) before
    shuffling, so for vertices with discriminating reprs the order depends
    only on ``seed`` and the edge set; see :func:`_vertex_sort_key` for
    the one remaining tie case (same-type vertices with identical reprs).
    """
    rng = _rng(seed)
    edges = sorted(graph.edges(), key=_edge_sort_key)
    rng.shuffle(edges)
    return edges


def run_mechanism(
    mechanism: OnlineMechanism, pairs: Iterable[Pair]
) -> OnlineRunResult:
    """Feed ``pairs`` to ``mechanism`` and record its clock-size trajectory."""
    trajectory: List[int] = []
    for thread, obj in pairs:
        mechanism.observe(thread, obj)
        trajectory.append(mechanism.clock_size)
    return OnlineRunResult(
        mechanism_name=mechanism.name,
        final_size=mechanism.clock_size,
        size_trajectory=tuple(trajectory),
        thread_components=len(mechanism.thread_components),
        object_components=len(mechanism.object_components),
        events_revealed=mechanism.events_seen,
    )


def run_mechanism_on_graph(
    mechanism: OnlineMechanism, graph: BipartiteGraph, seed: SeedLike = None
) -> OnlineRunResult:
    """Reveal ``graph``'s edges in a random order to ``mechanism``."""
    return run_mechanism(mechanism, reveal_order(graph, seed=seed))


def run_mechanism_on_computation(
    mechanism: OnlineMechanism, computation: Computation
) -> OnlineRunResult:
    """Reveal a computation's operations (in interleaving order) to ``mechanism``."""
    return run_mechanism(mechanism, computation.to_pairs())


def compare_mechanisms(
    graph: BipartiteGraph,
    factories: Dict[str, MechanismFactory],
    seed: SeedLike = None,
    include_offline: bool = False,
) -> Dict[str, OnlineRunResult]:
    """Run several mechanisms on the *same* reveal order of ``graph``.

    Parameters
    ----------
    factories:
        Mapping from a label to a zero-argument callable producing a fresh
        mechanism (mechanisms are single-use).
    include_offline:
        When ``True``, an entry ``"offline"`` is added whose trajectory is
        the *per-event offline optimum*: ``size_trajectory[i]`` is the
        minimum vertex cover size of the graph revealed by the first
        ``i + 1`` events, computed incrementally in one pass.  Its final
        value equals ``optimal_clock_size(graph)``, the constant the
        original Figs. 6-7 plot; the full trajectory additionally supports
        competitive-ratio-over-time analysis.
    """
    order = reveal_order(graph, seed=seed)
    results: Dict[str, OnlineRunResult] = {}
    for label, factory in factories.items():
        results[label] = run_mechanism(factory(), order)
    if include_offline:
        results["offline"] = offline_optimum_result(order)
    return results


def offline_optimum_result(order: Sequence[Pair]) -> OnlineRunResult:
    """The per-event offline-optimum trajectory of one reveal order.

    Packaged as an :class:`OnlineRunResult` so it plots alongside the
    online mechanisms.  Thread/object component counts are reported as
    ``-1``: the optimum is a matching *size*; which side each cover vertex
    lives on is only fixed once the final cover is constructed.
    """
    trajectory = incremental_optimum_trajectory(order)
    return OnlineRunResult(
        mechanism_name="offline-optimal",
        final_size=trajectory[-1] if trajectory else 0,
        size_trajectory=trajectory,
        thread_components=-1,
        object_components=-1,
        events_revealed=len(order),
    )
