"""Online simulation driver: stream events past mechanisms and the optimum.

The evaluation in Section V feeds random bipartite graphs to the online
mechanisms "as we reveal the edge of the graph one by one".  This module
generalises that driver to the streaming model: the unit of input is a
lazy stream of :class:`~repro.computation.streams.StreamEvent` (inserts
*and* expires), consumed exactly once, with every mechanism and the
dynamic offline optimum advancing in lock-step per event.  Nothing
proportional to the stream length is materialised beyond the recorded
trajectories themselves, so unbounded monitoring streams and windowed
workloads run in one pass.

* :func:`reveal_order` turns a bipartite graph into a random edge-reveal
  order (each edge is one event, matching the paper's setup where repeated
  operations on the same pair change nothing).  Before shuffling, edges
  are canonicalised by a ``(type name, repr)`` sort key computed *once per
  vertex*, so graphs mixing vertex types (e.g. the int ``1`` and the str
  ``"1"``) still reveal deterministically for a given seed;
* :func:`run_mechanism` feeds a pair sequence to a mechanism and records
  the clock-size trajectory;
* :func:`compare_mechanisms_on_stream` is the streaming core: it runs
  several mechanisms plus a
  :class:`~repro.graph.incremental.DynamicMatching` engine over one lazy
  event stream (optionally imposing a sliding window), recording one
  clock-size sample per *insert* so all trajectories stay aligned.
  The full lifecycle is delivered to every mechanism: expire events
  reach :meth:`~repro.online.base.OnlineMechanism.expire` (a no-op shim
  for the paper's append-only mechanisms, a retirement opportunity for
  the adaptive ones) and epoch boundaries - explicit markers in the
  stream, or counter-based ticks via the ``epoch`` parameter - reach
  :meth:`~repro.online.base.OnlineMechanism.end_epoch`.  The offline
  optimum consumes inserts and expires, so with a window its trajectory
  can dip back down - and so, now, can a window-aware mechanism's.
* :func:`compare_mechanisms` keeps the classic graph-input surface of
  Figs. 4-7 and now simply routes a reveal order through the stream core.
  The ``"offline"`` entry is a true per-event optimum trajectory: the
  minimum-vertex-cover size of every revealed (non-expired) prefix.
  Dividing an online trajectory by it pointwise gives the
  competitive-ratio-over-time series (:func:`competitive_ratio_trajectory`
  in :mod:`repro.analysis.metrics`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.computation.streams import (
    EPOCH,
    EventLike,
    as_stream_event,
    iter_event_batches,
    sliding_window,
)
from repro.exceptions import ComputationError
from repro.computation.trace import Computation
from repro.graph.bipartite import BipartiteGraph, Vertex
from repro.graph.generators import SeedLike, _rng
from repro.graph.incremental import DynamicMatching, incremental_optimum_trajectory
from repro.online.base import OnlineMechanism
from repro.seeds import derive_seed

Pair = Tuple[Vertex, Vertex]
MechanismFactory = Callable[[], OnlineMechanism]

#: Key under which the offline optimum series is reported.
OFFLINE_LABEL = "offline"


def seed_mechanism_factories(
    seeded: Dict[str, Callable[[int], OnlineMechanism]], root_seed: int
) -> Dict[str, MechanismFactory]:
    """Bind per-label seeds derived from one root to seed-taking factories.

    The historical pattern - calling every mechanism factory with the same
    ``seed + 1`` - handed identical randomness to every stochastic
    mechanism of a trial.  This helper derives one independent child seed
    per label (:func:`repro.seeds.derive_seed`, keyed by the label, so the
    assignment is order- and process-independent) and returns the
    zero-argument factories :func:`compare_mechanisms_on_stream` consumes.
    The ratio sweep and the sharded engine both route their mechanism
    seeding through this one function, which is what keeps their outputs
    identical for a given root seed no matter where the mechanisms run.
    """
    return {
        label: (lambda f=factory, s=derive_seed(root_seed, label): f(s))
        for label, factory in seeded.items()
    }


@dataclass(frozen=True)
class OnlineRunResult:
    """Outcome of running one mechanism over one reveal order / stream.

    ``size_trajectory[i]`` is the clock size after the ``i``-th revealed
    *insert* event (so the final clock size is ``size_trajectory[-1]``,
    also exposed as :attr:`final_size`).  Expire events and epoch
    boundaries do not add samples - their effect (a window-aware
    mechanism retiring components, the optimum shrinking) shows up in
    the next insert's sample - but they are counted in
    :attr:`expires_seen` / :attr:`epochs`, and :attr:`retired_components`
    totals the mechanism's retirements over the run (0 for the
    append-only mechanisms, by construction).
    """

    mechanism_name: str
    final_size: int
    size_trajectory: Tuple[int, ...]
    thread_components: int
    object_components: int
    events_revealed: int
    expires_seen: int = 0
    epochs: int = 0
    retired_components: int = 0
    peak_size: int = 0

    @property
    def sizes(self) -> Tuple[int, ...]:
        return self.size_trajectory


def _vertex_sort_key(vertex: Vertex) -> Tuple[str, str]:
    """An ordering key for arbitrary vertices: ``(type name, repr)``.

    Sorting by ``str`` alone conflates distinct vertices whose printed
    forms collide across types (``1`` vs ``"1"``, ``1`` vs ``1.0`` inside
    a tuple, enum members vs their values); this key keeps the types
    apart.  Same-type vertices with *identical* reprs (e.g. instances of
    a class with a static ``__repr__``) still tie, and their relative
    pre-shuffle order falls back to the stable sort's input order - give
    such classes a discriminating ``__repr__`` if exact cross-run
    reproducibility matters.
    """
    return (type(vertex).__name__, repr(vertex))


def _edge_sort_key(edge: Pair) -> Tuple[Tuple[str, str], Tuple[str, str]]:
    thread, obj = edge
    return (_vertex_sort_key(thread), _vertex_sort_key(obj))


def reveal_order(graph: BipartiteGraph, seed: SeedLike = None) -> List[Pair]:
    """A random order in which to reveal the edges of ``graph``.

    Each edge appears exactly once; the shuffle models the unpredictability
    of the online setting while keeping the final revealed graph equal to
    ``graph``.  The edges are canonically sorted before shuffling, so for
    vertices with discriminating reprs the order depends only on ``seed``
    and the edge set; see :func:`_vertex_sort_key` for the one remaining
    tie case (same-type vertices with identical reprs).

    The per-vertex ``(type name, repr)`` key is computed once per vertex
    and cached for the sort, not re-derived per comparison: a vertex of
    degree ``d`` participates in ``O(d log E)`` comparisons, and ``repr``
    on user-defined vertex types is arbitrarily expensive.
    """
    rng = _rng(seed)
    keys: Dict[Vertex, Tuple[str, str]] = {}
    for vertex in graph.threads:
        keys[vertex] = _vertex_sort_key(vertex)
    for vertex in graph.objects:
        keys[vertex] = _vertex_sort_key(vertex)
    edges = sorted(graph.edges(), key=lambda edge: (keys[edge[0]], keys[edge[1]]))
    rng.shuffle(edges)
    return edges


def run_mechanism(
    mechanism: OnlineMechanism, pairs: Iterable[Pair]
) -> OnlineRunResult:
    """Feed ``pairs`` to ``mechanism`` and record its clock-size trajectory."""
    trajectory: List[int] = []
    for thread, obj in pairs:
        mechanism.observe(thread, obj)
        trajectory.append(mechanism.clock_size)
    return OnlineRunResult(
        mechanism_name=mechanism.name,
        final_size=mechanism.clock_size,
        size_trajectory=tuple(trajectory),
        thread_components=len(mechanism.thread_components),
        object_components=len(mechanism.object_components),
        events_revealed=mechanism.events_seen,
    )


def run_mechanism_on_graph(
    mechanism: OnlineMechanism, graph: BipartiteGraph, seed: SeedLike = None
) -> OnlineRunResult:
    """Reveal ``graph``'s edges in a random order to ``mechanism``."""
    return run_mechanism(mechanism, reveal_order(graph, seed=seed))


def run_mechanism_on_computation(
    mechanism: OnlineMechanism, computation: Computation
) -> OnlineRunResult:
    """Reveal a computation's operations (in interleaving order) to ``mechanism``."""
    return run_mechanism(mechanism, computation.to_pairs())


def compare_mechanisms_on_stream(
    events: Iterable[EventLike],
    factories: Dict[str, MechanismFactory],
    include_offline: bool = True,
    window: Optional[int] = None,
    epoch: Optional[int] = None,
    batch_size: Optional[int] = None,
) -> Dict[str, OnlineRunResult]:
    """Run several mechanisms and the dynamic optimum over one event stream.

    The stream is consumed exactly once, one event at a time; bare
    ``(thread, object)`` pairs are accepted and treated as inserts.  On
    each insert every mechanism observes the pair and every consumer
    records one trajectory sample; on each expire every mechanism's
    :meth:`~repro.online.base.OnlineMechanism.expire` fires (the no-op
    shim for append-only mechanisms) and the
    :class:`~repro.graph.incremental.DynamicMatching` engine retracts the
    edge.  Epoch boundaries - explicit markers in the stream, plus a tick
    after every ``epoch`` inserts when the parameter is set - deliver
    :meth:`~repro.online.base.OnlineMechanism.end_epoch` to every
    mechanism.  With ``window`` set, the insert-only input is wrapped in
    :func:`~repro.computation.streams.sliding_window` first; streams that
    emit their own expire events must pass ``window=None``.

    Returns one :class:`OnlineRunResult` per factory label, plus an
    ``"offline"`` entry when ``include_offline`` is true whose trajectory
    is the per-insert minimum-vertex-cover size of the *live* (windowed /
    non-expired) graph.

    ``batch_size`` switches the consumption loop to the chunked pipeline:
    runs of consecutive inserts (cut at lifecycle ticks, counter-epoch
    boundaries and ``batch_size``) are fed through each mechanism's
    :meth:`~repro.online.base.OnlineMechanism.observe_batch`.  The
    results are bit-identical to the per-event loop (``None``, the
    default) - batching only changes the wall-clock.
    """
    if epoch is not None and epoch < 1:
        raise ComputationError(f"epoch must be >= 1, got {epoch}")
    if batch_size is not None and batch_size < 1:
        raise ComputationError(f"batch_size must be >= 1, got {batch_size}")
    if window is not None:
        events = sliding_window(events, window)
    mechanisms = {label: factory() for label, factory in factories.items()}
    trajectories: Dict[str, List[int]] = {label: [] for label in mechanisms}
    # The engine keeps no mutation history of its own (the per-insert
    # samples below are the record), so its footprint tracks the live
    # graph rather than the total stream length.
    engine = DynamicMatching(record_trajectory=False) if include_offline else None
    offline_sizes: List[int] = []
    inserts = 0
    expires = 0
    epochs = 0

    def deliver_epoch() -> None:
        nonlocal epochs
        epochs += 1
        for mechanism in mechanisms.values():
            mechanism.end_epoch()

    if batch_size is not None:

        def feed(segment: List[Tuple[Vertex, Vertex]]) -> None:
            nonlocal inserts
            for label, mechanism in mechanisms.items():
                trajectories[label].extend(mechanism.observe_batch(segment))
            if engine is not None:
                add_edge = engine.add_edge
                append = offline_sizes.append
                for thread, obj in segment:
                    add_edge(thread, obj)
                    append(engine.size)
            inserts += len(segment)

        def process_run(run: List[Tuple[Vertex, Vertex]]) -> None:
            if epoch is None:
                # No counter epochs: the whole run is one segment, no
                # sub-split arithmetic on the hot path.
                feed(run)
                return
            # Sub-split at counter-epoch boundaries, so epoch ticks land
            # exactly where the per-event loop would deliver them.
            start = 0
            while start < len(run):
                segment = run[start:start + epoch - inserts % epoch]
                feed(segment)
                start += len(segment)
                if inserts % epoch == 0:
                    deliver_epoch()

        for item in iter_event_batches(events, batch_size):
            if isinstance(item, list):
                process_run([(event.thread, event.obj) for event in item])
            elif item.kind == EPOCH:
                deliver_epoch()
            else:
                expires += 1
                for mechanism in mechanisms.values():
                    mechanism.expire(item.thread, item.obj)
                if engine is not None:
                    engine.remove_edge(item.thread, item.obj)
    else:
        for item in events:
            event = as_stream_event(item)
            if event.is_epoch:
                deliver_epoch()
            elif event.is_insert:
                inserts += 1
                for label, mechanism in mechanisms.items():
                    mechanism.observe(event.thread, event.obj)
                    trajectories[label].append(mechanism.clock_size)
                if engine is not None:
                    engine.add_edge(event.thread, event.obj)
                    offline_sizes.append(engine.size)
                if epoch is not None and inserts % epoch == 0:
                    deliver_epoch()
            else:
                expires += 1
                for mechanism in mechanisms.values():
                    mechanism.expire(event.thread, event.obj)
                if engine is not None:
                    engine.remove_edge(event.thread, event.obj)
    results: Dict[str, OnlineRunResult] = {}
    for label, mechanism in mechanisms.items():
        results[label] = OnlineRunResult(
            mechanism_name=mechanism.name,
            final_size=mechanism.clock_size,
            size_trajectory=tuple(trajectories[label]),
            thread_components=len(mechanism.thread_components),
            object_components=len(mechanism.object_components),
            events_revealed=mechanism.events_seen,
            expires_seen=mechanism.expires_seen,
            epochs=mechanism.epoch,
            retired_components=mechanism.retired_total,
            peak_size=mechanism.peak_size,
        )
    if engine is not None:
        results[OFFLINE_LABEL] = OnlineRunResult(
            mechanism_name="offline-optimal",
            final_size=offline_sizes[-1] if offline_sizes else 0,
            size_trajectory=tuple(offline_sizes),
            thread_components=-1,
            object_components=-1,
            events_revealed=inserts,
            expires_seen=expires,
            epochs=epochs,
        )
    return results


def compare_mechanisms(
    graph: BipartiteGraph,
    factories: Dict[str, MechanismFactory],
    seed: SeedLike = None,
    include_offline: bool = False,
) -> Dict[str, OnlineRunResult]:
    """Run several mechanisms on the *same* reveal order of ``graph``.

    A thin wrapper over :func:`compare_mechanisms_on_stream`: the graph's
    reveal order is the (append-only) event stream, consumed in a single
    pass shared by all mechanisms.

    Parameters
    ----------
    factories:
        Mapping from a label to a zero-argument callable producing a fresh
        mechanism (mechanisms are single-use).
    include_offline:
        When ``True``, an entry ``"offline"`` is added whose trajectory is
        the *per-event offline optimum*: ``size_trajectory[i]`` is the
        minimum vertex cover size of the graph revealed by the first
        ``i + 1`` events, computed incrementally in one pass.  Its final
        value equals ``optimal_clock_size(graph)``, the constant the
        original Figs. 6-7 plot; the full trajectory additionally supports
        competitive-ratio-over-time analysis.
    """
    order = reveal_order(graph, seed=seed)
    return compare_mechanisms_on_stream(
        order, factories, include_offline=include_offline
    )


def offline_optimum_result(order: Sequence[Pair]) -> OnlineRunResult:
    """The per-event offline-optimum trajectory of one reveal order.

    Packaged as an :class:`OnlineRunResult` so it plots alongside the
    online mechanisms.  Thread/object component counts are reported as
    ``-1``: the optimum is a matching *size*; which side each cover vertex
    lives on is only fixed once the final cover is constructed.
    """
    trajectory = incremental_optimum_trajectory(order)
    return OnlineRunResult(
        mechanism_name="offline-optimal",
        final_size=trajectory[-1] if trajectory else 0,
        size_trajectory=trajectory,
        thread_components=-1,
        object_components=-1,
        events_revealed=len(order),
    )
